//! # robonet
//!
//! A full reproduction of **“Replacing Failed Sensor Nodes by Mobile
//! Robots”** (Yongguo Mei, Changjiu Xian, Saumitra Das, Y. Charlie Hu,
//! Yung-Hsiang Lu — ICDCS Workshops 2006) as a Rust workspace: a
//! packet-level wireless sensor network simulator plus the paper's
//! three robot-coordination algorithms for autonomous sensor
//! replacement.
//!
//! This facade crate re-exports the member crates under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`des`] | `robonet-des` | discrete-event kernel, simulated time, RNG streams |
//! | [`geom`] | `robonet-geom` | Voronoi, planar graphs, partitions, deployment |
//! | [`radio`] | `robonet-radio` | unit-disk PHY + CSMA/CA MAC at 11 Mbps |
//! | [`net`] | `robonet-net` | greedy geographic routing + face recovery, flood dedup |
//! | [`wsn`] | `robonet-wsn` | sensor state machines: beacons, guardians, failures |
//! | [`robot`] | `robonet-robot` | robot kinematics, FCFS queue, energy model |
//! | [`core`] | `robonet-core` | the coordination algorithms and simulation harness |
//! | [`viz`] | `robonet-viz` | SVG charts and field maps |
//!
//! # Quickstart
//!
//! ```
//! use robonet::prelude::*;
//!
//! let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
//!     .with_seed(42)
//!     .scaled(16.0); // compress time 16× for a fast demo
//! let outcome = Simulation::run(cfg);
//! let summary = outcome.metrics.summary();
//! println!(
//!     "repaired {} of {} failures, {:.1} m per failure",
//!     summary.replacements, summary.failures_occurred, summary.avg_travel_per_failure
//! );
//! assert!(summary.report_delivery_ratio > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use robonet_core as core;
pub use robonet_des as des;
pub use robonet_geom as geom;
pub use robonet_net as net;
pub use robonet_radio as radio;
pub use robonet_robot as robot;
pub use robonet_viz as viz;
pub use robonet_wsn as wsn;

/// The most common imports for running experiments.
pub mod prelude {
    pub use robonet_core::{
        Algorithm, CoverageSampling, DispatchPolicy, Metrics, Outcome, PartitionKind,
        ScenarioConfig, Simulation, Summary,
    };
    pub use robonet_des::{NodeId, SimDuration, SimTime};
    pub use robonet_geom::{Bounds, Point};
}
