//! Cross-crate end-to-end behaviour: determinism, facade wiring,
//! scaling sanity and energy accounting.

use robonet::prelude::*;
use robonet::robot::energy::EnergyModel;

fn small(alg: Algorithm) -> ScenarioConfig {
    ScenarioConfig::paper(2, alg).with_seed(77).scaled(32.0)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = Simulation::run(small(Algorithm::Centralized));
    let b = Simulation::run(small(Algorithm::Centralized));
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.metrics.failures_occurred, b.metrics.failures_occurred);
    assert_eq!(a.metrics.travel_per_task, b.metrics.travel_per_task);
    assert_eq!(a.metrics.report_hops, b.metrics.report_hops);
    assert_eq!(a.metrics.repair_delay, b.metrics.repair_delay);
    assert_eq!(a.metrics.tx, b.metrics.tx);
}

#[test]
fn seeds_change_outcomes_but_not_shape() {
    let a = Simulation::run(small(Algorithm::Dynamic)).metrics.summary();
    let b = Simulation::run(small(Algorithm::Dynamic).with_seed(78))
        .metrics
        .summary();
    assert_ne!(a.failures_occurred, b.failures_occurred);
    // Same qualitative regime.
    for s in [&a, &b] {
        assert!(s.avg_travel_per_failure > 20.0 && s.avg_travel_per_failure < 250.0);
        assert!(s.report_delivery_ratio > 0.9);
    }
}

#[test]
fn robot_count_one_works() {
    // The paper skips k=1 ("little difference among the three
    // algorithms") — the implementation must still handle it.
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        let cfg = ScenarioConfig::paper(1, alg).with_seed(5).scaled(32.0);
        let o = Simulation::run(cfg);
        assert!(
            o.metrics.replacements > 0,
            "{alg}: no replacements with 1 robot"
        );
        assert_eq!(o.metrics.robot_odometers.len(), 1);
    }
}

#[test]
fn odometer_equals_sum_of_task_legs() {
    let o = Simulation::run(small(Algorithm::Fixed(PartitionKind::Square)));
    let odometer: f64 = o.metrics.robot_odometers.iter().sum();
    let tasks: f64 = o.metrics.travel_per_task.iter().sum();
    // Odometer also counts legs to spurious replacements; with none,
    // the two agree exactly.
    if o.metrics.spurious_replacements == 0 {
        assert!(
            (odometer - tasks).abs() < 1e-6 * odometer.max(1.0),
            "odometer {odometer} vs task legs {tasks}"
        );
    } else {
        assert!(odometer >= tasks);
    }
}

#[test]
fn tasks_balance_across_robots() {
    let o = Simulation::run(small(Algorithm::Dynamic));
    let total: u64 = o.metrics.tasks_per_robot.iter().sum();
    assert_eq!(total, o.metrics.replacements);
    let max = *o.metrics.tasks_per_robot.iter().max().unwrap();
    assert!(
        (max as f64) < 0.7 * total as f64,
        "one robot did {max} of {total} tasks — load should spread"
    );
}

#[test]
fn motion_energy_is_consistent_with_odometer() {
    let o = Simulation::run(small(Algorithm::Dynamic));
    let model = EnergyModel::default();
    let dist: f64 = o.metrics.robot_odometers.iter().sum();
    let speed = o.config.robot_speed;
    let energy = model.travel_energy(dist, speed);
    assert!(energy > 0.0);
    assert!(
        (energy - model.power_at(speed) * dist / speed).abs() < 1e-9,
        "energy model must be power × time"
    );
}

#[test]
fn repair_delays_include_detection_latency() {
    let o = Simulation::run(small(Algorithm::Centralized));
    let cfg = &o.config;
    // Repair delay is measured from dispatch, so it is bounded below by
    // ~zero but the mean must be positive and finite.
    let s = o.metrics.summary();
    assert!(s.avg_repair_delay > 0.0);
    assert!(s.avg_repair_delay < cfg.sim_time.as_secs_f64());
}
