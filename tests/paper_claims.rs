//! Integration tests asserting the paper's evaluation-section claims on
//! time-compressed runs (per-failure metrics are preserved by
//! `ScenarioConfig::scaled`; see EXPERIMENTS.md for the full-scale
//! numbers).
//!
//! The claims under test (paper abstract + §4.3):
//! (a) the centralized and the dynamic algorithms have lower motion
//!     overhead than the fixed algorithm;
//! (b) the centralized algorithm is less scalable: its report/request
//!     hop counts grow with the field while the distributed algorithms'
//!     stay flat;
//! (c) the distributed algorithms have far higher location-update
//!     messaging cost than the centralized algorithm, with dynamic
//!     slightly above fixed;
//! (d) failure reports are delivered essentially always (the paper
//!     reports a 100% delivery ratio).

use robonet::prelude::*;

const SCALE: f64 = 16.0;

fn run(k: usize, alg: Algorithm) -> Summary {
    Simulation::run(ScenarioConfig::paper(k, alg).with_seed(5).scaled(SCALE))
        .metrics
        .summary()
}

#[test]
fn claim_a_motion_overhead_ordering() {
    // At 9 robots the paper's Figure 2 separates the algorithms.
    let fixed = run(3, Algorithm::Fixed(PartitionKind::Square));
    let dynamic = run(3, Algorithm::Dynamic);
    let centralized = run(3, Algorithm::Centralized);
    // Dynamic tracks centralized closely...
    let rel = (dynamic.avg_travel_per_failure - centralized.avg_travel_per_failure).abs()
        / centralized.avg_travel_per_failure;
    assert!(
        rel < 0.10,
        "dynamic vs centralized motion differ by {rel:.2}"
    );
    // ... and fixed does not beat either by a meaningful margin (the
    // paper has fixed strictly worst; at one seed we allow noise).
    assert!(
        fixed.avg_travel_per_failure > 0.95 * dynamic.avg_travel_per_failure,
        "fixed {:.1} vs dynamic {:.1}",
        fixed.avg_travel_per_failure,
        dynamic.avg_travel_per_failure
    );
    assert!(
        fixed.avg_travel_per_failure > 0.95 * centralized.avg_travel_per_failure,
        "fixed {:.1} vs centralized {:.1}",
        fixed.avg_travel_per_failure,
        centralized.avg_travel_per_failure
    );
}

#[test]
fn claim_b_centralized_hops_grow_with_field() {
    let small = run(2, Algorithm::Centralized);
    let large = run(4, Algorithm::Centralized);
    assert!(
        large.avg_report_hops > small.avg_report_hops * 1.3,
        "centralized report hops must grow: {} -> {}",
        small.avg_report_hops,
        large.avg_report_hops
    );
    let (sq, lq) = (
        small.avg_request_hops.expect("centralized sends requests"),
        large.avg_request_hops.expect("centralized sends requests"),
    );
    assert!(lq > sq, "request hops must grow: {sq} -> {lq}");
    // Reports come from 63 m sensors, requests start with a 250 m
    // manager hop: reports need more hops (paper §4.3.2).
    assert!(small.avg_report_hops > sq);
    assert!(large.avg_report_hops > lq);

    // Distributed algorithms stay flat at a couple of hops.
    let d_small = run(2, Algorithm::Dynamic);
    let d_large = run(4, Algorithm::Dynamic);
    assert!(d_small.avg_report_hops < 5.0);
    assert!(d_large.avg_report_hops < 5.0);
    assert!(
        (d_large.avg_report_hops - d_small.avg_report_hops).abs() < 1.0,
        "dynamic hops should not scale with the field: {} -> {}",
        d_small.avg_report_hops,
        d_large.avg_report_hops
    );
}

#[test]
fn claim_c_update_messaging_ordering() {
    let fixed = run(2, Algorithm::Fixed(PartitionKind::Square));
    let dynamic = run(2, Algorithm::Dynamic);
    let centralized = run(2, Algorithm::Centralized);
    assert!(
        centralized.loc_update_tx_per_failure * 5.0 < fixed.loc_update_tx_per_failure,
        "centralized {} should be far below fixed {}",
        centralized.loc_update_tx_per_failure,
        fixed.loc_update_tx_per_failure
    );
    assert!(
        dynamic.loc_update_tx_per_failure > fixed.loc_update_tx_per_failure,
        "dynamic {} should exceed fixed {}",
        dynamic.loc_update_tx_per_failure,
        fixed.loc_update_tx_per_failure
    );
    assert!(
        dynamic.loc_update_tx_per_failure < 3.0 * fixed.loc_update_tx_per_failure,
        "... but only moderately (paper: slightly higher)"
    );
}

#[test]
fn claim_d_reports_essentially_always_delivered() {
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        let s = run(2, alg);
        assert!(
            s.report_delivery_ratio > 0.95,
            "{alg}: delivery ratio {}",
            s.report_delivery_ratio
        );
        assert!(
            s.replacements as f64 > 0.8 * s.failures_occurred as f64,
            "{alg}: replaced {}/{}",
            s.replacements,
            s.failures_occurred
        );
    }
}

#[test]
fn partition_shape_makes_negligible_difference() {
    // Paper §4.3.1: square vs hexagon-like partitions for the fixed
    // algorithm differ negligibly. Our hexagonal stand-in is an
    // offset-row (brick) tiling whose odd rows wrap at the field edge,
    // which adds a seam artefact at small k — so compare at k = 3 and
    // average two seeds.
    let avg = |kind: PartitionKind| {
        let mut total = 0.0;
        for seed in [3u64, 4] {
            let s = Simulation::run(
                ScenarioConfig::paper(3, Algorithm::Fixed(kind))
                    .with_seed(seed)
                    .scaled(SCALE),
            )
            .metrics
            .summary();
            total += s.avg_travel_per_failure;
        }
        total / 2.0
    };
    let sq = avg(PartitionKind::Square);
    let hex = avg(PartitionKind::Hex);
    let rel = (sq - hex).abs() / sq;
    assert!(
        rel < 0.15,
        "square {sq:.1} vs hex {hex:.1} travel differ by {rel:.2}"
    );
}

#[test]
fn motion_ordering_is_statistically_consistent() {
    // Across independent seeds, the fixed algorithm must never be
    // *significantly better* than dynamic (the paper has it strictly
    // worse). Welch's t-test on the per-seed means.
    use robonet::core::metrics::welch_t;
    let seeds = [3u64, 4, 5, 6, 7];
    let travel = |alg: Algorithm| -> Vec<f64> {
        seeds
            .iter()
            .map(|&seed| {
                Simulation::run(ScenarioConfig::paper(2, alg).with_seed(seed).scaled(32.0))
                    .metrics
                    .summary()
                    .avg_travel_per_failure
            })
            .collect()
    };
    let fixed = travel(Algorithm::Fixed(PartitionKind::Square));
    let dynamic = travel(Algorithm::Dynamic);
    let r = welch_t(&fixed, &dynamic).expect("enough seeds");
    assert!(
        !(r.significant_5pct && r.mean_diff < 0.0),
        "fixed significantly *better* than dynamic contradicts the paper: t={:.2}, diff={:.2}",
        r.t,
        r.mean_diff
    );
}

#[test]
fn dynamic_voronoi_maintenance_is_accurate() {
    let s = run(2, Algorithm::Dynamic);
    assert!(
        s.myrobot_accuracy > 0.85,
        "sensors should track their closest robot: {}",
        s.myrobot_accuracy
    );
}
