//! Adversarial scenarios: conditions the protocol must survive even
//! though the paper assumes them away or never exercises them.

use robonet::des::SimDuration;
use robonet::prelude::*;

/// Very short lifetimes: many concurrent failures, guardians dying
/// while holding undelivered reports, robots always saturated. The
/// paper's §2 assumption ("the probability of both a guardian and a
/// corresponding guardee fail close in time is small") is deliberately
/// violated here — the system must degrade gracefully, not deadlock or
/// panic.
#[test]
fn survives_failure_storm() {
    let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(13)
        .scaled(32.0);
    cfg.mean_lifetime = SimDuration::from_secs(150.0); // vs 500 s scaled norm
    let o = Simulation::run(cfg);
    let m = &o.metrics;
    // Dead nodes cannot re-fail until repaired, so the storm is
    // self-limiting; still several hundred failures in 2000 s.
    assert!(
        m.failures_occurred > 300,
        "storm really happened: {}",
        m.failures_occurred
    );
    // Guardians die with their guardees often now, so some failures go
    // unreported — but the majority must still be repaired.
    assert!(
        m.replacements as f64 > 0.5 * m.failures_occurred as f64,
        "repaired {}/{} under storm",
        m.replacements,
        m.failures_occurred
    );
}

/// One robot, failures across the whole field: the FCFS queue is
/// saturated; every queued failure must still be served in order.
#[test]
fn single_saturated_robot_drains_queue() {
    let mut cfg = ScenarioConfig::paper(1, Algorithm::Centralized)
        .with_seed(21)
        .scaled(32.0);
    cfg.mean_lifetime = SimDuration::from_secs(250.0);
    let o = Simulation::run(cfg);
    assert!(o.metrics.replacements > 50);
    // Queueing shows up as repair delay far above the pure travel time.
    let s = o.metrics.summary();
    assert!(
        s.avg_repair_delay > s.avg_travel_per_failure / o.config.robot_speed,
        "delay {} should exceed raw travel time",
        s.avg_repair_delay
    );
}

/// Sparse network: half the paper's density. Geographic routing leans
/// on perimeter recovery; delivery degrades but must not collapse.
#[test]
fn sparse_network_still_functions() {
    let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(8)
        .scaled(32.0);
    cfg.sensors_per_robot = 25;
    let o = Simulation::run(cfg);
    let s = o.metrics.summary();
    assert!(
        s.replacements as f64 > 0.6 * s.failures_occurred as f64,
        "repaired {}/{} at half density",
        s.replacements,
        s.failures_occurred
    );
}

/// Broadcast pruning (the §6 future-work optimisation) must cut
/// location-update traffic without breaking repair.
#[test]
fn broadcast_pruning_trades_messages_not_correctness() {
    let base = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(31)
        .scaled(32.0);
    let mut pruned = base.clone();
    pruned.broadcast_prune = Some(0.3);

    let o_base = Simulation::run(base);
    let o_pruned = Simulation::run(pruned);
    let s_base = o_base.metrics.summary();
    let s_pruned = o_pruned.metrics.summary();
    assert!(
        s_pruned.loc_update_tx_per_failure < 0.8 * s_base.loc_update_tx_per_failure,
        "pruning should cut update traffic: {} vs {}",
        s_pruned.loc_update_tx_per_failure,
        s_base.loc_update_tx_per_failure
    );
    // Pruning is lossy (that is the trade-off the paper's §6 asks to
    // study) but repair must stay close to the unpruned run.
    let base_ratio = s_base.replacements as f64 / s_base.failures_occurred as f64;
    let pruned_ratio = s_pruned.replacements as f64 / s_pruned.failures_occurred as f64;
    assert!(
        pruned_ratio > 0.85 * base_ratio,
        "repair must survive pruning: {pruned_ratio:.2} vs base {base_ratio:.2}"
    );
}

/// A tiny deployment (one robot, a handful of sensors) where the
/// guardian graph is a single chain — edge cases in guardian
/// re-selection dominate.
#[test]
fn tiny_deployment_edge_case() {
    let mut cfg = ScenarioConfig::paper(1, Algorithm::Dynamic)
        .with_seed(2)
        .scaled(32.0);
    cfg.sensors_per_robot = 8;
    let o = Simulation::run(cfg);
    // Nothing to assert beyond liveness and basic accounting coherence.
    assert!(o.metrics.failures_occurred > 0);
    assert!(
        o.metrics.replacements <= o.metrics.failures_occurred + o.metrics.spurious_replacements
    );
}

/// Hex-partitioned fixed algorithm end to end (exercises the offset
/// partition in the full protocol, not just unit tests).
#[test]
fn fixed_hex_partition_runs() {
    let o = Simulation::run(
        ScenarioConfig::paper(2, Algorithm::Fixed(PartitionKind::Hex))
            .with_seed(2)
            .scaled(32.0),
    );
    let s = o.metrics.summary();
    assert!(s.replacements as f64 > 0.8 * s.failures_occurred as f64);
    assert_eq!(s.myrobot_accuracy, 1.0, "fixed assignment never drifts");
}
