//! Replay state-machine properties promised by `core::obs::replay`:
//! `state_at(T)` is *exactly* a full replay of the trace truncated at
//! `T`, chunking never matters, and a ragged tail only costs the
//! incomplete record.

use std::io::Write;
use std::sync::{Arc, Mutex};

use robonet::prelude::*;
use robonet_core::obs::for_each_event_line;
use robonet_core::obs::replay::{state_at, ReplaySetup, Replayer};
use robonet_core::trace::TraceEvent;
use robonet_core::JsonlSink;

/// An `io::Write` the test can keep a handle to after the simulation
/// takes ownership of the sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("JSONL is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One traced run plus everything the properties need: the raw JSONL
/// text, the parsed event list, and the geometry the trace came from.
fn traced_run(alg: Algorithm) -> (ScenarioConfig, String, Vec<TraceEvent>) {
    let cfg = ScenarioConfig::paper(1, alg).with_seed(7).scaled(32.0);
    let buf = SharedBuf::default();
    Simulation::with_sink(cfg.clone(), Box::new(JsonlSink::new(buf.clone()))).run_to_completion();
    let text = buf.contents();
    let mut events = Vec::new();
    let tail = for_each_event_line(&text, |ev| events.push(ev.clone())).expect("trace parses");
    assert!(tail.is_none(), "a completed run leaves no ragged tail");
    assert!(events.len() > 50, "trace is non-trivial: {}", events.len());
    (cfg, text, events)
}

/// Truncates the trace text to exactly the event lines with
/// `time() <= t` (plus the header), mirroring what a reader would see
/// of a file cut off at that instant.
fn truncate_at(text: &str, events: &[TraceEvent], t: f64) -> String {
    let keep = events.iter().filter(|ev| ev.time() <= t).count();
    // Line 1 is the schema header; the next `keep` lines are events.
    text.lines()
        .take(1 + keep)
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The core acceptance property: for any cut time `T`, `state_at(T)`
/// over the full event list equals a from-scratch replay of the trace
/// text truncated at `T`. The state machine is a pure left fold — no
/// hidden dependence on events beyond the cut.
#[test]
fn state_at_equals_replay_of_truncated_trace() {
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        let (cfg, text, events) = traced_run(alg);
        let setup = ReplaySetup::from_config(&cfg);

        // Cut at event timestamps (tie groups stay whole), plus before
        // the first and after the last event.
        let n = events.len();
        let mut cuts = vec![-1.0, 0.0, f64::INFINITY];
        for idx in [0, 1, n / 7, n / 3, n / 2, (3 * n) / 4, n - 2, n - 1] {
            cuts.push(events[idx].time());
        }
        for t in cuts {
            let direct = state_at(&setup, &events, t);

            let mut replayer = Replayer::new(&setup);
            replayer
                .feed(&truncate_at(&text, &events, t))
                .expect("truncated prefix parses");
            let (replayed, tail) = replayer.finish().expect("clean finish");
            assert!(tail.is_none(), "whole lines only");

            assert_eq!(
                direct, replayed,
                "{alg}: state_at({t}) diverged from replaying the truncated trace"
            );
        }
    }
}

/// Chunking is invisible: feeding the trace byte-by-byte-ish (ragged
/// 7-byte chunks that split every line and most UTF-8-irrelevant
/// boundaries) ends in the same state as one big feed.
#[test]
fn chunked_feed_matches_single_feed() {
    let (cfg, text, _) = traced_run(Algorithm::Dynamic);
    let setup = ReplaySetup::from_config(&cfg);

    let mut whole = Replayer::new(&setup);
    whole.feed(&text).expect("full feed");
    let (whole, _) = whole.finish().expect("clean finish");

    let mut ragged = Replayer::new(&setup);
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let end = (i + 7).min(bytes.len());
        ragged
            .feed(std::str::from_utf8(&bytes[i..end]).expect("trace is ASCII"))
            .expect("chunk feed");
        i = end;
    }
    let (ragged, _) = ragged.finish().expect("clean finish");
    assert_eq!(whole, ragged, "chunk boundaries leaked into the state");
}

/// A trace cut mid-record costs exactly the incomplete record: the
/// replayed state equals the state over the complete prefix, and the
/// tail is reported rather than swallowed or fatal.
#[test]
fn ragged_tail_only_drops_the_incomplete_record() {
    let (cfg, text, events) = traced_run(Algorithm::Dynamic);
    let setup = ReplaySetup::from_config(&cfg);

    // Cut 10 bytes into the final record.
    let last_line_start = text.trim_end().rfind('\n').expect("multi-line") + 1;
    let cut = &text[..last_line_start + 10];

    let mut replayer = Replayer::new(&setup);
    replayer.feed(cut).expect("prefix parses");
    let (state, tail) = replayer.finish().expect("tail is not an error");
    let tail = tail.expect("ragged tail reported");
    assert_eq!(tail.line, text.lines().count(), "tail names the cut line");

    let complete_prefix = state_at(&setup, &events[..events.len() - 1], f64::INFINITY);
    assert_eq!(
        state, complete_prefix,
        "state covers exactly the complete prefix"
    );
}
