//! Cross-crate checks for the telemetry timeline and health monitor:
//! sampling must be deterministic and inert (a sampled run's protocol
//! figures are bit-identical to an unsampled one), the offline CSV must
//! be byte-identical to one rendered from the live sampler's values,
//! and the committed golden timelines gate the whole path.

use std::io::Write;
use std::sync::{Arc, Mutex};

use robonet::prelude::*;
use robonet_core::obs::timeline::Timeline;
use robonet_core::JsonlSink;
use robonet_des::SimDuration;

/// An `io::Write` the test can keep a handle to after the simulation
/// takes ownership of the sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("JSONL is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const ALGS: [Algorithm; 3] = [
    Algorithm::Centralized,
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
];

fn small(alg: Algorithm) -> ScenarioConfig {
    ScenarioConfig::paper(2, alg).with_seed(77).scaled(32.0)
}

fn sampled(alg: Algorithm, every_s: f64) -> ScenarioConfig {
    let mut cfg = small(alg);
    cfg.sample_every = Some(SimDuration::from_secs(every_s));
    cfg
}

fn traced_run(cfg: ScenarioConfig) -> (robonet_core::Outcome, String) {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(buf.clone());
    let outcome = Simulation::with_sink(cfg, Box::new(sink)).run_to_completion();
    let text = buf.contents();
    (outcome, text)
}

/// Sampling at any cadence is a pure function of (config, seed): the
/// whole trace — protocol events and telemetry samples interleaved —
/// comes out byte-identical across repeated runs.
#[test]
fn sampling_at_any_cadence_is_bit_identical_across_same_seed_runs() {
    for cadence in [50.0, 100.0, 333.0] {
        let (_, a) = traced_run(sampled(Algorithm::Dynamic, cadence));
        let (_, b) = traced_run(sampled(Algorithm::Dynamic, cadence));
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "cadence {cadence}: same-seed traces must be byte-identical"
        );
        assert!(
            a.contains("\"ev\":\"telemetry_sample\""),
            "cadence {cadence}: trace must carry samples"
        );
    }
}

/// The sampler observes the run without steering it: every protocol
/// figure of a sampled run is bit-identical to the unsampled run.
#[test]
fn sampling_does_not_perturb_the_run() {
    for alg in ALGS {
        let plain = Simulation::run(small(alg));
        let (observed, _) = traced_run(sampled(alg, 100.0));
        assert_eq!(
            plain.metrics.summary(),
            observed.metrics.summary(),
            "{alg}: sampling must not change protocol results"
        );
    }
}

/// A run without `--sample-every` emits no telemetry at all — the trace
/// is byte-identical to what pre-timeline releases produced (the
/// committed golden spans tables gate the exact bytes; this pins the
/// absence of the new record kinds).
#[test]
fn unsampled_runs_emit_no_telemetry_records() {
    let (outcome, text) = traced_run(small(Algorithm::Dynamic));
    assert!(!text.contains("telemetry_sample"));
    assert!(!text.contains("invariant_violated"));
    assert!(outcome.metrics.telemetry_timeline.is_empty());
    assert_eq!(outcome.metrics.invariant_violations, 0);
}

/// The acceptance bar: CSV rendered offline from the JSONL artifact is
/// byte-identical to CSV rendered from the live sampler's in-memory
/// values, for every algorithm.
#[test]
fn offline_timeline_csv_is_bit_exact_against_live_sampler() {
    for alg in ALGS {
        let (outcome, text) = traced_run(sampled(alg, 100.0));

        let live = Timeline {
            samples: outcome.metrics.telemetry_timeline.clone(),
            violations: Vec::new(),
        };
        assert!(!live.is_empty(), "{alg}: sampler must have fired");

        let (offline, tail) =
            Timeline::from_jsonl(&text).unwrap_or_else(|e| panic!("{alg}: artifact parses: {e}"));
        assert!(tail.is_none(), "{alg}: complete artifact");
        assert_eq!(
            offline.violations.len(),
            0,
            "{alg}: healthy run must not trip the monitor"
        );
        assert_eq!(
            live.csv(),
            offline.csv(),
            "{alg}: offline CSV must be byte-identical to the live sampler's"
        );
        assert_eq!(
            outcome.metrics.invariant_violations, 0,
            "{alg}: healthy run must not count violations"
        );
    }
}

/// Every advertised series is plottable from a real run, and gauges
/// stay within their physical bounds.
#[test]
fn sampled_gauges_are_internally_consistent() {
    let (outcome, _) = traced_run(sampled(Algorithm::Dynamic, 100.0));
    let n_sensors = outcome.config.n_sensors() as u32;
    let n_robots = outcome.config.n_robots();
    let tl = Timeline {
        samples: outcome.metrics.telemetry_timeline.clone(),
        violations: Vec::new(),
    };
    for name in robonet_core::obs::timeline::SERIES {
        let series = tl.series(name).expect("advertised series resolves");
        assert_eq!(series.len(), tl.len(), "{name}: one point per sample");
    }
    for (t, s) in &tl.samples {
        assert_eq!(s.alive + s.down, n_sensors, "t={t}: alive+down=deployed");
        assert_eq!(s.robot_queues.len(), n_robots, "t={t}");
        assert_eq!(s.robot_busy.len(), n_robots, "t={t}");
        assert!((0.0..=1.0).contains(&s.coverage), "t={t}: coverage bounded");
        assert_eq!(
            u64::from(s.open_total()),
            s.failures - s.replaced,
            "t={t}: ledger conserves failures"
        );
    }
}

/// The flow-level fast path samples too (when sinked): same record
/// kinds, same conservation, zero violations.
#[test]
fn fastsim_emits_parseable_samples() {
    use robonet_core::fastsim;
    let buf = SharedBuf::default();
    let mut sink = JsonlSink::new(buf.clone());
    let cfg = sampled(Algorithm::Dynamic, 100.0);
    fastsim::run_with_sink(&cfg, &mut sink);
    let (tl, tail) = Timeline::from_jsonl(&buf.contents()).expect("fastsim artifact parses");
    assert!(tail.is_none());
    assert!(!tl.is_empty(), "fastsim sampler must fire");
    assert_eq!(tl.violations.len(), 0, "fastsim ledger must balance");
}

/// The seed-pinned configuration behind the golden timeline CSVs —
/// deliberately the same run `scripts/ci.sh` traces for its golden
/// artifact, so the committed CSVs also gate the CLI path.
fn golden_cfg(alg: Algorithm) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(1, alg).with_seed(7).scaled(64.0);
    cfg.sample_every = Some(SimDuration::from_secs(100.0));
    cfg
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("timeline_{name}.csv"))
}

/// Golden telemetry timelines for all three algorithms.
///
/// Regenerate the committed tables with `ROBONET_UPDATE_GOLDEN=1
/// cargo test -q golden_timeline`.
#[test]
fn golden_timeline_csvs() {
    for alg in ALGS {
        let (_, text) = traced_run(golden_cfg(alg));
        let (tl, _) = Timeline::from_jsonl(&text).expect("artifact parses");
        let csv = tl.csv();

        let label = golden_cfg(alg).algorithm.name().to_string();
        let path = golden_path(&label);
        if std::env::var_os("ROBONET_UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &csv).expect("write golden timeline");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{alg}: missing golden timeline {path:?}: {e}"));
        assert_eq!(
            csv, golden,
            "{alg}: telemetry timeline drifted from {path:?} \
             (ROBONET_UPDATE_GOLDEN=1 to regenerate)"
        );
    }
}
