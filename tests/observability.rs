//! Cross-crate checks for the observability layer: JSONL artifacts
//! must reproduce the in-process summary exactly, and attaching sinks
//! must never perturb the simulation itself.

use std::io::Write;
use std::sync::{Arc, Mutex};

use robonet::prelude::*;
use robonet_core::obs::TraceAggregate;
use robonet_core::JsonlSink;

/// An `io::Write` the test can keep a handle to after the simulation
/// takes ownership of the sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("JSONL is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn small(alg: Algorithm) -> ScenarioConfig {
    ScenarioConfig::paper(2, alg).with_seed(77).scaled(32.0)
}

#[test]
fn jsonl_artifact_reproduces_summary_exactly() {
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        let outcome = Simulation::with_sink(small(alg), Box::new(sink)).run_to_completion();
        let summary = outcome.metrics.summary();

        let text = buf.contents();
        assert!(!text.is_empty(), "{alg}: trace should not be empty");
        let agg = TraceAggregate::from_jsonl(&text)
            .unwrap_or_else(|e| panic!("{alg}: artifact must parse: {e}"));

        // The acceptance bar: averages recomputed from the artifact are
        // bit-identical to the in-process figures, not merely close.
        assert_eq!(
            agg.avg_travel_per_failure().to_bits(),
            summary.avg_travel_per_failure.to_bits(),
            "{alg}: travel drifted"
        );
        assert_eq!(
            agg.avg_report_hops().to_bits(),
            summary.avg_report_hops.to_bits(),
            "{alg}: report hops drifted"
        );
        assert_eq!(agg.failures, summary.failures_occurred, "{alg}");
        assert_eq!(agg.replacements, summary.replacements, "{alg}");
        assert_eq!(
            agg.drops.total(),
            summary.packets_dropped.total(),
            "{alg}: drop counts drifted"
        );
    }
}

#[test]
fn observing_a_run_does_not_change_it() {
    let plain = Simulation::run(small(Algorithm::Dynamic));
    let buf = SharedBuf::default();
    let observed = Simulation::with_sink(small(Algorithm::Dynamic), Box::new(JsonlSink::new(buf)))
        .run_to_completion();
    // Bit-identical summaries: the sink sees the run, never steers it.
    assert_eq!(plain.metrics.summary(), observed.metrics.summary());
    assert_eq!(plain.events_processed, observed.events_processed);
}

#[test]
fn registry_snapshot_agrees_with_metrics() {
    let outcome = Simulation::run(small(Algorithm::Centralized));
    let m = &outcome.metrics;
    let c = &m.counters;
    assert_eq!(
        c.counter("coord.centralized", "replacements"),
        m.replacements
    );
    assert_eq!(
        c.counter("net.routing", "drops.ttl_expired"),
        m.packets_dropped.ttl_expired
    );
    assert_eq!(
        c.counter("des.scheduler", "events_dispatched"),
        outcome.profile.events_dispatched
    );
    let hops = c
        .histogram("net.routing", "report_hops")
        .expect("hop histogram recorded");
    assert_eq!(hops.count(), m.report_hops.len() as u64);
    let travel = c
        .histogram("robot.fleet", "travel_m")
        .expect("travel histogram recorded");
    assert_eq!(travel.count(), m.travel_per_task.len() as u64);
}

/// The seed-pinned configuration behind the golden spans tables —
/// deliberately the same run `scripts/ci.sh` traces for its golden
/// artifact, so the committed CSVs also gate the CLI path.
fn golden_cfg(alg: Algorithm) -> ScenarioConfig {
    ScenarioConfig::paper(1, alg).with_seed(7).scaled(64.0)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("spans_{name}.csv"))
}

/// Golden repair-lifecycle decomposition, plus the online/offline
/// parity acceptance bar: assembling spans live (sink tee during the
/// run) and replaying the JSONL artifact afterwards must render
/// byte-identical tables for every algorithm.
///
/// Regenerate the committed tables with `ROBONET_UPDATE_GOLDEN=1
/// cargo test -q golden_spans`.
#[test]
fn golden_spans_tables_online_offline_parity() {
    use robonet_core::{report, SpanAssembler};
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        let mut outcome =
            Simulation::with_sink(golden_cfg(alg), Box::new(sink)).run_to_completion();

        // Online: the assembler teed off the live event stream.
        let online = outcome.spans.take().expect("sinked run assembles spans");
        // Offline: the same events replayed from the JSONL artifact.
        let offline = SpanAssembler::from_jsonl(&buf.contents())
            .unwrap_or_else(|e| panic!("{alg}: artifact must replay: {e}"));

        let label = golden_cfg(alg).algorithm.name().to_string();
        let online_csv = report::spans_csv(&[(label.clone(), online)]);
        let offline_csv = report::spans_csv(&[(label.clone(), offline)]);
        assert_eq!(
            online_csv, offline_csv,
            "{alg}: online and offline span assembly must render identically"
        );

        let path = golden_path(&label);
        if std::env::var_os("ROBONET_UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &online_csv).expect("write golden table");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{alg}: missing golden table {path:?}: {e}"));
        assert_eq!(
            online_csv, golden,
            "{alg}: span decomposition drifted from {path:?} \
             (ROBONET_UPDATE_GOLDEN=1 to regenerate)"
        );
    }
}

/// Span gauges and assembler counters surface in the registry snapshot
/// when (and only when) the run was observed.
#[test]
fn span_metrics_surface_in_registry() {
    let buf = SharedBuf::default();
    let mut outcome = Simulation::with_sink(
        small(Algorithm::Dynamic),
        Box::new(JsonlSink::new(buf.clone())),
    )
    .run_to_completion();
    let report = outcome.spans.take().expect("observed run has spans");
    let c = &outcome.metrics.counters;
    assert_eq!(
        c.counter("span.assembler", "spans"),
        report.replacements(),
        "assembler counter matches the report"
    );
    for stage in ["span.detection", "span.travel", "span.total"] {
        for q in ["p50_s", "p95_s", "p99_s"] {
            assert!(
                c.gauge(stage, q).is_some(),
                "{stage}.{q} gauge should be published"
            );
        }
    }

    // An unobserved run publishes none of this.
    let plain = Simulation::run(small(Algorithm::Dynamic));
    assert!(plain.spans.is_none());
    assert_eq!(plain.metrics.counters.gauge("span.total", "p50_s"), None);
}

#[test]
fn scheduler_profile_is_populated() {
    let outcome = Simulation::run(small(Algorithm::Dynamic));
    let p = outcome.profile;
    assert_eq!(p.events_dispatched, outcome.events_processed);
    assert!(p.queue_high_water > 0);
    assert!(p.sim_seconds > 0.0);
    assert!(p.wall_seconds > 0.0);
}
