//! Guards the workspace's zero-dependency policy: every crate must be
//! buildable offline from this repository alone. The test walks every
//! `Cargo.toml` in the workspace and rejects any dependency that is
//! not a path/workspace-internal `robonet-*` crate — reintroducing a
//! registry dependency (rand, proptest, criterion, ...) fails here
//! before it fails in a sealed build environment.

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml files that belong to the workspace: the root
/// manifest plus one per `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let dir = entry.expect("readable dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 9,
        "expected the root manifest plus 8 member crates, found {}",
        manifests.len()
    );
    manifests
}

/// True for section headers that declare dependencies, including
/// target-specific tables like
/// `[target.'cfg(unix)'.dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    header.ends_with("dependencies")
}

/// Parses the dependency names out of one manifest, without a TOML
/// crate (which would itself be a registry dependency). Returns
/// `(section, name, value)` triples for every dependency entry.
fn dependencies(manifest: &Path) -> Vec<(String, String, String)> {
    let text =
        fs::read_to_string(manifest).unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].to_string();
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        // Dotted keys (`foo.workspace = true`) carry the resolution in
        // the key itself; fold it into the value.
        let name = name.trim().trim_matches('"');
        let (name, value) = match name.split_once('.') {
            Some((base, rest)) => (base, format!("{rest} = {}", value.trim())),
            None => (name, value.trim().to_string()),
        };
        deps.push((section.clone(), name.to_string(), value));
    }
    deps
}

/// Every dependency in every workspace manifest is an internal
/// `robonet-*` crate wired up by `path = ...` or
/// `.workspace = true` — nothing resolves against a registry.
#[test]
fn all_dependencies_are_workspace_internal() {
    for manifest in workspace_manifests() {
        for (section, name, value) in dependencies(&manifest) {
            assert!(
                name.starts_with("robonet-"),
                "{}: [{}] depends on external crate `{}` — the workspace \
                 must stay registry-free (see DESIGN.md substitutions)",
                manifest.display(),
                section,
                name,
            );
            assert!(
                value.contains("path") || value.contains("workspace"),
                "{}: [{}] dependency `{}` is not path/workspace-resolved: {}",
                manifest.display(),
                section,
                name,
                value,
            );
        }
    }
}

/// The retired registry crates must not creep back in under any
/// section of any manifest. Parallelism crates are banned by name too:
/// the sweep engine's determinism contract rests on the in-tree
/// work-stealing pool (`crates/des/src/pool.rs`), and pulling in rayon,
/// crossbeam or any channel/threadpool crate would both break
/// hermeticity and make the scheduling opaque.
#[test]
fn retired_registry_crates_stay_gone() {
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest).expect("readable manifest");
        for banned in [
            "rand",
            "proptest",
            "criterion",
            "rand_xoshiro",
            "rayon",
            "rayon-core",
            "crossbeam",
            "crossbeam-channel",
            "crossbeam-deque",
            "crossbeam-utils",
            "crossbeam-queue",
            "crossbeam-epoch",
            "flume",
            "threadpool",
            "scoped_threadpool",
            "num_cpus",
        ] {
            for (section, name, _) in dependencies(&manifest) {
                assert_ne!(
                    name,
                    banned,
                    "{}: [{}] reintroduces `{}`",
                    manifest.display(),
                    section,
                    banned,
                );
            }
            // Catch `[dependencies.rand]`-style tables the line parser
            // reports as sections rather than entries.
            assert!(
                !text.contains(&format!("dependencies.{banned}]")),
                "{}: table section for `{}`",
                manifest.display(),
                banned,
            );
        }
    }
}

/// Benches must not declare `harness = false` targets pointing at
/// binaries that need criterion; with the in-tree self-timed harness
/// every `[[bench]]` keeps `harness = false` but links only workspace
/// code. This asserts the bench crate's manifest still declares the
/// eight figure/micro benches.
#[test]
fn bench_targets_declared() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("crates/bench/Cargo.toml")).expect("bench manifest");
    let count = text.matches("[[bench]]").count();
    assert_eq!(count, 11, "expected 11 bench targets, found {count}");
}

/// The parallel sweep machinery is in-tree: the work-stealing pool
/// lives in the `des` kernel crate and uses only `std` primitives
/// (scoped threads, mutex-guarded deques) — no external scheduler to
/// re-audit, no unsafe (the crate forbids it).
#[test]
fn work_stealing_pool_is_in_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let pool = root.join("crates/des/src/pool.rs");
    assert!(pool.is_file(), "crates/des/src/pool.rs must exist");
    let text = fs::read_to_string(&pool).expect("readable pool source");
    for needed in ["scatter_map", "std::thread::scope", "catch_unwind"] {
        assert!(
            text.contains(needed),
            "pool.rs no longer mentions `{needed}` — if the pool was \
             replaced, update this guard alongside it"
        );
    }
}
