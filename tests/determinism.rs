//! Reproducibility guarantees of the in-tree PRNG substrate: with the
//! registry `rand` replaced by `robonet_des::rng`, every simulation is
//! a pure function of its [`ScenarioConfig`] — same seed means
//! bit-identical [`Summary`], for every algorithm, across processes
//! and runs.

use robonet::core::metrics::Summary;
use robonet::prelude::*;

fn cfg(alg: Algorithm, seed: u64) -> ScenarioConfig {
    ScenarioConfig::paper(2, alg).with_seed(seed).scaled(32.0)
}

fn summary(alg: Algorithm, seed: u64) -> Summary {
    Simulation::run(cfg(alg, seed)).metrics.summary()
}

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Centralized,
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
];

/// Same seed → bit-identical summaries for all three coordination
/// algorithms. `Summary` contains raw f64 metrics, so `==` here means
/// every floating-point bit pattern matches — no tolerance.
#[test]
fn same_seed_is_bit_identical_for_every_algorithm() {
    for alg in ALGORITHMS {
        let a = summary(alg, 41);
        let b = summary(alg, 41);
        assert_eq!(a, b, "{alg}: same seed must give an identical Summary");
    }
}

/// Different seeds genuinely change the trace (the PRNG streams are
/// not degenerate): at least the failure schedule differs.
#[test]
fn different_seeds_give_different_traces() {
    for alg in ALGORITHMS {
        let a = summary(alg, 41);
        let b = summary(alg, 42);
        assert_ne!(a, b, "{alg}: different seeds must not collide");
    }
}

/// Determinism survives interleaving: running other seeded work
/// between two identical runs cannot perturb them (no hidden global
/// RNG state anywhere in the workspace).
#[test]
fn runs_do_not_leak_state_into_each_other() {
    let first = summary(Algorithm::Dynamic, 7);
    // Unrelated seeded work in between.
    let _ = summary(Algorithm::Centralized, 1);
    let _ = summary(Algorithm::Fixed(PartitionKind::Square), 2);
    let second = summary(Algorithm::Dynamic, 7);
    assert_eq!(
        first, second,
        "interleaved runs must not perturb each other"
    );
}
