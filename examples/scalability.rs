//! Extends the paper's robot-count axis far beyond its 16-robot maximum
//! using the calibrated flow-level model (`robonet_core::fastsim`) —
//! packet-level simulation of a 100-robot, 5000-sensor field would take
//! hours; the flow model does the whole sweep in seconds.
//!
//!     cargo run --release --example scalability
//!
//! The interesting question: does the paper's conclusion — "the
//! centralized algorithm is not scalable as the message passing distance
//! increases with the sensor network area" — keep holding, and where do
//! the crossovers land?

use robonet::core::fastsim;
use robonet::prelude::*;

fn main() {
    println!(
        "{:<6} {:>8} | {:>22} | {:>26} | {:>24}",
        "k", "robots", "report hops (C/F/D)", "upd tx per failure (C/F/D)", "travel m (C/F/D)"
    );
    for k in [2usize, 3, 4, 6, 8, 10] {
        let mut cells = Vec::new();
        for alg in [
            Algorithm::Centralized,
            Algorithm::Fixed(PartitionKind::Square),
            Algorithm::Dynamic,
        ] {
            let cfg = ScenarioConfig::paper(k, alg).with_seed(1).scaled(8.0);
            cells.push(fastsim::run(&cfg));
        }
        let (c, f, d) = (&cells[0], &cells[1], &cells[2]);
        println!(
            "{:<6} {:>8} | {:>6.1} {:>6.1} {:>7.1} | {:>8.1} {:>8.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}",
            k,
            k * k,
            c.avg_report_hops,
            f.avg_report_hops,
            d.avg_report_hops,
            c.loc_update_tx_per_failure,
            f.loc_update_tx_per_failure,
            d.loc_update_tx_per_failure,
            c.avg_travel_per_failure,
            f.avg_travel_per_failure,
            d.avg_travel_per_failure,
        );
    }
    println!();
    println!(
        "Centralized report hops grow ~linearly with k (field side) while the\n\
         distributed algorithms stay flat — the paper's scalability conclusion\n\
         extrapolates cleanly to 100 robots. Meanwhile the flooded location\n\
         updates stay ~constant per failure (cell size is fixed by design), so\n\
         the messaging ranking also persists: the trade-off the paper ends on\n\
         (\"the optimal choice depends on the specific scenarios\") is not an\n\
         artifact of small fleets."
    );
}
