//! Extends the paper's robot-count axis far beyond its 16-robot maximum
//! using the calibrated flow-level model (`robonet_core::fastsim`) —
//! packet-level simulation of a 100-robot, 5000-sensor field would take
//! hours; the flow model does the whole sweep in seconds, and the
//! work-stealing pool fans the (k, algorithm) cells across every core
//! with results in declaration order regardless of scheduling.
//!
//!     cargo run --release --example scalability
//!
//! The interesting question: does the paper's conclusion — "the
//! centralized algorithm is not scalable as the message passing distance
//! increases with the sensor network area" — keep holding, and where do
//! the crossovers land?

use robonet::core::{coord, fastsim};
use robonet::des::pool::{resolve_jobs, scatter_map};
use robonet::prelude::*;

fn main() {
    // Every registered algorithm (including the fixed-hex extension
    // the paper's figures skip) — one row per (k, algorithm), so the
    // table grows with the coordination registry.
    let cells: Vec<(usize, &'static str, ScenarioConfig)> = [2usize, 3, 4, 6, 8, 10]
        .iter()
        .flat_map(|&k| {
            coord::registry().iter().map(move |entry| {
                (
                    k,
                    entry.name,
                    ScenarioConfig::paper(k, entry.algorithm)
                        .with_seed(1)
                        .scaled(8.0),
                )
            })
        })
        .collect();
    let outputs = scatter_map(&cells, resolve_jobs(None), |_, (_, _, cfg)| {
        fastsim::run(cfg)
    });

    println!(
        "{:<6} {:>8}  {:<14} {:>12} {:>16} {:>10}",
        "k", "robots", "algorithm", "report hops", "upd tx/failure", "travel m"
    );
    let mut last_k = 0;
    for ((k, name, _), output) in cells.iter().zip(outputs) {
        let s = output.expect("flow model must not panic");
        if last_k != 0 && *k != last_k {
            println!();
        }
        last_k = *k;
        println!(
            "{:<6} {:>8}  {:<14} {:>12.1} {:>16.1} {:>10.1}",
            k,
            k * k,
            name,
            s.avg_report_hops,
            s.loc_update_tx_per_failure,
            s.avg_travel_per_failure,
        );
    }
    println!();
    println!();
    println!(
        "Centralized report hops grow ~linearly with k (field side) while the\n\
         distributed algorithms stay flat — the paper's scalability conclusion\n\
         extrapolates cleanly to 100 robots. Meanwhile the flooded location\n\
         updates stay ~constant per failure (cell size is fixed by design), so\n\
         the messaging ranking also persists: the trade-off the paper ends on\n\
         (\"the optimal choice depends on the specific scenarios\") is not an\n\
         artifact of small fleets."
    );
}
