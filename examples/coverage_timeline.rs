//! Tracks sensing coverage over time while robots repair failures — the
//! quantity the whole maintenance system exists to protect ("keep the
//! coverage", paper §1). Prints a CSV timeline plus an ASCII sparkline,
//! comparing a maintained network against one with no robots at all
//! (by disabling replacement through an empty-lifetime thought
//! experiment: we simply count what coverage the dead set would give).
//!
//!     cargo run --release --example coverage_timeline

use robonet::prelude::*;
use robonet::wsn::coverage::coverage_fraction;

fn main() {
    let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(9)
        .scaled(16.0);
    cfg.coverage_sample = Some(CoverageSampling {
        period: SimDuration::from_secs(100.0),
        sensing_range: 63.0,
        resolution: 80,
    });
    let bounds = cfg.bounds();
    let n_sensors = cfg.n_sensors();
    let outcome = Simulation::run(cfg);
    let tl = &outcome.metrics.coverage_timeline;

    println!("time_s,coverage,dead_sensors");
    for &(t, cov, dead) in tl {
        println!("{t:.0},{cov:.4},{dead}");
    }

    // Sparkline of coverage (80%..100% band).
    let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let line: String = tl
        .iter()
        .map(|&(_, cov, _)| {
            let idx = (((cov - 0.80) / 0.20) * (glyphs.len() as f64 - 1.0))
                .clamp(0.0, glyphs.len() as f64 - 1.0) as usize;
            glyphs[idx]
        })
        .collect();
    eprintln!();
    eprintln!("coverage (80%–100%):  {line}");
    let min_cov = tl.iter().map(|&(_, c, _)| c).fold(1.0f64, f64::min);
    let max_dead = tl.iter().map(|&(_, _, d)| d).max().unwrap_or(0);
    eprintln!(
        "minimum coverage {:.1}% — never more than {max_dead}/{n_sensors} sensors down at once",
        min_cov * 100.0
    );

    // Counterfactual: if nothing were ever replaced, how would coverage
    // look with that many cumulative failures?
    let failures = outcome.metrics.failures_occurred.min(n_sensors as u64) as usize;
    let mut rng = robonet::des::rng::stream(9, "counterfactual");
    let sensors = robonet::geom::deploy::uniform(&mut rng, &bounds, n_sensors);
    let mut alive = vec![true; n_sensors];
    for a in alive.iter_mut().take(failures) {
        *a = false;
    }
    let unmaintained = coverage_fraction(&bounds, &sensors, &alive, 63.0, 80);
    eprintln!(
        "without replacement, the {failures} failures of this run would leave ~{:.1}% coverage",
        unmaintained * 100.0
    );
}
