//! Quickstart: run one small scenario end to end and print every metric
//! the paper's evaluation cares about.
//!
//!     cargo run --release --example quickstart
//!
//! Uses 4 robots / 200 sensors with 16× time compression so it finishes
//! in seconds; pass `--full` for the paper's real 64000 s run.

use robonet::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 16.0 };
    let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(42)
        .scaled(scale);

    println!(
        "Field: {:.0} x {:.0} m, {} sensors, {} robots, algorithm: {}",
        cfg.side(),
        cfg.side(),
        cfg.n_sensors(),
        cfg.n_robots(),
        cfg.algorithm
    );
    println!(
        "Simulating {:.0} s of operation (mean sensor lifetime {:.0} s)...",
        cfg.sim_time.as_secs_f64(),
        cfg.mean_lifetime.as_secs_f64()
    );

    let outcome = Simulation::run(cfg);
    let m = &outcome.metrics;
    let s = m.summary();

    println!();
    println!("=== outcome ===");
    println!("events processed:             {}", outcome.events_processed);
    println!("sensor failures:              {}", s.failures_occurred);
    println!("replacements completed:       {}", s.replacements);
    println!(
        "avg travel per failure:       {:.1} m   (Figure 2 metric)",
        s.avg_travel_per_failure
    );
    println!(
        "avg failure-report hops:      {:.2}     (Figure 3 metric)",
        s.avg_report_hops
    );
    println!(
        "loc-update tx per failure:    {:.1}     (Figure 4 metric)",
        s.loc_update_tx_per_failure
    );
    println!(
        "report delivery ratio:        {:.2}%",
        s.report_delivery_ratio * 100.0
    );
    println!("avg repair delay:             {:.1} s", s.avg_repair_delay);
    println!(
        "myrobot accuracy:             {:.2}%",
        s.myrobot_accuracy * 100.0
    );
    println!();
    println!(
        "robot odometers (m): {:?}",
        m.robot_odometers
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );
    println!("tasks per robot:     {:?}", m.tasks_per_robot);
    println!();
    println!("=== MAC-level transmissions by traffic class ===");
    print!("{}", m.tx);

    // Energy view of the motion overhead (robot crate).
    let model = robonet::robot::energy::EnergyModel::default();
    let total: f64 = m.robot_odometers.iter().sum();
    println!();
    println!(
        "fleet motion energy at 1 m/s: {:.1} kJ for {:.1} km travelled",
        model.travel_energy(total, 1.0) / 1000.0,
        total / 1000.0
    );
}
