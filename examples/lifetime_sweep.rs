//! Sensitivity study: how the maintenance system behaves as sensors die
//! faster, and how much coverage the robots preserve.
//!
//!     cargo run --release --example lifetime_sweep
//!
//! Sweeps the mean sensor lifetime and reports repair latency, robot
//! load, and the sensing-coverage the fleet sustains — the quantity the
//! whole paper exists to protect ("maintain the sensor network
//! autonomously and keep the coverage", §1). The lifetime axis is an
//! explicit-cell grid on the deterministic sweep engine: all five
//! scenarios run in parallel and come back in declaration order.

use robonet::core::sweep::SweepGrid;
use robonet::des::pool::resolve_jobs;
use robonet::des::SimDuration;
use robonet::prelude::*;
use robonet::wsn::coverage::coverage_fraction;

const LIFETIMES_S: [f64; 5] = [250.0, 500.0, 1000.0, 2000.0, 4000.0];

fn main() {
    println!(
        "{:<16} {:>9} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "mean lifetime", "failures", "repaired", "delay (s)", "travel (m)", "busiest", "coverage"
    );
    // 16× compressed base scenario; lifetime expressed relative to it.
    let grid = SweepGrid::from_configs(
        LIFETIMES_S
            .iter()
            .map(|&lifetime_s| {
                let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
                    .with_seed(5)
                    .scaled(16.0);
                cfg.mean_lifetime = SimDuration::from_secs(lifetime_s);
                cfg
            })
            .collect(),
    );
    let result = grid.run(resolve_jobs(None));
    assert!(result.failed.is_empty(), "lifetime cells must not panic");
    for (cell, &lifetime_s) in result.cells.iter().zip(LIFETIMES_S.iter()) {
        let m = &cell.metrics;
        let s = m.summary();
        let busiest = m.tasks_per_robot.iter().max().copied().unwrap_or(0);

        // Approximate steady-state coverage: fraction of time-averaged
        // dead sensors = repair delay / lifetime; sample an according
        // number of dead sensors and measure.
        let cfg2 = ScenarioConfig::paper(2, Algorithm::Dynamic).with_seed(5);
        let bounds = cfg2.bounds();
        let mut rng = robonet::des::rng::stream(5, "coverage-demo");
        let sensors = robonet::geom::deploy::uniform(&mut rng, &bounds, cfg2.n_sensors());
        let dead_fraction = (s.avg_repair_delay / lifetime_s).min(1.0);
        let n_dead = (sensors.len() as f64 * dead_fraction).round() as usize;
        let mut alive = vec![true; sensors.len()];
        for dead in alive.iter_mut().take(n_dead) {
            *dead = false;
        }
        let cov = coverage_fraction(&bounds, &sensors, &alive, 63.0, 80);

        println!(
            "{:<16} {:>9} {:>10} {:>12.1} {:>12.1} {:>12} {:>11.1}%",
            format!("{lifetime_s:.0} s (16x)"),
            s.failures_occurred,
            s.replacements,
            s.avg_repair_delay,
            s.avg_travel_per_failure,
            busiest,
            cov * 100.0
        );
    }
    println!();
    println!(
        "Shorter lifetimes mean more concurrent failures: repair delay grows as robots\n\
         queue, but coverage stays high because replacement is fast relative to lifetime."
    );
}
