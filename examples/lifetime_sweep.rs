//! Sensitivity study: how the maintenance system behaves as sensors die
//! faster, and how much coverage the robots preserve.
//!
//!     cargo run --release --example lifetime_sweep
//!
//! Sweeps the mean sensor lifetime and reports repair latency, robot
//! load, and the sensing-coverage the fleet sustains — the quantity the
//! whole paper exists to protect ("maintain the sensor network
//! autonomously and keep the coverage", §1).

use robonet::des::SimDuration;
use robonet::prelude::*;
use robonet::wsn::coverage::coverage_fraction;

fn main() {
    println!(
        "{:<16} {:>9} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "mean lifetime", "failures", "repaired", "delay (s)", "travel (m)", "busiest", "coverage"
    );
    // 16× compressed base scenario; lifetime expressed relative to it.
    for lifetime_s in [250.0, 500.0, 1000.0, 2000.0, 4000.0] {
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        cfg.mean_lifetime = SimDuration::from_secs(lifetime_s);
        let outcome = Simulation::run(cfg);
        let m = &outcome.metrics;
        let s = m.summary();
        let busiest = m.tasks_per_robot.iter().max().copied().unwrap_or(0);

        // Approximate steady-state coverage: fraction of time-averaged
        // dead sensors = repair delay / lifetime; sample an according
        // number of dead sensors and measure.
        let cfg2 = ScenarioConfig::paper(2, Algorithm::Dynamic).with_seed(5);
        let bounds = cfg2.bounds();
        let mut rng = robonet::des::rng::stream(5, "coverage-demo");
        let sensors = robonet::geom::deploy::uniform(&mut rng, &bounds, cfg2.n_sensors());
        let dead_fraction = (s.avg_repair_delay / lifetime_s).min(1.0);
        let n_dead = (sensors.len() as f64 * dead_fraction).round() as usize;
        let mut alive = vec![true; sensors.len()];
        for dead in alive.iter_mut().take(n_dead) {
            *dead = false;
        }
        let cov = coverage_fraction(&bounds, &sensors, &alive, 63.0, 80);

        println!(
            "{:<16} {:>9} {:>10} {:>12.1} {:>12.1} {:>12} {:>11.1}%",
            format!("{lifetime_s:.0} s (16x)"),
            s.failures_occurred,
            s.replacements,
            s.avg_repair_delay,
            s.avg_travel_per_failure,
            busiest,
            cov * 100.0
        );
    }
    println!();
    println!(
        "Shorter lifetimes mean more concurrent failures: repair delay grows as robots\n\
         queue, but coverage stays high because replacement is fast relative to lifetime."
    );
}
