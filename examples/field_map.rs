//! Renders a complete field snapshot as SVG: the sensor deployment,
//! the robots' Voronoi cells, every robot's travelled route (recovered
//! from the protocol trace), and the sensors that were down at the end
//! of the run.
//!
//!     cargo run --release --example field_map
//!
//! Writes `field_map.svg` to the current directory.

use std::collections::HashMap;

use robonet::core::trace::TraceEvent;
use robonet::geom::voronoi::voronoi_cells;
use robonet::prelude::*;
use robonet::viz::map::FieldMap;

fn main() {
    let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
        .with_seed(21)
        .scaled(16.0);
    cfg.trace_capacity = 100_000;
    let bounds = cfg.bounds();
    let n_sensors = cfg.n_sensors();
    let n_robots = cfg.n_robots();

    let outcome = Simulation::run(cfg);

    // Recover deployment and robot routes from the deterministic streams
    // and the trace.
    let mut rng = robonet::des::rng::stream(21, "deploy");
    let sensors = robonet::geom::deploy::uniform(&mut rng, &bounds, n_sensors);
    let mut robot_rng = robonet::des::rng::stream(21, "robots");
    let starts = robonet::geom::deploy::uniform(&mut robot_rng, &bounds, n_robots);

    let mut routes: HashMap<u32, Vec<Point>> = starts
        .iter()
        .enumerate()
        .map(|(r, &p)| ((n_sensors + r) as u32, vec![p]))
        .collect();
    let mut down: Vec<u32> = Vec::new();
    for ev in outcome.trace.events() {
        match ev {
            TraceEvent::Replaced {
                robot, loc, sensor, ..
            } => {
                routes.entry(robot.as_u32()).or_default().push(*loc);
                down.retain(|s| *s != sensor.as_u32());
            }
            TraceEvent::Failure { sensor, .. } => down.push(sensor.as_u32()),
            _ => {}
        }
    }

    let finals: Vec<Point> = routes
        .iter()
        .map(|(id, path)| (*id, *path.last().expect("non-empty route")))
        .collect::<std::collections::BTreeMap<u32, Point>>()
        .into_values()
        .collect();
    let alive: Vec<bool> = (0..n_sensors as u32).map(|s| !down.contains(&s)).collect();

    let mut map = FieldMap::new(bounds, 760);
    map.cells(&voronoi_cells(&finals, &bounds));
    map.sensors(&sensors, &alive);
    for (i, (_, route)) in routes
        .iter()
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .enumerate()
    {
        map.trajectory(route, i);
    }
    map.robots(&finals);
    let svg = map.finish();
    std::fs::write("field_map.svg", &svg).expect("write SVG");

    let total_route: f64 = routes
        .values()
        .map(|r| r.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>())
        .sum();
    println!(
        "rendered {} sensors ({} down at end), {} robots, {:.1} km of routes -> field_map.svg",
        n_sensors,
        alive.iter().filter(|&&a| !a).count(),
        n_robots,
        total_route / 1000.0
    );
    println!(
        "({} replacements during the run; the Voronoi overlay shows each robot's\n\
         final responsibility region under the dynamic algorithm)",
        outcome.metrics.replacements
    );
}
