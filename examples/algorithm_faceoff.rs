//! Head-to-head comparison of the three coordination algorithms — a
//! compressed version of the paper's whole evaluation in one command.
//!
//!     cargo run --release --example algorithm_faceoff -- [scale]
//!
//! Runs 4/9/16 robots × {fixed, dynamic, centralized} and prints the
//! three figures' series plus a CSV dump. Default time compression is
//! 16× (≈ a minute); pass `1` for the paper's full runs.

use robonet::core::coord;
use robonet::core::report::{text_table, Row};
use robonet::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(16.0);
    // The three figure algorithms, in figure order, straight from the
    // coordination registry — registering a fourth joins the faceoff.
    let mut rows = Vec::new();
    for k in [2usize, 3, 4] {
        for entry in coord::figure_algorithms() {
            let cfg = ScenarioConfig::paper(k, entry.algorithm)
                .with_seed(1)
                .scaled(scale);
            eprintln!("running {} with {} robots...", entry.name, cfg.n_robots());
            let outcome = Simulation::run(cfg);
            rows.push(Row::new(&outcome.config, outcome.metrics.summary()));
        }
    }

    println!("{}", text_table(&rows));
    println!("CSV:");
    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }

    // The paper's conclusions, checked live:
    for robots in [4usize, 9, 16] {
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm == name && r.robots == robots)
                .expect("row exists")
        };
        let fixed = get("fixed");
        let dynamic = get("dynamic");
        let central = get("centralized");
        println!(
            "{robots} robots: motion fixed {:.1} vs dynamic {:.1} vs centralized {:.1} m; \
             update-tx centralized {:.0} ≪ fixed {:.0} ≤ dynamic {:.0}",
            fixed.summary.avg_travel_per_failure,
            dynamic.summary.avg_travel_per_failure,
            central.summary.avg_travel_per_failure,
            central.summary.loc_update_tx_per_failure,
            fixed.summary.loc_update_tx_per_failure,
            dynamic.summary.loc_update_tx_per_failure,
        );
    }
}
