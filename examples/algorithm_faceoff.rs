//! Head-to-head comparison of the three coordination algorithms — a
//! compressed version of the paper's whole evaluation in one command.
//!
//!     cargo run --release --example algorithm_faceoff -- [scale]
//!
//! Runs 4/9/16 robots × {fixed, dynamic, centralized} through the
//! deterministic sweep engine (all cells in parallel, results
//! independent of worker count) and prints the three figures' series
//! plus a CSV dump. Default time compression is 16× (≈ a minute); pass
//! `1` for the paper's full runs.

use robonet::core::report::{text_table, Row};
use robonet::core::sweep::SweepGrid;
use robonet::core::{coord, MergedSweep};
use robonet::des::pool::resolve_jobs;
use robonet::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(16.0);
    // The three figure algorithms, in figure order, straight from the
    // coordination registry — registering a fourth joins the faceoff.
    let mut grid = SweepGrid::new();
    for k in [2usize, 3, 4] {
        for entry in coord::figure_algorithms() {
            grid.push(
                ScenarioConfig::paper(k, entry.algorithm)
                    .with_seed(1)
                    .scaled(scale),
            );
        }
    }
    let jobs = resolve_jobs(None);
    eprintln!("running {} cells on {jobs} worker(s)...", grid.len());
    let result = grid.run(jobs);
    assert!(result.failed.is_empty(), "faceoff cells must not panic");
    let rows = result.rows();

    println!("{}", text_table(&rows));
    println!("CSV:");
    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }

    // The paper's conclusions, checked live:
    for robots in [4usize, 9, 16] {
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm == name && r.robots == robots)
                .expect("row exists")
        };
        let fixed = get("fixed");
        let dynamic = get("dynamic");
        let central = get("centralized");
        println!(
            "{robots} robots: motion fixed {:.1} vs dynamic {:.1} vs centralized {:.1} m; \
             update-tx centralized {:.0} ≪ fixed {:.0} ≤ dynamic {:.0}",
            fixed.summary.avg_travel_per_failure,
            dynamic.summary.avg_travel_per_failure,
            central.summary.avg_travel_per_failure,
            central.summary.loc_update_tx_per_failure,
            fixed.summary.loc_update_tx_per_failure,
            dynamic.summary.loc_update_tx_per_failure,
        );
    }

    // The engine's cross-cell aggregate: the whole faceoff in one
    // order-independent block.
    let merged: &MergedSweep = &result.merged;
    println!();
    println!("aggregate over all {} cells:", merged.cells);
    print!("{}", merged.report());
}
