//! Demonstrates geographic routing recovering around a coverage hole
//! with GPSR-style perimeter (face) routing — the mechanism that keeps
//! failure reports flowing when greedy forwarding hits a void
//! (paper §4.2: "recovering from holes is possible using approaches
//! such as GFG or GPSR, using planar subgraphs to route around holes").
//!
//!     cargo run --release --example hole_recovery

use robonet::des::rng::Xoshiro256;

use robonet::des::{NodeId, SimTime};
use robonet::geom::graph::UnitDiskGraph;
use robonet::geom::{deploy, Bounds, Point};
use robonet::net::{route, GeoHeader, NeighborTable, RouteDecision, RouteMode};

/// Builds each node's neighbour table from the unit-disk graph (what
/// beaconing would establish).
fn tables(g: &UnitDiskGraph) -> Vec<NeighborTable> {
    (0..g.len())
        .map(|i| {
            let mut t = NeighborTable::new();
            for &j in g.neighbors(i) {
                t.update(NodeId::new(j), g.position(j as usize), SimTime::ZERO);
            }
            t
        })
        .collect()
}

fn trace_route(g: &UnitDiskGraph, tables: &[NeighborTable], src: usize, dst: usize) {
    let mut header = GeoHeader::new(NodeId::new(dst as u32), g.position(dst));
    let mut cur = src;
    let mut prev: Option<Point> = None;
    let mut perimeter_hops = 0u32;
    print!("  route: {src}");
    loop {
        match route(
            NodeId::new(cur as u32),
            g.position(cur),
            &tables[cur],
            &mut header,
            prev,
        ) {
            RouteDecision::Deliver => {
                println!("  -> delivered");
                break;
            }
            RouteDecision::Forward(next) => {
                if matches!(header.mode, RouteMode::Perimeter { .. }) {
                    perimeter_hops += 1;
                    print!(" ~{next}");
                } else {
                    print!(" ->{next}");
                }
                prev = Some(g.position(cur));
                cur = next.index();
            }
            RouteDecision::Drop(reason) => {
                println!("  -> DROPPED ({reason:?})");
                break;
            }
        }
    }
    println!(
        "  {} hops total, {} in perimeter (recovery) mode",
        header.hops, perimeter_hops
    );
}

fn main() {
    let bounds = Bounds::square(400.0);
    let mut rng = Xoshiro256::seed_from_u64(7);
    // Deploy densely, then carve a large circular void in the middle —
    // the kind of hole a cluster of failed sensors would leave.
    let all = deploy::uniform(&mut rng, &bounds, 420);
    let hole_center = Point::new(200.0, 200.0);
    let positions: Vec<Point> = all
        .into_iter()
        .filter(|p| p.distance(hole_center) > 130.0)
        .collect();
    let g = UnitDiskGraph::build(bounds, 46.0, &positions);
    println!(
        "{} sensors around a 130 m void (46 m radio range); network connected: {}",
        g.len(),
        g.is_connected()
    );
    let t = tables(&g);

    // Pick a west-side source and an east-side destination so the
    // straight line crosses the void.
    let src = (0..g.len())
        .filter(|&i| g.position(i).x < 60.0 && (g.position(i).y - 200.0).abs() < 60.0)
        .min_by(|&a, &b| {
            g.position(a)
                .x
                .partial_cmp(&g.position(b).x)
                .expect("finite")
        })
        .expect("a west-side node exists");
    let dst = (0..g.len())
        .filter(|&i| g.position(i).x > 340.0 && (g.position(i).y - 200.0).abs() < 60.0)
        .max_by(|&a, &b| {
            g.position(a)
                .x
                .partial_cmp(&g.position(b).x)
                .expect("finite")
        })
        .expect("an east-side node exists");

    println!(
        "routing across the void: {} at {} -> {} at {}",
        src,
        g.position(src),
        dst,
        g.position(dst)
    );
    trace_route(&g, &t, src, dst);

    // And a control route that does not cross the hole.
    let dst2 = (0..g.len())
        .filter(|&i| g.position(i).x < 100.0 && g.position(i).y > 330.0)
        .min_by(|&a, &b| {
            g.position(a)
                .y
                .partial_cmp(&g.position(b).y)
                .expect("finite")
        })
        .expect("a north-west node exists");
    println!("control route along the west edge: {src} -> {dst2}");
    trace_route(&g, &t, src, dst2);
}
