//! Regenerates the paper's Figure 1 as an SVG: the Voronoi partition of
//! five robots, before and after robot R1 moves to a failure, with the
//! myrobot-switch region (the shaded area of Fig. 1(b)) highlighted.
//!
//!     cargo run --release --example voronoi_figure
//!
//! Writes `voronoi_figure.svg` to the current directory.

use std::fmt::Write as _;

use robonet::geom::voronoi::{switch_region_predicate, voronoi_cells};
use robonet::geom::{Bounds, ConvexPolygon, Point};

fn polygon_path(poly: &ConvexPolygon) -> String {
    let mut d = String::new();
    for (i, v) in poly.vertices().iter().enumerate() {
        let cmd = if i == 0 { 'M' } else { 'L' };
        let _ = write!(d, "{cmd}{:.1},{:.1} ", v.x, v.y);
    }
    d.push('Z');
    d
}

fn main() {
    let bounds = Bounds::square(500.0);
    // Five robots roughly like the paper's sketch.
    let robots = [
        Point::new(110.0, 130.0), // R1
        Point::new(120.0, 380.0), // R2
        Point::new(330.0, 420.0), // R3
        Point::new(400.0, 180.0), // R4
        Point::new(260.0, 260.0), // R5
    ];
    // The failure S that R1 drives to (inside R1's cell).
    let failure = Point::new(200.0, 90.0);

    let before = voronoi_cells(&robots, &bounds);
    let mut after_sites = robots;
    after_sites[0] = failure;
    let after = voronoi_cells(&after_sites, &bounds);
    let switches = switch_region_predicate(&robots, 0, failure);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="1040" height="540" viewBox="0 0 1040 540">"##
    );
    let palette = ["#dbeafe", "#dcfce7", "#fef9c3", "#fde2e2", "#ede9fe"];

    for (panel, cells) in [(0.0, &before), (520.0, &after)] {
        let _ = write!(svg, r##"<g transform="translate({},20)">"##, panel + 20.0);
        for (i, cell) in cells.iter().enumerate() {
            if let Some(c) = cell {
                let _ = write!(
                    svg,
                    r##"<path d="{}" fill="{}" stroke="#334155" stroke-width="1.5"/>"##,
                    polygon_path(c),
                    palette[i % palette.len()]
                );
            }
        }
        // Shade the switch region on the "after" panel by sampling.
        if panel > 0.0 {
            for ix in 0..100 {
                for iy in 0..100 {
                    let p = Point::new(ix as f64 * 5.0 + 2.5, iy as f64 * 5.0 + 2.5);
                    if switches(p) {
                        let _ = write!(
                            svg,
                            r##"<rect x="{:.1}" y="{:.1}" width="5" height="5" fill="#475569" opacity="0.35"/>"##,
                            p.x - 2.5,
                            p.y - 2.5
                        );
                    }
                }
            }
        }
        let sites = if panel > 0.0 { &after_sites } else { &robots };
        for (i, r) in sites.iter().enumerate() {
            let _ = write!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="7" fill="#0f172a"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="16" fill="#0f172a">R{}</text>"##,
                r.x,
                r.y,
                r.x + 10.0,
                r.y - 8.0,
                i + 1
            );
        }
        if panel == 0.0 {
            let _ = write!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="12" height="12" fill="#dc2626"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="16" fill="#dc2626">S</text>"##,
                failure.x - 6.0,
                failure.y - 6.0,
                failure.x + 12.0,
                failure.y - 8.0
            );
        }
        svg.push_str("</g>");
    }
    let _ = write!(
        svg,
        r##"<text x="130" y="535" font-family="sans-serif" font-size="16">(a) original Voronoi partition; failure at S</text>"##
    );
    let _ = write!(
        svg,
        r##"<text x="620" y="535" font-family="sans-serif" font-size="16">(b) after R1 moves to S; shaded: myrobot switch region</text>"##
    );
    svg.push_str("</svg>");

    let path = "voronoi_figure.svg";
    std::fs::write(path, &svg).expect("write SVG");

    // Also report the geometry quantitatively.
    let total: f64 = before.iter().flatten().map(|c| c.area()).sum();
    println!(
        "five robots partition {:.0} m² (field {:.0} m²)",
        total,
        bounds.area()
    );
    let mut switched = 0usize;
    let samples = 200 * 200;
    for ix in 0..200 {
        for iy in 0..200 {
            if switches(Point::new(ix as f64 * 2.5 + 1.25, iy as f64 * 2.5 + 1.25)) {
                switched += 1;
            }
        }
    }
    println!(
        "myrobot switch region: {:.1}% of the field must relay/adopt after R1's move",
        100.0 * switched as f64 / samples as f64
    );
    println!("wrote {path}");
}
