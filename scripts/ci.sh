#!/usr/bin/env bash
# Tier-1 gate: build, test, and smoke-run the benches — fully offline.
# The workspace has no registry dependencies (tests/hermetic.rs enforces
# this), so --offline is not just a flag but a guarantee being tested.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt (check only)"
cargo fmt --check

echo "==> clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> build (release, offline)"
cargo build --release --offline --workspace

echo "==> tests (offline)"
cargo test -q --offline --workspace

echo "==> golden trace artifact (seed-pinned run, JSONL + stats round trip)"
artifact_dir="target/ci-artifacts"
mkdir -p "$artifact_dir"
trace="$artifact_dir/golden.jsonl"
run_out="$artifact_dir/golden.run.txt"
stats_out="$artifact_dir/golden.stats.txt"
cargo run -q --release --offline -p robonet-cli --bin robonet -- \
    run --alg dynamic --k 1 --scale 64 --seed 7 --trace-out "$trace" > "$run_out"
test -s "$trace" || { echo "trace artifact is empty" >&2; exit 1; }
test -s "$artifact_dir/golden.manifest.json" || { echo "manifest missing" >&2; exit 1; }
# Every line must be one JSON object (cheap structural check; the full
# parse runs in the test suite).
if grep -cve '^{.*}$' "$trace" > /dev/null; then
    echo "malformed JSONL line in $trace:" >&2
    grep -nve '^{.*}$' "$trace" | head -3 >&2
    exit 1
fi
cargo run -q --release --offline -p robonet-cli --bin robonet -- \
    stats "$trace" > "$stats_out"
# The offline aggregate must reproduce the run's own headline figures
# verbatim (travel and hops are bit-exact by construction).
for key in "failures:" "replacements:" "travel per failure:" "report hops:"; do
    a=$(grep -F "$key" "$run_out")
    b=$(grep -F "$key" "$stats_out")
    if [ "$a" != "$b" ]; then
        echo "stats disagrees with run on \`$key\`:" >&2
        echo "  run:   $a" >&2
        echo "  stats: $b" >&2
        exit 1
    fi
done

echo "==> golden span decomposition (offline replay vs committed table)"
spans_out="$artifact_dir/golden.spans.csv"
cargo run -q --release --offline -p robonet-cli --bin robonet -- \
    spans "$trace" --csv > "$spans_out"
if ! diff -u tests/golden/spans_dynamic.csv "$spans_out"; then
    echo "span decomposition drifted from tests/golden/spans_dynamic.csv" >&2
    echo "(ROBONET_UPDATE_GOLDEN=1 cargo test -q golden_spans to regenerate)" >&2
    exit 1
fi

echo "==> bench smoke (one iteration per target)"
for bench in fig2_motion fig3_hops fig4_updates ablation_partition \
             ablation_broadcast ablation_dispatch ablation_baseline \
             micro_substrates; do
    echo "--> $bench"
    ROBONET_BENCH_SMOKE=1 cargo bench -q --offline -p robonet-bench --bench "$bench"
done

echo "==> ci.sh: all green"
