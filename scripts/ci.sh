#!/usr/bin/env bash
# Tier-1 gate: build, test, and smoke-run the benches — fully offline.
# The workspace has no registry dependencies (tests/hermetic.rs enforces
# this), so --offline is not just a flag but a guarantee being tested.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt (check only)"
cargo fmt --check

echo "==> clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> build (release, offline)"
cargo build --release --offline --workspace

echo "==> tests (offline)"
cargo test -q --offline --workspace

echo "==> bench smoke (one iteration per target)"
for bench in fig2_motion fig3_hops fig4_updates ablation_partition \
             ablation_broadcast ablation_dispatch ablation_baseline \
             micro_substrates; do
    echo "--> $bench"
    ROBONET_BENCH_SMOKE=1 cargo bench -q --offline -p robonet-bench --bench "$bench"
done

echo "==> ci.sh: all green"
