#!/usr/bin/env bash
# Tier-1 gate: build, test, and smoke-run the benches — fully offline.
# The workspace has no registry dependencies (tests/hermetic.rs enforces
# this), so --offline is not just a flag but a guarantee being tested.
#
# Usage:
#   scripts/ci.sh               full gate (what .github/workflows/ci.yml runs)
#   scripts/ci.sh --fast        pre-push subset: fmt + clippy + tests only
#   scripts/ci.sh --stage NAME  one named gate (see --list); stages that
#                               read the golden trace artifact produce it
#                               first if it is missing
#   scripts/ci.sh --list        print every stage name and its label
#
# Every stage is timed; a wall-clock summary prints at the end of a
# green run so regressions in CI latency are visible in the log.
set -euo pipefail
cd "$(dirname "$0")/.."

# The full gate in order: `name` is the `--stage` handle, the function
# is `stage_<name>`, and the label is what the log prints.
all_stages=(fmt clippy build test golden_trace golden_spans timeline
            replay_figs determinism sweep_determinism golden_figs
            scenarios scale_smoke bench_smoke)

stage_label() {
    case "$1" in
        fmt) echo "rustfmt (check only)" ;;
        clippy) echo "clippy (all targets, warnings are errors)" ;;
        build) echo "build (release, offline)" ;;
        test) echo "tests (offline)" ;;
        golden_trace) echo "golden trace artifact" ;;
        golden_spans) echo "golden span decomposition" ;;
        timeline) echo "timeline gate (golden CSVs, sampling inert)" ;;
        replay_figs) echo "replay figures gate (byte-deterministic)" ;;
        determinism) echo "determinism gate (fault-free + faulty)" ;;
        sweep_determinism) echo "sweep engine gate (--jobs 1 vs --jobs 4)" ;;
        golden_figs) echo "golden figures gate (paper-scale sweep)" ;;
        scenarios) echo "scenario library gate (golden summaries)" ;;
        scale_smoke) echo "scale smoke (2000 sensors under wall budget)" ;;
        bench_smoke) echo "bench smoke (one iteration per target)" ;;
        *) echo "$1" ;;
    esac
}

usage() {
    echo "usage: scripts/ci.sh [--fast | --stage NAME | --list]" >&2
    exit 2
}

fast=0
only_stage=""
case "${1:-}" in
    --fast) fast=1 ;;
    --stage)
        only_stage="${2:-}"
        [ -n "$only_stage" ] || usage
        ;;
    --list)
        for name in "${all_stages[@]}"; do
            printf '%-20s %s\n' "$name" "$(stage_label "$name")"
        done
        exit 0
        ;;
    "") ;;
    *) usage ;;
esac

stage_names=()
stage_secs=()

run_stage() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    stage_names+=("$name")
    stage_secs+=("$((SECONDS - t0))")
}

print_timings() {
    echo "==> stage timings"
    local i
    for i in "${!stage_names[@]}"; do
        printf '    %-42s %5ss\n' "${stage_names[$i]}" "${stage_secs[$i]}"
    done
}

robonet() {
    cargo run -q --release --offline -p robonet-cli --bin robonet -- "$@"
}

stage_fmt() {
    cargo fmt --check
}

stage_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_build() {
    # NB --workspace: the root manifest is both the workspace and a
    # lib-only package, so a bare `cargo build` would skip the binary.
    cargo build --release --offline --workspace
}

stage_test() {
    cargo test -q --offline --workspace
}

# Absolute, because cargo runs bench binaries with the package dir
# (crates/bench) as cwd — a relative ROBONET_BENCH_JSON would land there.
artifact_dir="$PWD/target/ci-artifacts"

stage_golden_trace() {
    mkdir -p "$artifact_dir"
    local trace="$artifact_dir/golden.jsonl"
    local run_out="$artifact_dir/golden.run.txt"
    local stats_out="$artifact_dir/golden.stats.txt"
    robonet run --alg dynamic --k 1 --scale 64 --seed 7 --trace-out "$trace" > "$run_out"
    test -s "$trace" || { echo "trace artifact is empty" >&2; exit 1; }
    test -s "$artifact_dir/golden.manifest.json" || { echo "manifest missing" >&2; exit 1; }
    # Every line must be one JSON object (cheap structural check; the
    # full parse runs in the test suite).
    if grep -cve '^{.*}$' "$trace" > /dev/null; then
        echo "malformed JSONL line in $trace:" >&2
        grep -nve '^{.*}$' "$trace" | head -3 >&2
        exit 1
    fi
    robonet stats "$trace" > "$stats_out"
    # The offline aggregate must reproduce the run's own headline
    # figures verbatim (travel and hops are bit-exact by construction).
    local key a b
    for key in "failures:" "replacements:" "travel per failure:" "report hops:"; do
        a=$(grep -F "$key" "$run_out")
        b=$(grep -F "$key" "$stats_out")
        if [ "$a" != "$b" ]; then
            echo "stats disagrees with run on \`$key\`:" >&2
            echo "  run:   $a" >&2
            echo "  stats: $b" >&2
            exit 1
        fi
    done
}

stage_golden_spans() {
    local spans_out="$artifact_dir/golden.spans.csv"
    robonet spans "$artifact_dir/golden.jsonl" --csv > "$spans_out"
    if ! diff -u tests/golden/spans_dynamic.csv "$spans_out"; then
        echo "span decomposition drifted from tests/golden/spans_dynamic.csv" >&2
        echo "(ROBONET_UPDATE_GOLDEN=1 cargo test -q golden_spans to regenerate)" >&2
        exit 1
    fi
}

stage_timeline() {
    # Telemetry timeline gate: sampled runs must (a) leave the protocol
    # event stream byte-identical to the unsampled golden trace and
    # (b) render timeline CSVs byte-identical to the committed goldens
    # for every algorithm.
    mkdir -p "$artifact_dir"
    local alg trace csv
    for alg in centralized fixed dynamic; do
        trace="$artifact_dir/timeline_${alg}.jsonl"
        csv="$artifact_dir/timeline_${alg}.csv"
        robonet run --alg "$alg" --k 1 --scale 64 --seed 7 \
            --sample-every 100 --trace-out "$trace" > /dev/null
        robonet timeline "$trace" --csv > "$csv"
        if ! cmp "tests/golden/timeline_${alg}.csv" "$csv"; then
            echo "timeline gate failed: $alg CSV drifted from tests/golden/timeline_${alg}.csv" >&2
            echo "(ROBONET_UPDATE_GOLDEN=1 cargo test -q golden_timeline to regenerate)" >&2
            exit 1
        fi
    done
    # Sampling is inert: strip the telemetry records from the sampled
    # dynamic trace and what remains must be the bytes the unsampled
    # golden run wrote.
    if ! grep -v '"ev":"telemetry_sample"' "$artifact_dir/timeline_dynamic.jsonl" \
            | grep -v '"ev":"invariant_violated"' \
            | cmp - "$artifact_dir/golden.jsonl"; then
        echo "timeline gate failed: sampling perturbed the protocol event stream" >&2
        exit 1
    fi
}

stage_replay_figs() {
    # The trace analyzer must be byte-deterministic: render the golden
    # trace's replay figures twice, byte-diff the pair, then byte-diff
    # against the committed goldens. The final copies stay in
    # $artifact_dir so every CI run uploads viewable SVGs.
    local kind flag out_a out_b
    for kind in anim heatmap waterfall; do
        case "$kind" in
            anim) flag=--svg ;;
            heatmap) flag=--heatmap ;;
            waterfall) flag=--waterfall ;;
        esac
        out_a="$artifact_dir/replay_${kind}.svg"
        out_b="$artifact_dir/replay_${kind}.second.svg"
        robonet replay "$artifact_dir/golden.jsonl" "$flag" "$out_a" > /dev/null
        robonet replay "$artifact_dir/golden.jsonl" "$flag" "$out_b" > /dev/null
        if ! cmp "$out_a" "$out_b"; then
            echo "replay gate failed: two $kind renders differ" >&2
            exit 1
        fi
        rm "$out_b"
        if ! cmp "tests/golden/replay_${kind}_dynamic.svg" "$out_a"; then
            echo "replay gate failed: $kind drifted from tests/golden/replay_${kind}_dynamic.svg" >&2
            echo "(ROBONET_UPDATE_GOLDEN=1 cargo test -q -p robonet-cli replay_golden to regenerate)" >&2
            exit 1
        fi
    done
    # Follow mode on the finished artifact must land on the offline
    # answer (the tail-follow loop replays to completion and exits).
    robonet replay "$artifact_dir/golden.jsonl" > "$artifact_dir/replay_offline.txt"
    robonet replay --follow "$artifact_dir/golden.jsonl" \
        > "$artifact_dir/replay_follow.txt" 2> /dev/null
    if ! cmp "$artifact_dir/replay_offline.txt" "$artifact_dir/replay_follow.txt"; then
        echo "replay gate failed: --follow disagrees with offline replay" >&2
        exit 1
    fi
}

stage_determinism() {
    # Same seed, same config → byte-identical summary, twice over: once
    # fault-free and once with the full fault plan armed (loss, robot
    # breakdowns with in-place repair, slowdowns). Only the `profile:`
    # line (wall-clock) may differ between runs.
    mkdir -p "$artifact_dir"
    robonet run --alg dynamic --k 1 --scale 64 --seed 7 \
        > "$artifact_dir/det_free_a.txt"
    robonet run --alg dynamic --k 1 --scale 64 --seed 7 \
        > "$artifact_dir/det_free_b.txt"
    local faulty=(run --alg centralized --k 1 --scale 64 --seed 7
                  --loss 0.05 --breakdown 8000 --breakdown-repair 1600
                  --slow-prob 0.3)
    robonet "${faulty[@]}" > "$artifact_dir/det_faulty_a.txt"
    robonet "${faulty[@]}" > "$artifact_dir/det_faulty_b.txt"
    local pair
    for pair in det_free det_faulty; do
        if ! diff <(grep -v '^profile:' "$artifact_dir/${pair}_a.txt") \
                  <(grep -v '^profile:' "$artifact_dir/${pair}_b.txt"); then
            echo "determinism gate failed: $pair runs differ (see $artifact_dir)" >&2
            exit 1
        fi
    done
    # The faulty run must actually have injected something, or the gate
    # silently degrades into a second fault-free check.
    if ! grep -q '^faults injected:' "$artifact_dir/det_faulty_a.txt"; then
        echo "determinism gate: faulty golden run reported no injected faults" >&2
        exit 1
    fi
}

stage_sweep_determinism() {
    # The sweep engine's headline contract, checked on the real CLI:
    # the entire `robonet sweep` output (per-cell CSV plus merged
    # aggregate) is byte-identical at 1 worker and 4 workers.
    mkdir -p "$artifact_dir"
    robonet sweep --ks 1 --seeds 1,2 --scale 64 --jobs 1 \
        > "$artifact_dir/sweep_jobs1.txt"
    robonet sweep --ks 1 --seeds 1,2 --scale 64 --jobs 4 \
        > "$artifact_dir/sweep_jobs4.txt"
    if ! diff "$artifact_dir/sweep_jobs1.txt" "$artifact_dir/sweep_jobs4.txt"; then
        echo "sweep engine gate failed: --jobs 1 and --jobs 4 outputs differ" >&2
        exit 1
    fi
    # The output must actually contain the merged aggregate, or the
    # byte-diff is comparing less than it claims.
    grep -q '^# merged aggregate' "$artifact_dir/sweep_jobs1.txt" || {
        echo "sweep output is missing the merged aggregate block" >&2
        exit 1
    }
}

stage_golden_figs() {
    # The paper-scale sweep grid must stay byte-identical to the checked
    # in reference: any change to PRNG draws, visit order, or float
    # arithmetic anywhere in the stack shows up here first.
    mkdir -p "$artifact_dir"
    robonet sweep --ks 2,3,4 --seeds 1,2 --scale 64 --jobs 4 \
        > "$artifact_dir/sweep_paper.csv"
    if ! cmp tests/golden/sweep_paper.csv "$artifact_dir/sweep_paper.csv"; then
        echo "golden figures gate failed: paper-scale sweep drifted" >&2
        diff -u tests/golden/sweep_paper.csv "$artifact_dir/sweep_paper.csv" | head -20 >&2
        exit 1
    fi
}

stage_scale_smoke() {
    # A 2000-sensor fault-free run (paper density, 4x4 fleet) must
    # finish inside a generous wall budget: the hot path regressing an
    # order of magnitude fails CI instead of only slowing the benches.
    mkdir -p "$artifact_dir"
    local budget=120
    local t0=$SECONDS
    timeout "$budget" cargo run -q --release --offline -p robonet-cli --bin robonet -- \
        run --alg dynamic --k 4 --sensors 2000 --scale 64 --seed 1 \
        > "$artifact_dir/scale_smoke.txt" || {
        echo "scale smoke failed or exceeded ${budget}s wall budget" >&2
        exit 1
    }
    echo "    2000-sensor run: $((SECONDS - t0))s (budget ${budget}s)"
    grep -q '^replacements:' "$artifact_dir/scale_smoke.txt" || {
        echo "scale smoke produced no summary" >&2
        exit 1
    }
}

# A run summary with the legitimately non-deterministic wall-clock
# `profile:` line and any trailing blank lines removed — the exact
# normalization the scenario golden tests apply.
normalize_summary() {
    grep -v '^profile:' "$1" | awk '
        { lines[NR] = $0; if ($0 != "") last = NR }
        END { for (i = 1; i <= last; i++) print lines[i] }
    '
}

stage_scenarios() {
    # Scenario library gate: every scenarios/*.rjson runs fixed-seed and
    # must reproduce its committed golden summary byte for byte, and the
    # paper_baseline scenario must additionally match the flag run it
    # encodes — proving the declarative path perturbs nothing.
    mkdir -p "$artifact_dir"
    local file name out matched=0
    for file in scenarios/*.rjson; do
        name=$(basename "$file" .rjson)
        out="$artifact_dir/scenario_${name}.txt"
        echo "--> $name"
        robonet run --scenario "$file" > "$out"
        if ! diff <(normalize_summary "$out") "tests/golden/scenario_${name}.txt"; then
            echo "scenario gate failed: $name drifted from tests/golden/scenario_${name}.txt" >&2
            echo "(ROBONET_UPDATE_GOLDEN=1 cargo test -q -p robonet-cli scenario_golden to regenerate)" >&2
            exit 1
        fi
        matched=$((matched + 1))
    done
    [ "$matched" -ge 6 ] || {
        echo "scenario gate: library shrank to $matched scenarios" >&2
        exit 1
    }
    robonet run --alg dynamic --k 2 --scale 64 --seed 1 \
        > "$artifact_dir/scenario_flag_equivalent.txt"
    if ! diff <(normalize_summary "$artifact_dir/scenario_paper_baseline.txt") \
              <(normalize_summary "$artifact_dir/scenario_flag_equivalent.txt"); then
        echo "scenario gate failed: paper_baseline.rjson differs from its flag-equivalent run" >&2
        exit 1
    fi
}

stage_bench_smoke() {
    mkdir -p "$artifact_dir"
    local bench
    for bench in fig2_motion fig3_hops fig4_updates ablation_partition \
                 ablation_broadcast ablation_dispatch ablation_baseline \
                 micro_substrates degradation_curve; do
        echo "--> $bench"
        ROBONET_BENCH_SMOKE=1 cargo bench -q --offline -p robonet-bench --bench "$bench"
    done
    # The sweep-engine bench also asserts parallel == sequential before
    # timing; its raw statistics become the BENCH_sweep.json artifact.
    echo "--> sweep_engine"
    ROBONET_BENCH_SMOKE=1 ROBONET_BENCH_JSON="$artifact_dir/BENCH_sweep.json" \
        cargo bench -q --offline -p robonet-bench --bench sweep_engine
    test -s "$artifact_dir/BENCH_sweep.json" || {
        echo "BENCH_sweep.json artifact missing or empty" >&2
        exit 1
    }
    # The packet-scale bench tracks simulator throughput across sizes;
    # its raw statistics become the BENCH_scale.json artifact. The JSON
    # writer appends, so drop any artifact left by an earlier run first.
    echo "--> packet_scale"
    rm -f "$artifact_dir/BENCH_scale.json"
    ROBONET_BENCH_SMOKE=1 ROBONET_BENCH_JSON="$artifact_dir/BENCH_scale.json" \
        cargo bench -q --offline -p robonet-bench --bench packet_scale
    test -s "$artifact_dir/BENCH_scale.json" || {
        echo "BENCH_scale.json artifact missing or empty" >&2
        exit 1
    }
    # Telemetry guardrail: packet_scale runs NullSink with sampling
    # disabled, so the sampling machinery must cost it nothing. Each
    # smoke median must stay under 0.75x the committed pre-refactor
    # baseline — the simulator currently runs at roughly half the
    # baseline, so this trips well before a real regression ships
    # while staying insensitive to shared-runner noise.
    awk -F'"median_ns":' '
        function bench_of(line) {
            match(line, /"bench":"[^"]*"/)
            return substr(line, RSTART + 9, RLENGTH - 10)
        }
        NR==FNR { split($2, a, ","); base[bench_of($1)] = a[1]; next }
        { split($2, a, ","); fresh[bench_of($1)] = a[1] }
        END {
            for (name in base) {
                if (!(name in fresh)) {
                    printf "bench %s missing from fresh artifact\n", \
                           name > "/dev/stderr"
                    bad = 1
                } else if (fresh[name] + 0 > 0.75 * base[name]) {
                    printf "%s: median %.0f ns > 0.75 x baseline %.0f ns\n", \
                           name, fresh[name], base[name] > "/dev/stderr"
                    bad = 1
                }
            }
            # A bench present fresh but absent from the baseline would
            # otherwise pass silently — and ship ungated forever.
            for (name in fresh) {
                if (!(name in base)) {
                    printf "bench %s has no committed baseline — add it to %s\n", \
                           name, \
                           "tests/golden/BENCH_scale_baseline.json" > "/dev/stderr"
                    bad = 1
                }
            }
            exit bad
        }
    ' tests/golden/BENCH_scale_baseline.json "$artifact_dir/BENCH_scale.json" || {
        echo "bench smoke: packet_scale regressed vs tests/golden/BENCH_scale_baseline.json" >&2
        exit 1
    }
}

if [ -n "$only_stage" ]; then
    declare -F "stage_$only_stage" > /dev/null || {
        echo "unknown stage \`$only_stage\` (scripts/ci.sh --list)" >&2
        exit 2
    }
    # These gates read the golden trace artifact; produce it first when
    # a standalone invocation has no earlier stage to rely on.
    case "$only_stage" in
        golden_spans|timeline|replay_figs)
            if [ ! -s "$artifact_dir/golden.jsonl" ]; then
                run_stage "$(stage_label golden_trace)" stage_golden_trace
            fi
            ;;
    esac
    run_stage "$(stage_label "$only_stage")" "stage_$only_stage"
    print_timings
    echo "==> ci.sh --stage $only_stage: green"
    exit 0
fi

run_stage "$(stage_label fmt)" stage_fmt
run_stage "$(stage_label clippy)" stage_clippy
if [ "$fast" = 1 ]; then
    run_stage "$(stage_label test)" stage_test
    print_timings
    echo "==> ci.sh --fast: all green"
    exit 0
fi
for name in "${all_stages[@]}"; do
    case "$name" in fmt|clippy) continue ;; esac
    run_stage "$(stage_label "$name")" "stage_$name"
done
print_timings
echo "==> ci.sh: all green"
