//! Property tests for the event kernel: ordering, stability,
//! cancellation and sampler statistics under arbitrary inputs.

use robonet_des::check::{self, Outcome};
use robonet_des::rng::{self, Rng};
use robonet_des::{sampler, EventQueue, Scheduler, SimDuration, SimTime};

/// Events always pop in non-decreasing time order, regardless of
/// insertion order.
#[test]
fn pop_order_is_sorted() {
    check::forall(
        "pop_order_is_sorted",
        &check::vec_of(check::u64s(0..1_000_000), 1..200),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last, "time went backwards");
                last = t;
                popped += 1;
            }
            assert_eq!(popped, times.len());
            Outcome::Pass
        },
    );
}

/// Ties pop in FIFO (insertion) order — determinism does not depend
/// on heap internals.
#[test]
fn ties_are_fifo() {
    check::forall(
        "ties_are_fifo",
        &check::vec_of(
            check::pair(check::u64s(0..100), check::usizes(1..10)),
            1..30,
        ),
        |groups| {
            let mut q = EventQueue::new();
            let mut expected: Vec<(u64, usize)> = Vec::new();
            let mut id = 0usize;
            for &(t, n) in groups {
                for _ in 0..n {
                    q.schedule(SimTime::from_nanos(t), id);
                    expected.push((t, id));
                    id += 1;
                }
            }
            expected.sort_by_key(|&(t, id)| (t, id));
            let mut actual = Vec::new();
            while let Some((t, v)) = q.pop() {
                actual.push((t.as_nanos(), v));
            }
            assert_eq!(actual, expected);
            Outcome::Pass
        },
    );
}

/// Cancelled events never pop; everything else still does.
#[test]
fn cancellation_is_exact() {
    check::forall(
        "cancellation_is_exact",
        &check::pair(
            check::vec_of(check::u64s(0..10_000), 1..100),
            check::vec_of(check::bools(), 1..100),
        ),
        |(times, cancel_mask)| {
            let mut q = EventQueue::new();
            let mut keys = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                keys.push(q.schedule(SimTime::from_nanos(t), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, (&key, &c)) in keys.iter().zip(cancel_mask).enumerate() {
                if c {
                    q.cancel(key);
                    cancelled.insert(i);
                }
            }
            let mut seen = std::collections::HashSet::new();
            while let Some((_, v)) = q.pop() {
                assert!(!cancelled.contains(&v), "cancelled event {v} popped");
                seen.insert(v);
            }
            for i in 0..times.len() {
                assert!(
                    cancelled.contains(&i) || seen.contains(&i),
                    "live event {i} vanished"
                );
            }
            Outcome::Pass
        },
    );
}

/// Pops stay sorted and FIFO-on-ties when times span every wheel store:
/// sub-tick (front), lane 0 (seconds), lane 1 (minutes) and the
/// overflow heap (beyond ~137 s), with interleaved pops advancing the
/// cursor between batches.
#[test]
fn wheel_lanes_preserve_order() {
    check::forall(
        "wheel_lanes_preserve_order",
        &check::pair(
            check::vec_of(check::u64s(0..400_000_000_000), 1..120),
            check::usizes(0..40),
        ),
        |(times, pop_between)| {
            let mut q = EventQueue::new();
            let mut expected: Vec<(u64, usize)> = Vec::new();
            let mut popped: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
                expected.push((t, i));
                if i == *pop_between {
                    // Advance the cursor mid-stream so later schedules
                    // land behind, inside and beyond the wheel span.
                    if let Some((pt, v)) = q.pop() {
                        popped.push((pt.as_nanos(), v));
                    }
                }
            }
            while let Some((t, v)) = q.pop() {
                popped.push((t.as_nanos(), v));
            }
            // The mid-stream pop can fire early relative to later
            // schedules, so compare as multisets plus per-suffix order.
            let mut sorted = popped.clone();
            sorted.sort();
            expected.sort();
            assert_eq!(sorted, expected, "events lost or duplicated");
            let tail = &popped[if popped.len() > 1 { 1 } else { 0 }..];
            assert!(
                tail.windows(2).all(|w| w[0] <= w[1]),
                "drain order not sorted: {tail:?}"
            );
            Outcome::Pass
        },
    );
}

/// The scheduler clock is monotone for any interleaving of
/// schedule_after and next_event.
#[test]
fn scheduler_clock_monotone() {
    check::forall(
        "scheduler_clock_monotone",
        &check::vec_of(check::u64s(1..1_000_000), 1..100),
        |delays| {
            let mut s: Scheduler<usize> = Scheduler::new();
            for (i, &d) in delays.iter().enumerate() {
                s.schedule_after(SimDuration::from_nanos(d), i);
            }
            let mut last = SimTime::ZERO;
            while s.next_event().is_some() {
                assert!(s.now() >= last);
                last = s.now();
            }
            assert_eq!(s.delivered_count(), delays.len() as u64);
            Outcome::Pass
        },
    );
}

/// Named RNG streams are reproducible and label-sensitive.
#[test]
fn rng_streams_reproducible() {
    check::forall(
        "rng_streams_reproducible",
        &check::pair(check::u64_any(), check::lowercase_strings(1..13)),
        |(seed, label)| {
            let mut a = rng::stream(*seed, label);
            let mut b = rng::stream(*seed, label);
            for _ in 0..8 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            Outcome::Pass
        },
    );
}

/// Exponential samples are always positive and finite.
#[test]
fn exponential_samples_positive() {
    check::forall(
        "exponential_samples_positive",
        &check::pair(check::u64_any(), check::f64s(1.0..100_000.0)),
        |(seed, mean_s)| {
            let mut r = rng::stream(*seed, "exp-test");
            for _ in 0..50 {
                let d = sampler::exponential_duration(&mut r, SimDuration::from_secs(*mean_s));
                assert!(d >= SimDuration::ZERO);
                assert!(d < SimDuration::MAX);
            }
            Outcome::Pass
        },
    );
}
