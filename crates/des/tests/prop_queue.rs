//! Property tests for the event kernel: ordering, stability,
//! cancellation and sampler statistics under arbitrary inputs.

use proptest::prelude::*;

use robonet_des::{rng, sampler, EventQueue, Scheduler, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of
    /// insertion order.
    #[test]
    fn pop_order_is_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Ties pop in FIFO (insertion) order — determinism does not depend
    /// on heap internals.
    #[test]
    fn ties_are_fifo(groups in prop::collection::vec((0u64..100, 1usize..10), 1..30)) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut id = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.schedule(SimTime::from_nanos(t), id);
                expected.push((t, id));
                id += 1;
            }
        }
        expected.sort_by_key(|&(t, id)| (t, id));
        let mut actual = Vec::new();
        while let Some((t, v)) = q.pop() {
            actual.push((t.as_nanos(), v));
        }
        prop_assert_eq!(actual, expected);
    }

    /// Cancelled events never pop; everything else still does.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            keys.push(q.schedule(SimTime::from_nanos(t), i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (i, (&key, &c)) in keys.iter().zip(&cancel_mask).enumerate() {
            if c {
                q.cancel(key);
                cancelled.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, v)) = q.pop() {
            prop_assert!(!cancelled.contains(&v), "cancelled event {v} popped");
            seen.insert(v);
        }
        for i in 0..times.len() {
            prop_assert!(
                cancelled.contains(&i) || seen.contains(&i),
                "live event {i} vanished"
            );
        }
    }

    /// The scheduler clock is monotone for any interleaving of
    /// schedule_after and next_event.
    #[test]
    fn scheduler_clock_monotone(delays in prop::collection::vec(1u64..1_000_000, 1..100)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule_after(SimDuration::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        while s.next_event().is_some() {
            prop_assert!(s.now() >= last);
            last = s.now();
        }
        prop_assert_eq!(s.delivered_count(), delays.len() as u64);
    }

    /// Named RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::Rng;
        let mut a = rng::stream(seed, &label);
        let mut b = rng::stream(seed, &label);
        for _ in 0..8 {
            prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    /// Exponential samples are always positive and finite.
    #[test]
    fn exponential_samples_positive(seed in any::<u64>(), mean_s in 1.0f64..100_000.0) {
        let mut r = rng::stream(seed, "exp-test");
        for _ in 0..50 {
            let d = sampler::exponential_duration(&mut r, SimDuration::from_secs(mean_s));
            prop_assert!(d >= SimDuration::ZERO);
            prop_assert!(d < SimDuration::MAX);
        }
    }
}
