//! A stable priority event queue with lazy cancellation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Handle returned by [`EventQueue::schedule`], usable to cancel the event
/// before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then the
        // lowest sequence number, giving FIFO order for equal times) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which makes simulations deterministic regardless of
/// heap internals. Cancellation is lazy: cancelled events stay in the heap
/// and are skipped on pop, so both `schedule` and `cancel` are O(log n).
///
/// # Example
///
/// ```
/// use robonet_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let key = q.schedule(SimTime::from_secs(5.0), "timeout");
/// q.schedule(SimTime::from_secs(1.0), "beacon");
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "beacon")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    popped: u64,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            popped: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            cancelled: HashSet::new(),
            next_seq: 0,
            popped: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` to fire at `time`, returning a key that can cancel
    /// it.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false` and is harmless.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        // An event that already popped cannot be cancelled; detect the
        // common case cheaply via the popped-watermark when keys pop in
        // order is impossible, so just track via the set: insert returns
        // false if already cancelled.
        self.cancelled.insert(key.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.popped += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently in the heap, *including* lazily
    /// cancelled ones. An upper bound on pending events.
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events popped so far (simulation statistics).
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Largest number of heap entries ever pending at once (including
    /// lazily cancelled ones) — the queue's memory high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len_upper_bound", &self.heap.len())
            .field("cancelled_pending", &self.cancelled.len())
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 3);
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        let b = q.schedule(t(2.0), "b");
        q.schedule(t(3.0), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        // The event already fired; cancelling must not poison a future
        // event that could reuse internal storage.
        q.cancel(a);
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(2.0), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.schedule(t(3.0), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.schedule(t(4.0), 4);
        // Peak was 3; dropping to 2 must not lower the mark.
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn popped_count_tracks_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(a);
        q.pop();
        assert_eq!(q.popped_count(), 1, "cancelled events do not count");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), 10);
        assert_eq!(q.pop(), Some((t(10.0), 10)));
        q.schedule(t(5.0), 5);
        q.schedule(t(20.0), 20);
        assert_eq!(q.pop(), Some((t(5.0), 5)));
        q.schedule(t(1.0), 1);
        // 1.0 is in the "past" relative to the last pop; the queue itself
        // does not enforce causality (the Scheduler does), it just orders.
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(20.0), 20)));
    }
}
