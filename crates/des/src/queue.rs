//! A stable time-ordered event queue backed by a hierarchical timer wheel.
//!
//! # Layout
//!
//! Simulated time is bucketed into *ticks* of `2^20` ns (~1.05 ms). The
//! queue keeps a cursor tick `C` and four stores, ordered by distance
//! from the cursor:
//!
//! - **front**: every pending event with `tick <= C`, kept sorted by
//!   `(time, seq)`. The head of the front is always the next event to
//!   pop, which is what makes [`peek_time`](EventQueue::peek_time),
//!   [`is_empty`](EventQueue::is_empty) and [`len`](EventQueue::len)
//!   `&self` and O(1).
//! - **lane 0**: 2048 buckets of one tick each (~2.1 s of span), indexed
//!   by `tick % 2048`. Within the live span `(C, C + 2048]` the mapping
//!   is injective, so a bucket never mixes ticks.
//! - **lane 1**: 512 buckets of 256 ticks each (~137 s of span), indexed
//!   by `(tick >> 8) % 512`; same injectivity argument on coarse ticks.
//! - **overflow**: a binary min-heap for everything beyond lane 1.
//!
//! Scheduling is O(1) for anything landing in the wheel (the common
//! case: MAC backoffs, beacon periods, retry timers) and O(log n) for
//! the overflow heap. Advancing the cursor drains the earliest nonempty
//! bucket into the front; lane-1 buckets cascade through lane 0 and
//! overflow entries are promoted into the lanes as the cursor approaches
//! them, so every event is touched a bounded number of times.
//!
//! # Cancellation
//!
//! Events live in a slab of generation-counted slots; an [`EventKey`] is
//! a `(slot, generation)` pair. Cancelling frees the slot and bumps the
//! generation in O(1); the `(time, seq, slot, generation)` reference left
//! behind in a lane or the overflow heap becomes a tombstone that is
//! recognised (by generation mismatch) and dropped when its bucket is
//! drained. The front is kept tombstone-free so its head is always live.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Nanoseconds-to-tick shift: one tick is `2^20` ns ~= 1.05 ms.
const TICK_SHIFT: u32 = 20;
/// Lane-0 bucket count (one tick per bucket); power of two.
const LANE0_BUCKETS: u64 = 2048;
/// Ticks per lane-1 bucket as a shift: `2^8` = 256 ticks ~= 268 ms.
const COARSE_SHIFT: u32 = 8;
/// Lane-1 bucket count (256 ticks per bucket); power of two.
const LANE1_BUCKETS: u64 = 512;

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> TICK_SHIFT
}

/// Handle returned by [`EventQueue::schedule`], usable to cancel the event
/// before it fires.
///
/// Packs the slab slot and its generation; a key whose generation no
/// longer matches the slot (the event fired, was cancelled, or the slot
/// was reused) cancels nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

impl EventKey {
    fn pack(slot: u32, generation: u32) -> Self {
        EventKey((u64::from(slot) << 32) | u64::from(generation))
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// One slab slot: the event payload plus the metadata needed to locate
/// and validate the wheel's references to it.
struct Slot<E> {
    generation: u32,
    time: SimTime,
    seq: u64,
    event: Option<E>,
}

/// A reference to a slot, stored in the front, a lane bucket, or the
/// overflow heap. Carries `(time, seq)` so ordering never has to chase
/// the slab, and the generation so tombstones are self-identifying.
#[derive(Clone, Copy)]
struct EntryRef {
    time: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl EntryRef {
    fn order_key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Occupancy statistics of the timer wheel, for profiling only.
///
/// High-water marks count resident entries per store (including
/// tombstones for the lanes and the overflow heap); promotions count
/// overflow entries re-filed into the lanes as the cursor approached
/// them. Diagnostic data — never feed it back into simulation
/// behaviour or deterministic result types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Peak entries resident in the sorted front.
    pub front_high_water: usize,
    /// Peak entries resident across lane-0 buckets (one tick each).
    pub lane0_high_water: usize,
    /// Peak entries resident across lane-1 buckets (256 ticks each).
    pub lane1_high_water: usize,
    /// Peak entries resident in the overflow heap.
    pub overflow_high_water: usize,
    /// Overflow entries promoted into the wheel lanes.
    pub overflow_promotions: u64,
}

/// A time-ordered event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO), which makes simulations deterministic regardless of
/// wheel internals. Cancellation is O(1): the slot is freed immediately
/// and any reference still queued becomes a tombstone dropped when its
/// bucket drains.
///
/// # Example
///
/// ```
/// use robonet_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let key = q.schedule(SimTime::from_secs(5.0), "timeout");
/// q.schedule(SimTime::from_secs(1.0), "beacon");
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "beacon")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Every pending event with `tick <= cursor`, ascending `(time, seq)`.
    /// Invariant: nonempty whenever `live > 0`, and tombstone-free.
    front: VecDeque<EntryRef>,
    lane0: Vec<Vec<EntryRef>>,
    lane1: Vec<Vec<EntryRef>>,
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32, u32)>>,
    /// Current tick `C`; lane and overflow entries all have `tick > C`.
    cursor: u64,
    /// Entries resident in lane 0 / lane 1, tombstones included.
    lane0_len: usize,
    lane1_len: usize,
    /// Pending (scheduled, not yet popped or cancelled) events.
    live: usize,
    next_seq: u64,
    popped: u64,
    high_water: usize,
    stats: WheelStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with slab room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            front: VecDeque::new(),
            lane0: (0..LANE0_BUCKETS).map(|_| Vec::new()).collect(),
            lane1: (0..LANE1_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            lane0_len: 0,
            lane1_len: 0,
            live: 0,
            next_seq: 0,
            popped: 0,
            high_water: 0,
            stats: WheelStats::default(),
        }
    }

    /// Schedules `event` to fire at `time`, returning a key that can cancel
    /// it.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, generation) = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.time = time;
                s.seq = seq;
                s.event = Some(event);
                (slot, s.generation)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("< 2^32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    time,
                    seq,
                    event: Some(event),
                });
                (slot, 0)
            }
        };
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        self.place(EntryRef {
            time,
            seq,
            slot,
            generation,
        });
        if self.front.is_empty() {
            // Only possible when the queue was empty: the invariant says a
            // nonempty front whenever anything was already live.
            self.refill_front();
        }
        EventKey::pack(slot, generation)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false` and is harmless.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(s) = self.slots.get_mut(key.slot() as usize) else {
            return false;
        };
        if s.generation != key.generation() || s.event.is_none() {
            return false;
        }
        s.event = None;
        s.generation = s.generation.wrapping_add(1);
        let (time, seq) = (s.time, s.seq);
        self.free.push(key.slot());
        self.live -= 1;
        if tick_of(time) <= self.cursor {
            // Live entries at or behind the cursor are in the front, which
            // must stay tombstone-free: remove it now.
            let i = self.front.partition_point(|e| e.order_key() < (time, seq));
            debug_assert!(self.front[i].seq == seq, "front entry out of place");
            self.front.remove(i);
            if self.front.is_empty() && self.live > 0 {
                self.refill_front();
            }
        }
        true
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.front.pop_front()?;
        let s = &mut self.slots[e.slot as usize];
        debug_assert_eq!(s.generation, e.generation, "front tombstone");
        let event = s.event.take().expect("front entries are live");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(e.slot);
        self.live -= 1;
        self.popped += 1;
        if self.front.is_empty() && self.live > 0 {
            self.refill_front();
        }
        Some((e.time, event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front.front().map(|e| e.time)
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Exact number of pending (scheduled, not yet fired or cancelled)
    /// events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Total number of events popped so far (simulation statistics).
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Largest number of pending events ever queued at once — the queue's
    /// occupancy high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Timer-wheel occupancy statistics (profiling only).
    pub fn wheel_stats(&self) -> WheelStats {
        self.stats
    }

    /// Files an entry into the store matching its distance from the
    /// cursor. Entries at or behind the cursor join the sorted front.
    fn place(&mut self, e: EntryRef) {
        let tick = tick_of(e.time);
        if tick <= self.cursor {
            let i = self
                .front
                .partition_point(|x| x.order_key() < e.order_key());
            self.front.insert(i, e);
            if self.front.len() > self.stats.front_high_water {
                self.stats.front_high_water = self.front.len();
            }
        } else if tick - self.cursor <= LANE0_BUCKETS {
            self.lane0[(tick & (LANE0_BUCKETS - 1)) as usize].push(e);
            self.lane0_len += 1;
            if self.lane0_len > self.stats.lane0_high_water {
                self.stats.lane0_high_water = self.lane0_len;
            }
        } else if (tick >> COARSE_SHIFT) - (self.cursor >> COARSE_SHIFT) <= LANE1_BUCKETS {
            self.lane1[((tick >> COARSE_SHIFT) & (LANE1_BUCKETS - 1)) as usize].push(e);
            self.lane1_len += 1;
            if self.lane1_len > self.stats.lane1_high_water {
                self.stats.lane1_high_water = self.lane1_len;
            }
        } else {
            self.overflow
                .push(Reverse((e.time, e.seq, e.slot, e.generation)));
            if self.overflow.len() > self.stats.overflow_high_water {
                self.stats.overflow_high_water = self.overflow.len();
            }
        }
    }

    fn is_live(slots: &[Slot<E>], e: &EntryRef) -> bool {
        let s = &slots[e.slot as usize];
        s.generation == e.generation && s.event.is_some()
    }

    /// Moves overflow entries whose coarse tick now fits lane 1 into the
    /// wheel, dropping tombstones encountered at the top of the heap.
    fn promote_overflow(&mut self) {
        let coarse_cursor = self.cursor >> COARSE_SHIFT;
        while let Some(&Reverse((time, seq, slot, generation))) = self.overflow.peek() {
            let e = EntryRef {
                time,
                seq,
                slot,
                generation,
            };
            if !Self::is_live(&self.slots, &e) {
                self.overflow.pop();
                continue;
            }
            if (tick_of(time) >> COARSE_SHIFT) - coarse_cursor > LANE1_BUCKETS {
                break;
            }
            self.overflow.pop();
            self.place(e);
            self.stats.overflow_promotions += 1;
        }
    }

    /// Cascades one lane-1 bucket's live entries straight into lane 0,
    /// dropping its tombstones.
    ///
    /// Cascaded entries can land up to 255 ticks past the lane-0 span
    /// (when the cursor is near the span's far edge), so lane-0 buckets
    /// may transiently hold two rounds; the scan in
    /// [`refill_front`](Self::refill_front) partitions by tick to cope.
    fn cascade_lane1(&mut self, ct: u64) {
        let b = (ct & (LANE1_BUCKETS - 1)) as usize;
        if self.lane1[b].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.lane1[b]);
        self.lane1_len -= bucket.len();
        for e in bucket.drain(..) {
            if Self::is_live(&self.slots, &e) {
                let tick = tick_of(e.time);
                debug_assert_eq!(tick >> COARSE_SHIFT, ct, "lane-1 bucket mixed coarse ticks");
                self.lane0[(tick & (LANE0_BUCKETS - 1)) as usize].push(e);
                self.lane0_len += 1;
            }
        }
        if self.lane0_len > self.stats.lane0_high_water {
            self.stats.lane0_high_water = self.lane0_len;
        }
        self.lane1[b] = bucket; // keep the allocation
    }

    /// Advances the cursor to the next tick holding live events and fills
    /// the front with them, restoring the front invariant.
    ///
    /// Must only be called with an empty front and `live > 0`; the loop
    /// terminates because every pass either fills the front, strictly
    /// shrinks the lanes/overflow, or strictly advances the cursor (and
    /// something live exists somewhere ahead of it).
    fn refill_front(&mut self) {
        debug_assert!(self.front.is_empty() && self.live > 0);
        const COARSE_MASK: u64 = (1 << COARSE_SHIFT) - 1;
        'scan: loop {
            // Pull anything newly in range first, so an old overflow entry
            // can never be outrun by the cursor chasing a later lane entry.
            self.promote_overflow();
            if self.lane0_len > 0 || self.lane1_len > 0 {
                let mut t = self.cursor;
                for _ in 0..LANE0_BUCKETS {
                    t += 1;
                    if t & COARSE_MASK == 0 {
                        // Entering a new coarse bucket: cascade its lane-1
                        // entries before looking at any tick inside it.
                        self.cascade_lane1(t >> COARSE_SHIFT);
                    }
                    let b = (t & (LANE0_BUCKETS - 1)) as usize;
                    if self.lane0[b].is_empty() {
                        continue;
                    }
                    // Move this tick's entries to the front; a later round
                    // sharing the bucket (tick ≡ t mod 2048) stays behind.
                    let mut bucket = std::mem::take(&mut self.lane0[b]);
                    self.lane0_len -= bucket.len();
                    let front = &mut self.front;
                    let slots = &self.slots;
                    bucket.retain(|e| {
                        if tick_of(e.time) != t {
                            return true;
                        }
                        if Self::is_live(slots, e) {
                            front.push_back(*e);
                        }
                        false
                    });
                    self.lane0_len += bucket.len();
                    self.lane0[b] = bucket;
                    self.cursor = t;
                    if self.front.is_empty() {
                        continue 'scan; // only tombstones or a later round
                    }
                    self.front
                        .make_contiguous()
                        .sort_unstable_by_key(|e| e.order_key());
                    if self.front.len() > self.stats.front_high_water {
                        self.stats.front_high_water = self.front.len();
                    }
                    return;
                }
                if self.lane0_len > 0 {
                    // Everything resident in lane 0 is a later round
                    // beyond the span; advance a full span and rescan.
                    self.cursor += LANE0_BUCKETS;
                    continue 'scan;
                }
                // Only lane 1 remains: fall through to the coarse scan.
            }
            if self.lane1_len > 0 {
                let cc = self.cursor >> COARSE_SHIFT;
                let mut ct = cc;
                for _ in 0..LANE1_BUCKETS {
                    ct += 1;
                    let b = (ct & (LANE1_BUCKETS - 1)) as usize;
                    if self.lane1[b].is_empty() {
                        continue;
                    }
                    // Park the cursor just before this coarse bucket and
                    // cascade it into lane 0.
                    self.cursor = (ct << COARSE_SHIFT) - 1;
                    self.cascade_lane1(ct);
                    continue 'scan;
                }
                unreachable!("lane 1 occupied but no bucket within the wheel span");
            }
            // Both lanes empty: jump to the earliest live overflow entry.
            while let Some(Reverse((time, seq, slot, generation))) = self.overflow.pop() {
                let e = EntryRef {
                    time,
                    seq,
                    slot,
                    generation,
                };
                if !Self::is_live(&self.slots, &e) {
                    continue;
                }
                // Overflow entries sit far beyond the wheel span, so the
                // tick is always large enough for the -1 park position.
                self.cursor = tick_of(time) - 1;
                self.place(e);
                self.stats.overflow_promotions += 1;
                continue 'scan;
            }
            unreachable!("live > 0 but front, lanes and overflow are all empty");
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.live)
            .field("cursor_tick", &self.cursor)
            .field("front", &self.front.len())
            .field("lane0", &self.lane0_len)
            .field("lane1", &self.lane1_len)
            .field("overflow", &self.overflow.len())
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 3);
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(2.0), 2)));
        assert_eq!(q.pop(), Some((t(3.0), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(1.0), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        let b = q.schedule(t(2.0), "b");
        q.schedule(t(3.0), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel is a no-op");
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        // The event already fired; cancelling must not poison a future
        // event that could reuse internal storage.
        q.cancel(a);
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(2.0), "b")));
    }

    #[test]
    fn stale_key_cannot_cancel_a_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert!(q.cancel(a));
        // The slot is reused by "b"; the old key's generation is stale.
        let _b = q.schedule(t(2.0), "b");
        assert!(!q.cancel(a), "stale key must not cancel the new tenant");
        assert_eq!(q.pop(), Some((t(2.0), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn len_is_exact_under_cancellation() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        let a = q.schedule(t(1.0), 1);
        q.schedule(t(200.0), 2); // far enough for the overflow heap
        q.schedule(t(3.0), 3);
        assert_eq!(q.len(), 3);
        q.cancel(a);
        assert_eq!(q.len(), 2, "cancelled events leave len immediately");
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.schedule(t(3.0), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.schedule(t(4.0), 4);
        // Peak was 3; dropping to 2 must not lower the mark.
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn popped_count_tracks_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(a);
        q.pop();
        assert_eq!(q.popped_count(), 1, "cancelled events do not count");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), 10);
        assert_eq!(q.pop(), Some((t(10.0), 10)));
        q.schedule(t(5.0), 5);
        q.schedule(t(20.0), 20);
        assert_eq!(q.pop(), Some((t(5.0), 5)));
        q.schedule(t(1.0), 1);
        // 1.0 is in the "past" relative to the last pop; the queue itself
        // does not enforce causality (the Scheduler does), it just orders.
        assert_eq!(q.pop(), Some((t(1.0), 1)));
        assert_eq!(q.pop(), Some((t(20.0), 20)));
    }

    #[test]
    fn events_pop_in_order_across_every_store() {
        // One event per store: front (sub-tick), lane 0 (~1 s),
        // lane 1 (~60 s) and overflow (~500 s), scheduled shuffled.
        let mut q = EventQueue::new();
        q.schedule(t(500.0), "overflow");
        q.schedule(t(0.0001), "front");
        q.schedule(t(60.0), "lane1");
        q.schedule(t(1.0), "lane0");
        assert_eq!(q.pop().unwrap().1, "front");
        assert_eq!(q.pop().unwrap().1, "lane0");
        assert_eq!(q.pop().unwrap().1, "lane1");
        assert_eq!(q.pop().unwrap().1, "overflow");
        assert_eq!(q.pop(), None);
        assert!(q.wheel_stats().overflow_promotions >= 1);
    }

    #[test]
    fn overflow_entry_is_not_outrun_by_a_later_lane_entry() {
        // "far" starts beyond the wheel span (overflow). After the cursor
        // advances to 100 s it becomes wheel-eligible; a later-scheduled
        // lane-1 entry at 210 s must not pop before it.
        let mut q = EventQueue::new();
        q.schedule(t(200.0), "far");
        q.schedule(t(100.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        q.schedule(t(210.0), "later");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn past_events_sort_into_the_front() {
        let mut q = EventQueue::new();
        q.schedule(t(50.0), 50);
        assert_eq!(q.pop(), Some((t(50.0), 50)));
        // All in the past relative to the cursor, scheduled out of order.
        q.schedule(t(30.0), 30);
        q.schedule(t(10.0), 10);
        q.schedule(t(20.0), 20);
        assert_eq!(q.pop(), Some((t(10.0), 10)));
        assert_eq!(q.pop(), Some((t(20.0), 20)));
        assert_eq!(q.pop(), Some((t(30.0), 30)));
    }

    #[test]
    fn cancelling_the_whole_front_refills_from_the_lanes() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(0.0001), "now");
        q.schedule(t(5.0), "later");
        assert_eq!(q.peek_time(), Some(t(0.0001)));
        assert!(q.cancel(a));
        // The front refilled eagerly: peek is &self and must see 5.0.
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.pop(), Some((t(5.0), "later")));
    }

    #[test]
    fn wheel_stats_track_lane_occupancy() {
        let mut q = EventQueue::new();
        q.schedule(t(0.0001), 0);
        q.schedule(t(1.0), 1);
        q.schedule(t(60.0), 2);
        q.schedule(t(500.0), 3);
        let s = q.wheel_stats();
        assert!(s.front_high_water >= 1);
        assert_eq!(s.lane0_high_water, 1);
        assert_eq!(s.lane1_high_water, 1);
        assert_eq!(s.overflow_high_water, 1);
        assert_eq!(s.overflow_promotions, 0);
        while q.pop().is_some() {}
        assert_eq!(q.wheel_stats().overflow_promotions, 1);
    }

    #[test]
    fn dense_same_tick_storm_stays_fifo() {
        // Many events inside one tick (sub-millisecond spread), popped
        // while more arrive: the sorted front must keep exact order.
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.schedule(SimTime::from_nanos(1000 + (i % 7) * 100), i);
        }
        let mut out = Vec::new();
        while let Some((time, i)) = q.pop() {
            out.push((time.as_nanos(), i));
        }
        let mut expected: Vec<(u64, u64)> = (0..50).map(|i| (1000 + (i % 7) * 100, i)).collect();
        expected.sort();
        assert_eq!(out, expected);
    }
}
