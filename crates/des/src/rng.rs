//! Reproducible named random-number streams.
//!
//! Every stochastic component of the simulation (deployment, sensor
//! lifetimes, MAC backoff, ...) draws from its own stream derived from a
//! single root seed and a stable label. Components therefore stay
//! statistically independent *and* reproducible: adding draws to one
//! stream never perturbs another, so experiments remain comparable across
//! code changes.
//!
//! ```
//! use robonet_des::rng;
//!
//! let mut a = rng::stream(42, "deployment");
//! let mut b = rng::stream(42, "deployment");
//! use rand::Rng;
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a root seed and a stable label.
///
/// Uses FNV-1a over the label followed by SplitMix64 finalization, which
/// decorrelates labels that share prefixes ("node-1" vs "node-10").
pub fn derive_seed(root: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ root;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Derives a child seed from a root seed and an integer key (e.g. a node
/// index), avoiding string formatting in hot paths.
pub fn derive_seed_u64(root: u64, key: u64) -> u64 {
    splitmix64(root ^ splitmix64(key.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// Creates the named random stream for `label` under `root`.
pub fn stream(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// Creates the indexed random stream for `key` under `root`.
pub fn stream_u64(root: u64, key: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_u64(root, key))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let mut a = stream(7, "mac");
        let mut b = stream(7, "mac");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = stream(7, "mac");
        let mut b = stream(7, "lifetimes");
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn prefix_labels_decorrelated() {
        // FNV alone would make "node-1" and "node-10" correlated in low
        // bits; the SplitMix64 finalizer must spread them.
        let a = derive_seed(0, "node-1");
        let b = derive_seed(0, "node-10");
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn integer_keys_match_across_calls_and_spread() {
        assert_eq!(derive_seed_u64(5, 9), derive_seed_u64(5, 9));
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|k| derive_seed_u64(5, k)).collect();
        assert_eq!(seeds.len(), 1000, "no collisions in small key range");
    }
}
