//! Reproducible named random-number streams on an in-tree PRNG.
//!
//! Every stochastic component of the simulation (deployment, sensor
//! lifetimes, MAC backoff, ...) draws from its own stream derived from a
//! single root seed and a stable label. Components therefore stay
//! statistically independent *and* reproducible: adding draws to one
//! stream never perturbs another, so experiments remain comparable across
//! code changes.
//!
//! The generator is an in-tree implementation of **xoshiro256\*\***
//! (Blackman & Vigna, 2018) seeded through SplitMix64, replacing the
//! former `rand 0.8` dependency so the workspace builds and tests fully
//! offline. The [`Rng`] trait provides the small sampling surface the
//! simulator needs: raw words, ranged integers/floats, booleans, index
//! selection and Fisher–Yates shuffling.
//!
//! ```
//! use robonet_des::rng::{self, Rng};
//!
//! let mut a = rng::stream(42, "deployment");
//! let mut b = rng::stream(42, "deployment");
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0.0..200.0);
//! assert!((0.0..200.0).contains(&x));
//! ```

use std::ops::{Range, RangeInclusive};

/// Derives a child seed from a root seed and a stable label.
///
/// Uses FNV-1a over the label followed by SplitMix64 finalization, which
/// decorrelates labels that share prefixes ("node-1" vs "node-10").
pub fn derive_seed(root: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ root;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Derives a child seed from a root seed and an integer key (e.g. a node
/// index), avoiding string formatting in hot paths.
pub fn derive_seed_u64(root: u64, key: u64) -> u64 {
    splitmix64(root ^ splitmix64(key.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// Creates the named random stream for `label` under `root`.
pub fn stream(root: u64, label: &str) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(derive_seed(root, label))
}

/// Creates the indexed random stream for `key` under `root`.
pub fn stream_u64(root: u64, key: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(derive_seed_u64(root, key))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The workspace's pseudo-random generator: xoshiro256\*\*.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; ~1 ns per draw.
/// Construct it through [`stream`]/[`stream_u64`] for named streams, or
/// [`Xoshiro256::seed_from_u64`] for ad-hoc reproducible generators in
/// tests and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64,
    /// the initialization the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix64(sm.wrapping_sub(0x9e37_79b9_7f4a_7c15));
        }
        // The all-zero state is the one fixed point of the transition
        // function; SplitMix64 expansion cannot produce it from any u64
        // seed, but guard anyway so a future constructor can't either.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }
}

impl Rng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The sampling surface the simulator draws through.
///
/// Implemented by [`Xoshiro256`]; generic so tests can substitute
/// counting or constant generators. All provided methods are defined in
/// terms of [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw —
    /// xoshiro256\*\*'s lowest bits are its weakest).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (`Range` and `RangeInclusive` over
    /// the common integer widths and `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Uniform index in `0..n` (unbiased, via Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        uniform_below(self, n as u64) as usize
    }

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Unbiased uniform draw in `0..n` via Lemire's multiply-shift with
/// rejection of the biased low region.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width range: every 64-bit word is a sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u64, u32, u16, u8, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64 => u64, i32 => u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        loop {
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Rounding in the multiply/add can land exactly on `end` for
            // very wide ranges; redraw (vanishingly rare) to keep the
            // half-open contract.
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {start}..={end}");
        start + rng.next_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = stream(7, "mac");
        let mut b = stream(7, "mac");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = stream(7, "mac");
        let mut b = stream(7, "lifetimes");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn prefix_labels_decorrelated() {
        // FNV alone would make "node-1" and "node-10" correlated in low
        // bits; the SplitMix64 finalizer must spread them.
        let a = derive_seed(0, "node-1");
        let b = derive_seed(0, "node-10");
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn integer_keys_match_across_calls_and_spread() {
        assert_eq!(derive_seed_u64(5, 9), derive_seed_u64(5, 9));
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|k| derive_seed_u64(5, k)).collect();
        assert_eq!(seeds.len(), 1000, "no collisions in small key range");
    }

    #[test]
    fn known_answer_xoshiro256starstar() {
        // Reference vector: state seeded as [1, 2, 3, 4] must produce
        // the sequence from the xoshiro256** reference implementation.
        let mut g = Xoshiro256 { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [11520, 0, 1509978240, 1215971899390074240];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_never_zero_state() {
        for seed in [0u64, 1, u64::MAX, 0xdead_beef] {
            let a = Xoshiro256::seed_from_u64(seed);
            let b = Xoshiro256::seed_from_u64(seed);
            assert_eq!(a, b);
            assert_ne!(a.s, [0; 4], "seed {seed} produced degenerate state");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Xoshiro256::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = g.gen_range(10u64..20);
            assert!((10..20).contains(&a));
            let b = g.gen_range(10u32..=20);
            assert!((10..=20).contains(&b));
            let c = g.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = g.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&d));
            let e = g.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_work() {
        let mut g = Xoshiro256::seed_from_u64(3);
        // Must not hang or panic on span overflow.
        let _ = g.gen_range(0u64..=u64::MAX);
        let _ = g.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut g = Xoshiro256::seed_from_u64(4);
        let n = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[g.gen_range(0usize..6)] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket count {c} far from 10000"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut g = Xoshiro256::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| g.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(!g.gen_bool(0.0));
        assert!(g.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_mixes() {
        let mut g = Xoshiro256::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..100).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let fixed = xs
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u32 == v)
            .count();
        assert!(fixed < 15, "{fixed} fixed points suggests a broken shuffle");
    }

    #[test]
    fn gen_index_covers_all_indices() {
        let mut g = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
