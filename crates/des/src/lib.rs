//! Deterministic discrete-event simulation kernel for the `robonet` workspace.
//!
//! This crate is the substrate every packet-level simulation in the
//! reproduction of *Replacing Failed Sensor Nodes by Mobile Robots*
//! (Mei et al., ICDCS 2006) runs on. It provides:
//!
//! - [`SimTime`] / [`SimDuration`]: nanosecond-resolution simulated time,
//! - [`EventQueue`]: a stable (FIFO-on-ties) hierarchical timer wheel
//!   with O(1) scheduling and cancellation for near-future events,
//! - [`Scheduler`]: the queue plus a current-time cursor,
//! - [`rng`]: an in-tree xoshiro256\*\* PRNG behind reproducible, named
//!   random-number streams derived from a single root seed,
//! - [`sampler`]: distribution samplers (exponential lifetimes, uniform
//!   backoff slots) built on those streams,
//! - [`check`]: a minimal property-testing harness with integrated
//!   shrinking, used by the workspace's `prop_*` test suites,
//! - [`pool`]: an in-tree work-stealing thread pool for fanning
//!   independent simulation cells across cores with per-cell panic
//!   isolation and bit-deterministic, index-ordered results,
//! - [`NodeId`]: the identifier shared by every simulated entity.
//!
//! # Example
//!
//! ```
//! use robonet_des::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_secs(2.0), "second");
//! q.schedule(SimTime::from_secs(1.0), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_secs(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod id;
pub mod pool;
mod queue;
pub mod rng;
pub mod sampler;
mod scheduler;
mod time;

pub use id::NodeId;
pub use queue::{EventKey, EventQueue, WheelStats};
pub use scheduler::{Heartbeat, Scheduler, SchedulerProfile, SubsystemTimes};
pub use time::{SimDuration, SimTime};
