//! The event queue plus a current-time cursor, with causality enforcement.

use crate::queue::{EventKey, EventQueue, WheelStats};
use crate::time::{SimDuration, SimTime};

/// An [`EventQueue`] paired with the simulation clock.
///
/// The scheduler enforces causality: events may only be scheduled at or
/// after the current time, and the clock only moves forward. Simulation
/// drivers own a `Scheduler<E>` for their event enum `E` and dispatch in a
/// loop:
///
/// ```
/// use robonet_des::{Scheduler, SimDuration, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut sched = Scheduler::new();
/// sched.schedule_after(SimDuration::from_secs(1.0), Ev::Tick(0));
/// let mut ticks = 0;
/// while let Some(ev) = sched.next_event() {
///     match ev {
///         Ev::Tick(n) if n < 2 => {
///             ticks += 1;
///             sched.schedule_after(SimDuration::from_secs(1.0), Ev::Tick(n + 1));
///         }
///         Ev::Tick(_) => ticks += 1,
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sched.now(), SimTime::from_secs(3.0));
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    started: std::time::Instant,
}

/// Wall-clock phase profile of a scheduler, captured via
/// [`Scheduler::profile`] at the end of a run.
///
/// Everything here is diagnostic: wall-clock fields vary between runs of
/// the same seed and must never feed back into simulation behaviour or
/// into deterministic result types.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerProfile {
    /// Events dispatched through [`Scheduler::next_event`].
    pub events_dispatched: u64,
    /// Peak number of pending events queued at once.
    pub queue_high_water: usize,
    /// Simulated seconds covered (current clock reading).
    pub sim_seconds: f64,
    /// Wall-clock seconds since the scheduler was created.
    pub wall_seconds: f64,
    /// Timer-wheel occupancy statistics (per-lane high-water marks and
    /// overflow promotions).
    pub wheel: WheelStats,
    /// Per-subsystem wall-clock attribution, filled in by the dispatch
    /// loop when subsystem profiling is enabled (all zeros otherwise).
    pub subsystems: SubsystemTimes,
}

/// Wall-clock seconds a dispatch loop spent inside each subsystem's
/// handlers. Like every other wall-clock figure this is diagnostic
/// only: it varies run to run and must never reach deterministic
/// result types or the trace.
///
/// The attribution is coarse — each dispatched event is billed whole to
/// the subsystem that owns its handler — and opt-in, so the timer reads
/// cost nothing on ordinary runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SubsystemTimes {
    /// Radio engine events (frame airtime, ACK timers, MAC backoff).
    pub radio_s: f64,
    /// Routing/relay forwarding hops.
    pub routing_s: f64,
    /// Coordination logic: sensor/agent ticks, failures, dispatch,
    /// robot motion — everything not claimed by another bucket.
    pub coord_s: f64,
    /// Observability sinks: coverage and telemetry sampling.
    pub obs_sink_s: f64,
}

impl SubsystemTimes {
    /// Total attributed wall-clock seconds across all subsystems.
    pub fn total(&self) -> f64 {
        self.radio_s + self.routing_s + self.coord_s + self.obs_sink_s
    }
}

impl SchedulerProfile {
    /// Simulation speed-up: simulated seconds per wall-clock second.
    /// Returns 0.0 when no wall time has been observed.
    pub fn sim_seconds_per_wall_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_seconds / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Event throughput: events dispatched per wall-clock second.
    /// Returns 0.0 when no wall time has been observed.
    pub fn events_per_wall_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events_dispatched as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for SchedulerProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events, queue high-water {}, {:.1} sim-s in {:.3} wall-s ({:.0}x real time)",
            self.events_dispatched,
            self.queue_high_water,
            self.sim_seconds,
            self.wall_seconds,
            self.sim_seconds_per_wall_second(),
        )
    }
}

/// A wall-clock pacer for periodic progress output from a dispatch
/// loop (the CLI's `run --progress` heartbeats).
///
/// [`due`](Heartbeat::due) is cheap enough to call once per dispatched
/// event: it samples the clock only every 256 calls, and returns `true`
/// at most once per `every` of wall time. Wall-clock state never feeds
/// back into simulation behaviour — a heartbeat only gates *printing*.
#[derive(Debug)]
pub struct Heartbeat {
    every: std::time::Duration,
    last: std::time::Instant,
    calls: u32,
}

impl Heartbeat {
    /// A heartbeat firing roughly every `every` of wall time.
    pub fn new(every: std::time::Duration) -> Self {
        Heartbeat {
            every,
            last: std::time::Instant::now(),
            calls: 0,
        }
    }

    /// Returns `true` when a heartbeat is due. Call once per event.
    pub fn due(&mut self) -> bool {
        self.calls = self.calls.wrapping_add(1);
        if !self.calls.is_multiple_of(256) {
            return false;
        }
        let now = std::time::Instant::now();
        if now.duration_since(self.last) >= self.every {
            self.last = now;
            true
        } else {
            false
        }
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler at time zero with no horizon.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            started: std::time::Instant::now(),
        }
    }

    /// Creates a scheduler that stops delivering events after `horizon`.
    ///
    /// Events scheduled past the horizon are accepted but never fire; this
    /// is how a fixed-length simulation run (e.g. the paper's 64000 s) is
    /// expressed.
    pub fn with_horizon(horizon: SimTime) -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon,
            started: std::time::Instant::now(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon ([`SimTime::MAX`] if unbounded).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (causality
    /// violation — always a simulation bug).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// the queue is drained or the next event lies past the horizon.
    pub fn next_event(&mut self) -> Option<E> {
        match self.queue.peek_time() {
            Some(t) if t <= self.horizon => {
                let (t, ev) = self.queue.pop().expect("peeked event exists");
                self.now = t;
                Some(ev)
            }
            _ => None,
        }
    }

    /// Number of events delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.queue.popped_count()
    }

    /// Exact number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Snapshots the wall-clock phase profile: events dispatched, queue
    /// high-water mark, and sim-seconds per wall-second since creation.
    pub fn profile(&self) -> SchedulerProfile {
        SchedulerProfile {
            events_dispatched: self.queue.popped_count(),
            queue_high_water: self.queue.high_water(),
            sim_seconds: self.now.as_secs_f64(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            wheel: self.queue.wheel_stats(),
            subsystems: SubsystemTimes::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(2.0), 2);
        s.schedule_at(SimTime::from_secs(1.0), 1);
        assert_eq!(s.next_event(), Some(1));
        assert_eq!(s.now(), SimTime::from_secs(1.0));
        assert_eq!(s.next_event(), Some(2));
        assert_eq!(s.now(), SimTime::from_secs(2.0));
        assert_eq!(s.next_event(), None);
        assert_eq!(
            s.now(),
            SimTime::from_secs(2.0),
            "time freezes when drained"
        );
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5.0), 5);
        s.next_event();
        s.schedule_at(SimTime::from_secs(1.0), 1);
    }

    #[test]
    fn horizon_cuts_off_events() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs(10.0));
        s.schedule_at(SimTime::from_secs(9.0), "in");
        s.schedule_at(SimTime::from_secs(10.0), "edge");
        s.schedule_at(SimTime::from_secs(11.0), "out");
        assert_eq!(s.next_event(), Some("in"));
        assert_eq!(s.next_event(), Some("edge"), "horizon is inclusive");
        assert_eq!(s.next_event(), None);
        assert_eq!(s.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3.0), "first");
        s.next_event();
        s.schedule_after(SimDuration::from_secs(2.0), "second");
        assert_eq!(s.next_event(), Some("second"));
        assert_eq!(s.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn profile_reports_dispatch_and_occupancy() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1.0), 1);
        s.schedule_at(SimTime::from_secs(2.0), 2);
        s.next_event();
        let p = s.profile();
        assert_eq!(p.events_dispatched, 1);
        assert_eq!(p.queue_high_water, 2);
        assert_eq!(p.sim_seconds, 1.0);
        assert!(p.wall_seconds >= 0.0);
        // Zero-wall-time guard paths never divide by zero.
        let frozen = SchedulerProfile {
            wall_seconds: 0.0,
            ..p
        };
        assert_eq!(frozen.sim_seconds_per_wall_second(), 0.0);
        assert_eq!(frozen.events_per_wall_second(), 0.0);
    }

    #[test]
    fn heartbeat_fires_after_its_interval() {
        // A zero interval is due as soon as the call-count gate opens.
        let mut hb = Heartbeat::new(std::time::Duration::ZERO);
        let fired = (0..256).filter(|_| hb.due()).count();
        assert_eq!(fired, 1, "exactly one beat per 256-call window");
        // A long interval never fires in a tight loop.
        let mut slow = Heartbeat::new(std::time::Duration::from_secs(3600));
        assert!((0..10_000).all(|_| !slow.due()));
    }

    #[test]
    fn cancel_through_scheduler() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_after(SimDuration::from_secs(1.0), "never");
        assert!(s.cancel(k));
        assert_eq!(s.next_event(), None);
        assert_eq!(s.delivered_count(), 0);
    }
}
