//! Simulated time with nanosecond resolution.
//!
//! Wireless MAC timing (20 µs slots, 10 µs SIFS, ~90 ns bit times at
//! 11 Mbps) and robot motion (seconds to hours) live on wildly different
//! scales; `u64` nanoseconds covers both without rounding drift for
//! simulations of up to ~584 years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for timers that are disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Returns the instant as whole nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since time zero.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: `earlier` is later than `self`"),
        )
    }

    /// Returns the span from `earlier` to `self`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Returns the span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time in seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "time in seconds too large to represent: {secs}"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(1.0).as_nanos(), NANOS_PER_SEC);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(0.5).as_nanos(), 500_000_000);
        assert!((SimTime::from_secs(12.25).as_secs_f64() - 12.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(3.0);
        assert_eq!(t + d, SimTime::from_secs(13.0));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(6.0));
        assert_eq!(d / 3, SimDuration::from_secs(1.0));
        assert_eq!(d + d - d, d);
    }

    #[test]
    fn duration_since_directions() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(3.0));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1e9) < SimTime::MAX);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.000250s");
    }

    #[test]
    fn saturating_mul_caps() {
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_nanos(7).saturating_mul(3),
            SimDuration::from_nanos(21)
        );
    }
}
