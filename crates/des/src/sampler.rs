//! Distribution samplers used by the simulation.
//!
//! Only the distributions the paper actually needs are implemented
//! (exponential lifetimes, uniform reals/integers), via inverse-CDF on
//! the in-tree [`crate::rng`] uniform source.

use crate::rng::Rng;

use crate::time::SimDuration;

/// Samples an exponentially distributed duration with the given mean.
///
/// Sensor lifetimes in the paper follow an exponential distribution with
/// expected value `T` (§2(a); `T` = 16000 s in §4.1).
///
/// # Panics
///
/// Panics if `mean` is zero.
pub fn exponential_duration<R: Rng + ?Sized>(rng: &mut R, mean: SimDuration) -> SimDuration {
    assert!(
        mean > SimDuration::ZERO,
        "exponential mean must be positive"
    );
    let x = exponential(rng, mean.as_secs_f64());
    // Cap at SimDuration::MAX rather than overflow for astronomically
    // unlikely draws.
    if x >= SimDuration::MAX.as_secs_f64() {
        SimDuration::MAX
    } else {
        SimDuration::from_secs(x)
    }
}

/// Samples an exponentially distributed real with the given mean.
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be finite and positive, got {mean}"
    );
    // next_f64() is in [0, 1); use 1 - u in (0, 1] so ln never sees zero.
    let u = rng.next_f64();
    -mean * (1.0 - u).ln()
}

/// Samples a uniform duration in `[0, max]` (inclusive of both ends at
/// nanosecond granularity). Used for jittering beacon phases so the whole
/// network does not beacon in lockstep.
pub fn uniform_duration<R: Rng + ?Sized>(rng: &mut R, max: SimDuration) -> SimDuration {
    SimDuration::from_nanos(rng.gen_range(0..=max.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(12345)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 200_000;
        let mean = 16_000.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, mean)).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - mean).abs() / mean < 0.02,
            "empirical mean {emp} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_memoryless_in_distribution() {
        // P(X > 2T) should be ~ P(X > T)^2 = e^-2.
        let mut r = rng();
        let n = 100_000;
        let t = 1.0;
        let samples: Vec<f64> = (0..n).map(|_| exponential(&mut r, 1.0)).collect();
        let p1 = samples.iter().filter(|&&x| x > t).count() as f64 / n as f64;
        let p2 = samples.iter().filter(|&&x| x > 2.0 * t).count() as f64 / n as f64;
        assert!((p2 - p1 * p1).abs() < 0.01, "p1={p1} p2={p2}");
    }

    #[test]
    fn exponential_duration_positive_and_finite() {
        let mut r = rng();
        for _ in 0..1000 {
            let d = exponential_duration(&mut r, SimDuration::from_secs(10.0));
            assert!(d >= SimDuration::ZERO);
            assert!(d < SimDuration::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let mut r = rng();
        exponential_duration(&mut r, SimDuration::ZERO);
    }

    #[test]
    fn uniform_duration_in_range() {
        let mut r = rng();
        let max = SimDuration::from_secs(10.0);
        for _ in 0..1000 {
            let d = uniform_duration(&mut r, max);
            assert!(d <= max);
        }
    }

    #[test]
    fn uniform_duration_covers_range() {
        let mut r = rng();
        let max = SimDuration::from_secs(10.0);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| uniform_duration(&mut r, max).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "uniform mean {mean} should be ~5");
    }
}
