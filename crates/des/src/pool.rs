//! In-tree work-stealing thread pool for embarrassingly parallel
//! sweeps.
//!
//! The workspace is registry-free (`tests/hermetic.rs`), so this is the
//! substitute for `rayon`: a fixed batch of independent cells is dealt
//! round-robin onto per-worker deques; each worker drains its own deque
//! LIFO and, when empty, steals FIFO from its peers, so an expensive
//! cell never strands the rest of the batch behind one thread. Because
//! the batch is fixed up front (cells never spawn cells), a worker that
//! finds every deque empty can simply exit — there is no idle state to
//! park in and therefore no lost-wakeup deadlock to guard against.
//!
//! # Determinism contract
//!
//! [`scatter_map`] writes each cell's output into the slot indexed by
//! that cell, and the caller folds the slots in index order after the
//! pool joins. As long as `f` is a pure function of `(index, item)` —
//! which every simulation cell is, drawing randomness only from its own
//! named seed streams ([`crate::rng`]) — the returned vector is
//! bit-identical for every worker count and any steal interleaving.
//! Worker count changes *scheduling*, never *results*.
//!
//! # Panic isolation
//!
//! A panicking cell is caught ([`std::panic::catch_unwind`]) and
//! surfaced as a [`CellPanic`] in that cell's slot; the worker moves on
//! to the next cell and every other cell still completes. No lock is
//! held across user code, so a panic can never poison the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A cell whose closure panicked, with the panic payload rendered to
/// text. The cell index is the position in the input slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Index of the failed cell in the input batch.
    pub index: usize,
    /// The panic payload (`&str`/`String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

/// Renders a `catch_unwind` payload to text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves a worker count: an explicit request wins, then the
/// `ROBONET_JOBS` environment variable, then the machine's available
/// parallelism. Zero or unparsable values are ignored at each step.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    resolve_jobs_from(explicit, std::env::var("ROBONET_JOBS").ok().as_deref())
}

/// [`resolve_jobs`] with the environment value passed in, so the
/// resolution order is testable without touching the process
/// environment.
pub fn resolve_jobs_from(explicit: Option<usize>, env: Option<&str>) -> usize {
    explicit
        .filter(|&j| j > 0)
        .or_else(|| env.and_then(|v| v.trim().parse().ok()).filter(|&j| j > 0))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
        })
}

/// Runs `f(index, &items[index])` for every item on `workers` threads
/// and returns the outputs in input order, panics isolated per cell.
///
/// `workers` is clamped to `[1, items.len()]`; with one worker (or one
/// item) everything runs on the calling thread — that path is the
/// sequential reference the determinism tests compare against, and it
/// still isolates panics.
pub fn scatter_map<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<Result<O, CellPanic>>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let run_cell = |i: usize| -> Result<O, CellPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| CellPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return (0..items.len()).map(run_cell).collect();
    }

    // Deal cells round-robin: cell i starts on worker i % workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<Result<O, CellPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let run_cell = &run_cell;
            scope.spawn(move || loop {
                // Own deque from the back (most recently dealt first),
                // steals from the front of each peer in turn — the
                // classic work-stealing deque discipline, here under a
                // short-held mutex per deque instead of lock-free CAS
                // (the workspace forbids `unsafe`, and cells are
                // simulation-sized, so queue traffic is negligible).
                let task = (0..workers).find_map(|offset| {
                    let q = &queues[(w + offset) % workers];
                    let mut q = q.lock().expect("pool queue lock");
                    if offset == 0 {
                        q.pop_back()
                    } else {
                        q.pop_front()
                    }
                });
                // Cells never enqueue new cells, so empty-everywhere is
                // a stable condition: this worker is done.
                let Some(i) = task else { break };
                let result = run_cell(i);
                *slots[i].lock().expect("pool slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool slot lock")
                .expect("every dealt cell ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 3, 8, 200] {
            let out = scatter_map(&items, workers, |i, &x| (i as u64, x * x));
            assert_eq!(out.len(), 100);
            for (i, r) in out.iter().enumerate() {
                let (idx, sq) = r.as_ref().expect("no panics");
                assert_eq!(*idx, i as u64);
                assert_eq!(*sq, (i * i) as u64);
            }
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let items: Vec<usize> = (0..57).collect();
        let hits = AtomicUsize::new(0);
        let out = scatter_map(&items, 4, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 57);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn empty_batch_is_fine() {
        let items: Vec<u32> = Vec::new();
        assert!(scatter_map(&items, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn panicking_cells_are_isolated() {
        let items: Vec<u32> = (0..20).collect();
        for workers in [1, 3] {
            let out = scatter_map(&items, workers, |_, &x| {
                assert!(x % 7 != 3, "cell rigged to fail at {x}");
                x + 1
            });
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let p = r.as_ref().expect_err("rigged cell must fail");
                    assert_eq!(p.index, i);
                    assert!(p.message.contains("rigged to fail"), "{}", p.message);
                } else {
                    assert_eq!(*r.as_ref().expect("healthy cell"), items[i] + 1);
                }
            }
        }
    }

    #[test]
    fn string_and_opaque_panic_payloads_render() {
        let items = [0u8, 1];
        let out = scatter_map(&items, 1, |_, &x| {
            if x == 0 {
                std::panic::panic_any(42u32); // not a string
            }
            panic!("plain {x}");
        });
        assert_eq!(
            out[0].as_ref().expect_err("panicked").message,
            "non-string panic payload"
        );
        assert_eq!(out[1].as_ref().expect_err("panicked").message, "plain 1");
    }

    #[test]
    fn uneven_cells_all_complete_with_stealing() {
        // Front-loaded costs: worker 0 gets the slow cells under
        // round-robin dealing, so the others must steal to finish.
        let items: Vec<u64> = (0..16)
            .map(|i| if i < 4 { 3_000_000 } else { 10 })
            .collect();
        let out = scatter_map(&items, 4, |_, &spins| {
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn jobs_resolution_order() {
        assert_eq!(resolve_jobs_from(Some(3), Some("8")), 3);
        assert_eq!(resolve_jobs_from(None, Some("8")), 8);
        assert_eq!(resolve_jobs_from(None, Some(" 2 ")), 2);
        let host = resolve_jobs_from(None, None);
        assert!(host >= 1);
        // Zero and garbage fall through to the next source.
        assert_eq!(resolve_jobs_from(Some(0), Some("5")), 5);
        assert_eq!(resolve_jobs_from(None, Some("0")), host);
        assert_eq!(resolve_jobs_from(None, Some("lots")), host);
    }
}
