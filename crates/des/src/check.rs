//! Minimal in-tree property-testing harness.
//!
//! A self-contained replacement for the `proptest` dev-dependency so the
//! workspace's randomized test suites build and run fully offline. The
//! design is Hedgehog-style *integrated shrinking*: a [`Gen`] produces a
//! [`Shrinkable`] — a value plus a lazy tree of simpler candidate values —
//! so combinators like [`Gen::map`] and [`vec_of`] shrink for free.
//!
//! ```
//! use robonet_des::check::{self, Gen, Outcome};
//!
//! check::forall("addition commutes", &check::pair(
//!     check::u64s(0..1000),
//!     check::u64s(0..1000),
//! ), |&(a, b)| {
//!     assert_eq!(a + b, b + a);
//!     Outcome::Pass
//! });
//! ```
//!
//! Environment knobs:
//!
//! - `ROBONET_CHECK_CASES`: overrides the number of cases per property.
//! - `ROBONET_CHECK_SEED`: overrides the root seed (printed on failure so
//!   a failing run can be replayed exactly).
//!
//! On failure the harness shrinks the counterexample by halving toward
//! each generator's lower bound, then panics with the property name, the
//! seed, and the minimal value found.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rng::{self, Rng, Xoshiro256};

/// Default number of cases when neither the call site nor the
/// environment says otherwise.
pub const DEFAULT_CASES: u32 = 64;

/// Result a property returns for one generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The case passed (assertion panics signal failure instead).
    Pass,
    /// The case does not satisfy the property's precondition; it is not
    /// counted. The proptest equivalent is `prop_assume!`.
    Discard,
}

/// A generated value together with a lazy tree of simpler candidates.
pub struct Shrinkable<T> {
    /// The generated value.
    pub value: T,
    shrink: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T> Clone for Shrinkable<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// A value with no simpler forms.
    pub fn leaf(value: T) -> Self {
        Shrinkable {
            value,
            shrink: Rc::new(Vec::new),
        }
    }

    /// One level of candidate simplifications, simplest first.
    pub fn shrinks(&self) -> Vec<Shrinkable<T>> {
        (self.shrink)()
    }

    fn map<U: 'static>(self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U> {
        let value = f(&self.value);
        let shrink = self.shrink;
        Shrinkable {
            value,
            shrink: Rc::new(move || shrink().into_iter().map(|c| c.map(Rc::clone(&f))).collect()),
        }
    }
}

/// A generator's boxed sampling function.
type RunFn<T> = Rc<dyn Fn(&mut Xoshiro256) -> Shrinkable<T>>;

/// A generator of shrinkable random values.
pub struct Gen<T> {
    run: RunFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a sampling function as a generator.
    pub fn new(f: impl Fn(&mut Xoshiro256) -> Shrinkable<T> + 'static) -> Self {
        Gen { run: Rc::new(f) }
    }

    /// Draws one shrinkable value.
    pub fn sample(&self, rng: &mut Xoshiro256) -> Shrinkable<T> {
        (self.run)(rng)
    }

    /// Transforms generated values; shrinking happens on the source and
    /// is mapped through `f`, so no shrink information is lost.
    pub fn map<U: 'static>(self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::new(move |rng| (self.run)(rng).map(Rc::clone(&f)))
    }
}

// ---------------------------------------------------------------------
// Primitive generators
// ---------------------------------------------------------------------

fn shrink_u64_toward(low: u64, v: u64) -> Vec<u64> {
    if v <= low {
        return Vec::new();
    }
    let mut out = vec![low];
    // Halving from below: midpoint, then increasingly close to v. Each
    // candidate re-shrinks recursively, giving binary-search descent.
    let mut delta = (v - low) / 2;
    while delta > 0 {
        let c = v - delta;
        if *out.last().unwrap() != c {
            out.push(c);
        }
        delta /= 2;
    }
    out
}

fn shrinkable_u64(low: u64, v: u64) -> Shrinkable<u64> {
    Shrinkable {
        value: v,
        shrink: Rc::new(move || {
            shrink_u64_toward(low, v)
                .into_iter()
                .map(|c| shrinkable_u64(low, c))
                .collect()
        }),
    }
}

/// Uniform `u64` in `range`, shrinking toward `range.start`.
pub fn u64s(range: Range<u64>) -> Gen<u64> {
    assert!(range.start < range.end, "empty range");
    Gen::new(move |rng| shrinkable_u64(range.start, rng.gen_range(range.clone())))
}

/// Any `u64` (full width), shrinking toward zero.
pub fn u64_any() -> Gen<u64> {
    Gen::new(|rng| shrinkable_u64(0, rng.next_u64()))
}

/// Uniform `u32` in `range`, shrinking toward `range.start`.
pub fn u32s(range: Range<u32>) -> Gen<u32> {
    assert!(range.start < range.end, "empty range");
    u64s(u64::from(range.start)..u64::from(range.end)).map(|&v| v as u32)
}

/// Uniform `usize` in `range`, shrinking toward `range.start`.
pub fn usizes(range: Range<usize>) -> Gen<usize> {
    assert!(range.start < range.end, "empty range");
    u64s(range.start as u64..range.end as u64).map(|&v| v as usize)
}

fn shrink_f64_toward(low: f64, v: f64) -> Vec<f64> {
    // Nothing to do unless strictly above `low` (NaN shrinks to nothing).
    if v.partial_cmp(&low) != Some(std::cmp::Ordering::Greater) {
        return Vec::new();
    }
    let mut out = vec![low];
    let mid = low + (v - low) / 2.0;
    // Stop bisecting once the step is negligible relative to the value;
    // otherwise f64 density makes shrink chains effectively unbounded.
    if mid > low && mid < v && (v - mid) > 1e-9 * (1.0 + v.abs()) {
        out.push(mid);
    }
    out
}

fn shrinkable_f64(low: f64, v: f64) -> Shrinkable<f64> {
    Shrinkable {
        value: v,
        shrink: Rc::new(move || {
            shrink_f64_toward(low, v)
                .into_iter()
                .map(|c| shrinkable_f64(low, c))
                .collect()
        }),
    }
}

/// Uniform `f64` in `[range.start, range.end)`, shrinking toward
/// `range.start`.
pub fn f64s(range: Range<f64>) -> Gen<f64> {
    assert!(range.start < range.end, "empty range");
    Gen::new(move |rng| shrinkable_f64(range.start, rng.gen_range(range.clone())))
}

/// Fair coin, shrinking `true` to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| {
        let v = rng.gen_bool(0.5);
        Shrinkable {
            value: v,
            shrink: Rc::new(move || {
                if v {
                    vec![Shrinkable::leaf(false)]
                } else {
                    Vec::new()
                }
            }),
        }
    })
}

/// ASCII lowercase string with length in `len`, shrinking both length
/// and characters (toward `'a'`).
pub fn lowercase_strings(len: Range<usize>) -> Gen<String> {
    vec_of(usizes(0..26), len).map(|v| v.iter().map(|&i| (b'a' + i as u8) as char).collect())
}

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

fn shrinkable_vec<T: Clone + 'static>(
    items: Vec<Shrinkable<T>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = items.iter().map(|s| s.value.clone()).collect();
    Shrinkable {
        value,
        shrink: Rc::new(move || {
            let n = items.len();
            let mut out = Vec::new();
            // Structural shrinks first: shorter vectors are simpler than
            // element-wise-smaller ones.
            if n > min_len {
                let half = (n / 2).max(min_len);
                if half < n {
                    out.push(shrinkable_vec(items[..half].to_vec(), min_len));
                    out.push(shrinkable_vec(items[n - half..].to_vec(), min_len));
                }
                for i in 0..n {
                    let mut shorter = items.clone();
                    shorter.remove(i);
                    out.push(shrinkable_vec(shorter, min_len));
                }
            }
            for i in 0..n {
                for cand in items[i].shrinks() {
                    let mut copy = items.clone();
                    copy[i] = cand;
                    out.push(shrinkable_vec(copy, min_len));
                }
            }
            out
        }),
    }
}

/// Vector of `elem` draws with length uniform in `len`; shrinks by
/// dropping halves/elements, then by shrinking elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "empty length range");
    Gen::new(move |rng| {
        let n = rng.gen_range(len.clone());
        let items: Vec<Shrinkable<T>> = (0..n).map(|_| elem.sample(rng)).collect();
        shrinkable_vec(items, len.start)
    })
}

fn shrinkable_pair<A: Clone + 'static, B: Clone + 'static>(
    a: Shrinkable<A>,
    b: Shrinkable<B>,
) -> Shrinkable<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Shrinkable {
        value,
        shrink: Rc::new(move || {
            let mut out = Vec::new();
            for ca in a.shrinks() {
                out.push(shrinkable_pair(ca, b.clone()));
            }
            for cb in b.shrinks() {
                out.push(shrinkable_pair(a.clone(), cb));
            }
            out
        }),
    }
}

/// Pairs of independent draws; shrinks each component in turn.
pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| {
        let sa = a.sample(rng);
        let sb = b.sample(rng);
        shrinkable_pair(sa, sb)
    })
}

/// Triples of independent draws.
pub fn triple<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    pair(pair(a, b), c).map(|((a, b), c)| (a.clone(), b.clone(), c.clone()))
}

/// Quadruples of independent draws.
pub fn quad<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    pair(pair(a, b), pair(c, d))
        .map(|((a, b), (c, d))| (a.clone(), b.clone(), c.clone(), d.clone()))
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Panic messages from property bodies are expected while probing and
/// shrinking; suppress the default hook's noise for those, thread-locally.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

enum CaseResult {
    Pass,
    Discard,
    Fail(String),
}

fn run_case<T>(prop: &impl Fn(&T) -> Outcome, value: &T) -> CaseResult {
    QUIET_PANICS.with(|q| q.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match r {
        Ok(Outcome::Pass) => CaseResult::Pass,
        Ok(Outcome::Discard) => CaseResult::Discard,
        Err(payload) => CaseResult::Fail(panic_message(payload)),
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Checks `prop` against [`DEFAULT_CASES`] generated cases (or
/// `ROBONET_CHECK_CASES`), panicking with a shrunk counterexample and
/// the replay seed on failure.
pub fn forall<T: Clone + Debug + 'static>(name: &str, gen: &Gen<T>, prop: impl Fn(&T) -> Outcome) {
    forall_cases(name, DEFAULT_CASES, gen, prop)
}

/// [`forall`] with an explicit case count (still overridden by
/// `ROBONET_CHECK_CASES` so CI can globally dial effort up or down).
pub fn forall_cases<T: Clone + Debug + 'static>(
    name: &str,
    cases: u32,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Outcome,
) {
    install_quiet_hook();
    let cases = env_u64("ROBONET_CHECK_CASES").map_or(cases, |v| v.max(1) as u32);
    let root = env_u64("ROBONET_CHECK_SEED").unwrap_or_else(|| rng::derive_seed(0, name));
    let max_discards = cases as u64 * 16;

    let mut passed = 0u32;
    let mut discarded = 0u64;
    let mut case = 0u64;
    while passed < cases {
        // Each case gets its own derived stream so a failure replays
        // from (root, case) alone, independent of draw counts elsewhere.
        let mut case_rng = Xoshiro256::seed_from_u64(rng::derive_seed_u64(root, case));
        case += 1;
        let sample = gen.sample(&mut case_rng);
        match run_case(&prop, &sample.value) {
            CaseResult::Pass => passed += 1,
            CaseResult::Discard => {
                discarded += 1;
                if discarded > max_discards {
                    eprintln!(
                        "check '{name}': giving up after {discarded} discards \
                         ({passed}/{cases} cases passed) — precondition too strict"
                    );
                    return;
                }
            }
            CaseResult::Fail(msg) => {
                let (minimal, steps, msg) = shrink(sample, &prop, msg);
                panic!(
                    "property '{name}' falsified after {passed} passing case(s)\n\
                     minimal counterexample ({steps} shrink steps): {minimal:?}\n\
                     failure: {msg}\n\
                     replay with ROBONET_CHECK_SEED={root}"
                );
            }
        }
    }
}

/// Greedy descent through the shrink tree: take the first candidate that
/// still fails, repeat from there, bounded by a global attempt budget.
fn shrink<T: Clone + Debug + 'static>(
    mut current: Shrinkable<T>,
    prop: &impl Fn(&T) -> Outcome,
    mut msg: String,
) -> (T, u32, String) {
    const MAX_ATTEMPTS: u32 = 1024;
    let mut attempts = 0u32;
    let mut steps = 0u32;
    'descend: loop {
        for cand in current.shrinks() {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                break 'descend;
            }
            if let CaseResult::Fail(m) = run_case(prop, &cand.value) {
                current = cand;
                msg = m;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current.value, steps, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        forall_cases("trivially true", 32, &u64s(0..100), |_| {
            hits.set(hits.get() + 1);
            Outcome::Pass
        });
        assert!(hits.get() >= 32);
    }

    #[test]
    fn failing_property_panics_with_context() {
        let r = std::panic::catch_unwind(|| {
            forall_cases("always false", 16, &u64s(0..100), |_| {
                panic!("nope");
            })
        });
        let msg = match r {
            Err(p) => super::panic_message(p),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("always false"), "{msg}");
        assert!(msg.contains("ROBONET_CHECK_SEED="), "{msg}");
    }

    #[test]
    fn integers_shrink_to_the_boundary() {
        // Fails for v >= 57: minimal counterexample must be exactly 57.
        let r = std::panic::catch_unwind(|| {
            forall_cases("ge 57", 64, &u64s(0..10_000), |&v| {
                assert!(v < 57);
                Outcome::Pass
            })
        });
        let msg = super::panic_message(r.expect_err("must fail"));
        assert!(
            msg.contains("counterexample") && msg.contains(": 57\n"),
            "expected minimal 57 in: {msg}"
        );
    }

    #[test]
    fn vectors_shrink_to_minimal_failing_shape() {
        // Fails when any element >= 50; minimal case is a single [50].
        let r = std::panic::catch_unwind(|| {
            forall_cases("elem ge 50", 64, &vec_of(u64s(0..100), 0..20), |v| {
                assert!(v.iter().all(|&x| x < 50));
                Outcome::Pass
            })
        });
        let msg = super::panic_message(r.expect_err("must fail"));
        assert!(msg.contains("[50]"), "expected [50] in: {msg}");
    }

    #[test]
    fn map_preserves_shrinking() {
        // Doubling map: property fails for doubled >= 40, i.e. raw >= 20;
        // minimal doubled value must be 40.
        let r = std::panic::catch_unwind(|| {
            forall_cases("mapped", 64, &u64s(0..1000).map(|&v| v * 2), |&v| {
                assert!(v < 40);
                Outcome::Pass
            })
        });
        let msg = super::panic_message(r.expect_err("must fail"));
        assert!(msg.contains(": 40\n"), "expected minimal 40 in: {msg}");
    }

    #[test]
    fn discard_does_not_consume_cases() {
        let passed = std::cell::Cell::new(0u32);
        forall_cases("half discarded", 16, &u64s(0..100), |&v| {
            if v < 50 {
                return Outcome::Discard;
            }
            passed.set(passed.get() + 1);
            Outcome::Pass
        });
        assert!(passed.get() >= 16);
    }

    #[test]
    fn pairs_and_strings_generate_and_shrink() {
        forall_cases(
            "pair/string smoke",
            32,
            &pair(lowercase_strings(1..12), bools()),
            |(s, _)| {
                assert!(!s.is_empty() && s.len() < 12);
                assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
                Outcome::Pass
            },
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let first: std::cell::RefCell<Vec<u64>> = Default::default();
        forall_cases("collect a", 8, &u64s(0..1_000_000), |&v| {
            first.borrow_mut().push(v);
            Outcome::Pass
        });
        let second: std::cell::RefCell<Vec<u64>> = Default::default();
        forall_cases("collect a", 8, &u64s(0..1_000_000), |&v| {
            second.borrow_mut().push(v);
            Outcome::Pass
        });
        assert_eq!(first, second, "same name+seed must replay identically");
    }
}
