//! Identifiers for simulated entities.

use std::fmt;

/// Identifier of a simulated node (sensor, robot, or manager).
///
/// Plain `u32` indices keep per-node state in dense `Vec`s; the newtype
/// prevents mixing node ids with other integers (sequence numbers, hop
/// counts, ...).
///
/// ```
/// use robonet_des::NodeId;
/// let ids: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// assert_eq!(ids[2].index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index, for use with dense per-node storage.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
