//! Property tests for sensor protocol state.

use robonet_des::check::{self, Gen, Outcome};

use robonet_des::{NodeId, SimDuration, SimTime};
use robonet_geom::{Bounds, Point};
use robonet_wsn::coverage::coverage_fraction;
use robonet_wsn::SensorState;

fn point() -> Gen<Point> {
    check::pair(check::f64s(0.0..500.0), check::f64s(0.0..500.0)).map(|&(x, y)| Point::new(x, y))
}

/// The chosen guardian is the nearest neighbour among candidates —
/// never a filtered-out node, never farther than another candidate.
#[test]
fn guardian_is_nearest_candidate() {
    check::forall(
        "guardian_is_nearest_candidate",
        &check::triple(
            point(),
            check::vec_of(point(), 1..20),
            check::vec_of(check::bools(), 1..20),
        ),
        |(me, neighbors, banned_mask)| {
            let me = *me;
            let mut s = SensorState::new(NodeId::new(0), me);
            for (i, &loc) in neighbors.iter().enumerate() {
                s.hear(NodeId::new(i as u32 + 1), loc, SimTime::ZERO);
            }
            let banned: std::collections::HashSet<u32> = banned_mask
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as u32 + 1)
                .collect();
            let pick = s.pick_guardian(SimTime::ZERO, |id| !banned.contains(&id.as_u32()));
            match pick {
                Some(g) => {
                    assert!(!banned.contains(&g.as_u32()));
                    let gd = neighbors[g.index() - 1].distance(me);
                    for (i, &loc) in neighbors.iter().enumerate() {
                        let id = i as u32 + 1;
                        if !banned.contains(&id) {
                            assert!(loc.distance(me) >= gd - 1e-9);
                        }
                    }
                }
                None => {
                    // Only possible when every neighbour is banned.
                    for i in 1..=neighbors.len() as u32 {
                        assert!(banned.contains(&i));
                    }
                }
            }
            Outcome::Pass
        },
    );
}

/// Guardee silence detection is exact: silent iff no beacon within
/// the timeout.
#[test]
fn silence_detection_exact() {
    check::forall(
        "silence_detection_exact",
        &check::triple(
            check::vec_of(check::f64s(0.0..100.0), 1..20),
            check::f64s(0.0..200.0),
            check::f64s(1.0..50.0),
        ),
        |(beacon_times, check_at, timeout_s)| {
            let (check_at, timeout_s) = (*check_at, *timeout_s);
            let mut s = SensorState::new(NodeId::new(0), Point::ZERO);
            let guardee = NodeId::new(7);
            s.add_guardee(guardee, SimTime::ZERO);
            let mut last = 0.0f64;
            let mut times = beacon_times.clone();
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &t in &times {
                if t <= check_at {
                    s.hear(guardee, Point::new(1.0, 1.0), SimTime::from_secs(t));
                    last = last.max(t);
                }
            }
            let now = SimTime::from_secs(check_at.max(last));
            let silent = s.silent_guardees(now, SimDuration::from_secs(timeout_s));
            let expected_silent = now.as_secs_f64() - last >= timeout_s - 1e-9;
            assert_eq!(silent.contains(&guardee), expected_silent);
            Outcome::Pass
        },
    );
}

/// myrobot is always the argmin of the remembered robot locations.
#[test]
fn myrobot_is_argmin() {
    check::forall(
        "myrobot_is_argmin",
        &check::pair(
            point(),
            check::vec_of(check::pair(check::u32s(0..6), point()), 1..40),
        ),
        |(me, updates)| {
            let me = *me;
            let mut s = SensorState::new(NodeId::new(0), me);
            let mut truth: std::collections::HashMap<u32, Point> = Default::default();
            for &(r, loc) in updates {
                s.consider_robot(NodeId::new(100 + r), loc);
                truth.insert(100 + r, loc);
            }
            let (my, _) = s.myrobot.expect("at least one robot known");
            let my_d = truth[&my.as_u32()].distance(me);
            for (_, &loc) in truth.iter() {
                assert!(loc.distance(me) >= my_d - 1e-9);
            }
            Outcome::Pass
        },
    );
}

/// Coverage is monotone in the alive set: killing sensors never
/// increases coverage; reviving restores it exactly.
#[test]
fn coverage_monotone() {
    check::forall(
        "coverage_monotone",
        &check::pair(check::vec_of(point(), 1..60), check::usizes(0..1 << 32)),
        |(sensors, kill)| {
            let b = Bounds::square(500.0);
            let alive = vec![true; sensors.len()];
            let full = coverage_fraction(&b, sensors, &alive, 63.0, 40);
            let mut one_dead = alive.clone();
            one_dead[kill % sensors.len()] = false;
            let reduced = coverage_fraction(&b, sensors, &one_dead, 63.0, 40);
            assert!(reduced <= full + 1e-12);
            let restored = coverage_fraction(&b, sensors, &alive, 63.0, 40);
            assert_eq!(restored, full);
            Outcome::Pass
        },
    );
}

/// Replacement resets protocol state but never identity/location.
#[test]
fn replacement_reset_is_complete() {
    check::forall(
        "replacement_reset_is_complete",
        &check::pair(point(), check::vec_of(point(), 1..10)),
        |(me, neighbors)| {
            let me = *me;
            let mut s = SensorState::new(NodeId::new(3), me);
            for (i, &loc) in neighbors.iter().enumerate() {
                s.hear(NodeId::new(i as u32 + 10), loc, SimTime::from_secs(1.0));
            }
            s.pick_guardian(SimTime::from_secs(1.0), |_| true);
            s.add_guardee(NodeId::new(10), SimTime::from_secs(1.0));
            s.consider_robot(NodeId::new(200), Point::ZERO);
            s.alive = false;
            s.reset_for_replacement();
            assert!(s.alive);
            assert_eq!(s.id, NodeId::new(3));
            assert_eq!(s.loc, me);
            assert!(s.neighbors.is_empty());
            assert!(s.guardian.is_none());
            assert!(s.guardees.is_empty());
            assert!(s.myrobot.is_none());
            assert!(s.robot_locs.is_empty());
            Outcome::Pass
        },
    );
}
