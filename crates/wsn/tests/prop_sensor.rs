//! Property tests for sensor protocol state.

use proptest::prelude::*;

use robonet_des::{NodeId, SimDuration, SimTime};
use robonet_geom::{Bounds, Point};
use robonet_wsn::coverage::coverage_fraction;
use robonet_wsn::SensorState;

fn point() -> impl Strategy<Value = Point> {
    (0.0f64..500.0, 0.0f64..500.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen guardian is the nearest neighbour among candidates —
    /// never a filtered-out node, never farther than another candidate.
    #[test]
    fn guardian_is_nearest_candidate(
        me in point(),
        neighbors in prop::collection::vec(point(), 1..20),
        banned_mask in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut s = SensorState::new(NodeId::new(0), me);
        for (i, &loc) in neighbors.iter().enumerate() {
            s.hear(NodeId::new(i as u32 + 1), loc, SimTime::ZERO);
        }
        let banned: std::collections::HashSet<u32> = banned_mask
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        let pick = s.pick_guardian(SimTime::ZERO, |id| !banned.contains(&id.as_u32()));
        match pick {
            Some(g) => {
                prop_assert!(!banned.contains(&g.as_u32()));
                let gd = neighbors[g.index() - 1].distance(me);
                for (i, &loc) in neighbors.iter().enumerate() {
                    let id = i as u32 + 1;
                    if !banned.contains(&id) {
                        prop_assert!(loc.distance(me) >= gd - 1e-9);
                    }
                }
            }
            None => {
                // Only possible when every neighbour is banned.
                for i in 1..=neighbors.len() as u32 {
                    prop_assert!(banned.contains(&i));
                }
            }
        }
    }

    /// Guardee silence detection is exact: silent iff no beacon within
    /// the timeout.
    #[test]
    fn silence_detection_exact(
        beacon_times in prop::collection::vec(0.0f64..100.0, 1..20),
        check_at in 0.0f64..200.0,
        timeout_s in 1.0f64..50.0,
    ) {
        let mut s = SensorState::new(NodeId::new(0), Point::ZERO);
        let guardee = NodeId::new(7);
        s.add_guardee(guardee, SimTime::ZERO);
        let mut last = 0.0f64;
        let mut times = beacon_times.clone();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &t in &times {
            if t <= check_at {
                s.hear(guardee, Point::new(1.0, 1.0), SimTime::from_secs(t));
                last = last.max(t);
            }
        }
        let now = SimTime::from_secs(check_at.max(last));
        let silent = s.silent_guardees(now, SimDuration::from_secs(timeout_s));
        let expected_silent = now.as_secs_f64() - last >= timeout_s - 1e-9;
        prop_assert_eq!(silent.contains(&guardee), expected_silent);
    }

    /// myrobot is always the argmin of the remembered robot locations.
    #[test]
    fn myrobot_is_argmin(
        me in point(),
        updates in prop::collection::vec((0u32..6, point()), 1..40),
    ) {
        let mut s = SensorState::new(NodeId::new(0), me);
        let mut truth: std::collections::HashMap<u32, Point> = Default::default();
        for &(r, loc) in &updates {
            s.consider_robot(NodeId::new(100 + r), loc);
            truth.insert(100 + r, loc);
        }
        let (my, _) = s.myrobot.expect("at least one robot known");
        let my_d = truth[&my.as_u32()].distance(me);
        for (_, &loc) in truth.iter() {
            prop_assert!(loc.distance(me) >= my_d - 1e-9);
        }
    }

    /// Coverage is monotone in the alive set: killing sensors never
    /// increases coverage; reviving restores it exactly.
    #[test]
    fn coverage_monotone(
        sensors in prop::collection::vec(point(), 1..60),
        kill in any::<prop::sample::Index>(),
    ) {
        let b = Bounds::square(500.0);
        let alive = vec![true; sensors.len()];
        let full = coverage_fraction(&b, &sensors, &alive, 63.0, 40);
        let mut one_dead = alive.clone();
        one_dead[kill.index(sensors.len())] = false;
        let reduced = coverage_fraction(&b, &sensors, &one_dead, 63.0, 40);
        prop_assert!(reduced <= full + 1e-12);
        let restored = coverage_fraction(&b, &sensors, &alive, 63.0, 40);
        prop_assert_eq!(restored, full);
    }

    /// Replacement resets protocol state but never identity/location.
    #[test]
    fn replacement_reset_is_complete(
        me in point(),
        neighbors in prop::collection::vec(point(), 1..10),
    ) {
        let mut s = SensorState::new(NodeId::new(3), me);
        for (i, &loc) in neighbors.iter().enumerate() {
            s.hear(NodeId::new(i as u32 + 10), loc, SimTime::from_secs(1.0));
        }
        s.pick_guardian(SimTime::from_secs(1.0), |_| true);
        s.add_guardee(NodeId::new(10), SimTime::from_secs(1.0));
        s.consider_robot(NodeId::new(200), Point::ZERO);
        s.alive = false;
        s.reset_for_replacement();
        prop_assert!(s.alive);
        prop_assert_eq!(s.id, NodeId::new(3));
        prop_assert_eq!(s.loc, me);
        prop_assert!(s.neighbors.is_empty());
        prop_assert!(s.guardian.is_none());
        prop_assert!(s.guardees.is_empty());
        prop_assert!(s.myrobot.is_none());
        prop_assert!(s.robot_locs.is_empty());
    }
}
