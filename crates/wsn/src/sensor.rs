//! Per-sensor protocol state.
//!
//! Each sensor (paper §2–3) keeps: a beacon-maintained neighbour table;
//! a *guardian* (its nearest neighbour, which watches it) and a set of
//! *guardees* (neighbours it watches); the identity and last known
//! location of the robot it reports failures to (`myrobot`); and flood
//! deduplication state for robot location updates.

use robonet_des::{NodeId, SimDuration, SimTime};
use robonet_geom::Point;
use robonet_net::flood::DedupTable;
use robonet_net::NeighborTable;

/// What re-evaluating guardian health produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardianEvent {
    /// The guardian is still beaconing (or none is assigned).
    Healthy,
    /// The guardian went silent; the sensor must select a new one
    /// ("if a guardee has not received any beacon from a guardian for a
    /// certain interval, it ... selects a new guardian from its one-hop
    /// neighbors", §3.1).
    GuardianLost(NodeId),
}

/// Protocol state of one sensor node.
#[derive(Debug, Clone)]
pub struct SensorState {
    /// This sensor's id.
    pub id: NodeId,
    /// Its (fixed) deployment location.
    pub loc: Point,
    /// Whether the node is currently functional.
    pub alive: bool,
    /// One-hop neighbours and their advertised locations.
    pub neighbors: NeighborTable,
    /// The neighbour this sensor chose to watch it.
    pub guardian: Option<NodeId>,
    /// When the guardian was last heard.
    pub guardian_last_heard: Option<SimTime>,
    /// Nodes this sensor watches, with the time each was last heard,
    /// sorted by id (a sensor watches a handful of neighbours, so a
    /// sorted vec beats a tree on the per-beacon refresh path).
    pub guardees: Vec<(NodeId, SimTime)>,
    /// The robot this sensor reports failures to, with its last known
    /// location — always the closest robot among [`SensorState::robot_locs`].
    pub myrobot: Option<(NodeId, Point)>,
    /// Last known location of every robot this sensor has heard about
    /// (from location-update floods and robot hellos), sorted by robot
    /// id. The dynamic algorithm's `myrobot` is the closest of these,
    /// so a receding robot is replaced by a previously heard closer one.
    pub robot_locs: Vec<(NodeId, Point)>,
    /// The central manager's identity and location (centralized
    /// algorithm only).
    pub manager: Option<(NodeId, Point)>,
    /// Flood deduplication for robot location updates.
    pub dedup: DedupTable,
    /// Per-guardee report backoff: a failure already reported is not
    /// re-reported until this time, so an in-progress repair is not
    /// spammed but a lost report eventually retries.
    reported_until: Vec<(NodeId, SimTime)>,
    /// Per-guardee report attempt counts (only populated when the fault
    /// layer's bounded-retry protocol is active).
    report_attempts: Vec<(NodeId, u32)>,
}

impl SensorState {
    /// Creates a fresh, alive sensor at `loc`.
    pub fn new(id: NodeId, loc: Point) -> Self {
        SensorState {
            id,
            loc,
            alive: true,
            neighbors: NeighborTable::new(),
            guardian: None,
            guardian_last_heard: None,
            guardees: Vec::new(),
            myrobot: None,
            manager: None,
            dedup: DedupTable::new(),
            robot_locs: Vec::new(),
            reported_until: Vec::new(),
            report_attempts: Vec::new(),
        }
    }

    /// Records hearing `from` at `loc` (beacon or location broadcast).
    /// Refreshes the neighbour table, the guardee timer if `from` is a
    /// guardee, and the guardian timer if `from` is the guardian.
    pub fn hear(&mut self, from: NodeId, loc: Point, now: SimTime) {
        self.neighbors.update(from, loc, now);
        if let Ok(i) = self.guardees.binary_search_by_key(&from, |&(id, _)| id) {
            self.guardees[i].1 = now;
            if let Ok(j) = self
                .reported_until
                .binary_search_by_key(&from, |&(id, _)| id)
            {
                self.reported_until.remove(j);
            }
            if let Ok(j) = self
                .report_attempts
                .binary_search_by_key(&from, |&(id, _)| id)
            {
                self.report_attempts.remove(j);
            }
        }
        if self.guardian == Some(from) {
            self.guardian_last_heard = Some(now);
        }
    }

    /// Selects the nearest neighbour passing `filter` as the new
    /// guardian and returns it (§3.1: "picks its nearest neighbor as its
    /// guardian"). The caller is responsible for sending the
    /// confirmation message that makes this sensor the guardian's
    /// guardee.
    pub fn pick_guardian(
        &mut self,
        now: SimTime,
        filter: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        let pick = self.neighbors.nearest(self.loc, filter);
        self.guardian = pick;
        self.guardian_last_heard = pick.map(|_| now);
        pick
    }

    /// Accepts a guardian-confirmation from `from`: this sensor now
    /// watches `from`.
    pub fn add_guardee(&mut self, from: NodeId, now: SimTime) {
        match self.guardees.binary_search_by_key(&from, |&(id, _)| id) {
            Ok(i) => self.guardees[i].1 = now,
            Err(i) => self.guardees.insert(i, (from, now)),
        }
    }

    /// Stops watching `node` (it failed and was reported, or re-homed).
    /// Returns `true` if it was a guardee.
    pub fn remove_guardee(&mut self, node: NodeId) -> bool {
        if let Ok(i) = self
            .reported_until
            .binary_search_by_key(&node, |&(id, _)| id)
        {
            self.reported_until.remove(i);
        }
        if let Ok(i) = self
            .report_attempts
            .binary_search_by_key(&node, |&(id, _)| id)
        {
            self.report_attempts.remove(i);
        }
        match self.guardees.binary_search_by_key(&node, |&(id, _)| id) {
            Ok(i) => {
                self.guardees.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns `true` if a silent guardee should be reported now — i.e.
    /// it has not already been reported within the retry window.
    pub fn should_report(&self, guardee: NodeId, now: SimTime) -> bool {
        match self
            .reported_until
            .binary_search_by_key(&guardee, |&(id, _)| id)
        {
            Ok(i) => now >= self.reported_until[i].1,
            Err(_) => true,
        }
    }

    /// Records that `guardee`'s failure was reported; it will not be
    /// reported again before `now + retry`.
    pub fn mark_reported(&mut self, guardee: NodeId, now: SimTime, retry: SimDuration) {
        match self
            .reported_until
            .binary_search_by_key(&guardee, |&(id, _)| id)
        {
            Ok(i) => self.reported_until[i].1 = now + retry,
            Err(i) => self.reported_until.insert(i, (guardee, now + retry)),
        }
    }

    /// Increments and returns the 1-based report attempt count for
    /// `guardee` — the fault layer's bounded-retry bookkeeping. Cleared
    /// when the guardee is heard again, removed, or this sensor is
    /// replaced.
    pub fn note_report_attempt(&mut self, guardee: NodeId) -> u32 {
        match self
            .report_attempts
            .binary_search_by_key(&guardee, |&(id, _)| id)
        {
            Ok(i) => {
                self.report_attempts[i].1 += 1;
                self.report_attempts[i].1
            }
            Err(i) => {
                self.report_attempts.insert(i, (guardee, 1));
                1
            }
        }
    }

    /// Guardees whose beacons have been silent for at least `timeout`
    /// ("three beaconing periods in our study"). The caller reports each
    /// failure and then calls [`SensorState::remove_guardee`].
    pub fn silent_guardees(&self, now: SimTime, timeout: SimDuration) -> Vec<NodeId> {
        self.guardees
            .iter()
            .filter(|&&(_, last)| now.saturating_duration_since(last) >= timeout)
            .map(|&(id, _)| id)
            .collect()
    }

    /// Checks guardian health: lost if silent for `timeout`.
    pub fn check_guardian(&self, now: SimTime, timeout: SimDuration) -> GuardianEvent {
        match (self.guardian, self.guardian_last_heard) {
            (Some(g), Some(last)) if now.saturating_duration_since(last) >= timeout => {
                GuardianEvent::GuardianLost(g)
            }
            _ => GuardianEvent::Healthy,
        }
    }

    /// Processes a neighbour's confirmed failure: evicts it from the
    /// neighbour table ("when a node detects a neighbor sensor node's
    /// failure, it deletes the failed neighbor from its neighbor table",
    /// §4.2(a)), the guardee set, and — if it was the guardian — clears
    /// the guardian slot. Returns `true` if a new guardian is needed.
    pub fn forget_failed_neighbor(&mut self, node: NodeId) -> bool {
        self.neighbors.remove(node);
        if let Ok(i) = self.guardees.binary_search_by_key(&node, |&(id, _)| id) {
            self.guardees.remove(i);
        }
        if let Ok(i) = self
            .report_attempts
            .binary_search_by_key(&node, |&(id, _)| id)
        {
            self.report_attempts.remove(i);
        }
        if self.guardian == Some(node) {
            self.guardian = None;
            self.guardian_last_heard = None;
            true
        } else {
            false
        }
    }

    /// Like [`SensorState::forget_failed_neighbor`] but *keeps watching*
    /// the failed node: it stays a guardee so the retry window can fire
    /// again if the report is lost. Used by the fault layer's bounded
    /// retry protocol; routing state (neighbour table, guardian slot) is
    /// scrubbed exactly as in the fault-free path. Returns `true` if a
    /// new guardian is needed.
    pub fn scrub_failed_neighbor(&mut self, node: NodeId) -> bool {
        self.neighbors.remove(node);
        if self.guardian == Some(node) {
            self.guardian = None;
            self.guardian_last_heard = None;
            true
        } else {
            false
        }
    }

    /// Considers a robot location update: records `robot`'s new position
    /// and re-evaluates `myrobot` as the closest known robot ("the nodes
    /// update their myrobots dynamically to be the closest robot",
    /// §3.3). Returns `true` if the update is *relevant* to this sensor:
    /// `myrobot` changed, or the updating robot is (still) `myrobot` —
    /// exactly the cases in which the sensor must relay the update so
    /// the rest of the cell keeps tracking its manager.
    pub fn consider_robot(&mut self, robot: NodeId, loc: Point) -> bool {
        match self.robot_locs.binary_search_by_key(&robot, |&(id, _)| id) {
            Ok(i) => self.robot_locs[i].1 = loc,
            Err(i) => self.robot_locs.insert(i, (robot, loc)),
        }
        // `myrobot` is maintained incrementally: a full argmin scan is
        // only needed when the current myrobot itself recedes.
        let Some((cur_id, cur_loc)) = self.myrobot else {
            self.myrobot = Some((robot, loc));
            return true;
        };
        let d_new = self.loc.distance_sq(loc);
        if robot == cur_id {
            if d_new <= self.loc.distance_sq(cur_loc) {
                // Moved closer (or held): every other robot was already
                // farther than the old position, so it stays myrobot.
                self.myrobot = Some((robot, loc));
            } else {
                self.recompute_myrobot();
            }
            // The updating robot was myrobot (and may still be): the
            // update is relevant either way.
            return true;
        }
        let d_cur = self.loc.distance_sq(cur_loc);
        if d_new < d_cur || (d_new == d_cur && robot < cur_id) {
            self.myrobot = Some((robot, loc));
            return true;
        }
        // A robot that was not myrobot and did not beat it cannot change
        // the argmin.
        false
    }

    /// Forgets one robot (presumed broken down): removes it from the
    /// known locations and re-evaluates `myrobot` as the closest
    /// remaining robot. Returns `true` if `myrobot` changed.
    pub fn forget_robot(&mut self, robot: NodeId) -> bool {
        let Ok(i) = self.robot_locs.binary_search_by_key(&robot, |&(id, _)| id) else {
            return false;
        };
        self.robot_locs.remove(i);
        if self.myrobot.map(|(id, _)| id) == Some(robot) {
            self.recompute_myrobot();
            true
        } else {
            false
        }
    }

    /// `myrobot` := argmin over remembered robot locations (ties broken
    /// by id for determinism).
    fn recompute_myrobot(&mut self) {
        let me = self.loc;
        self.myrobot = self
            .robot_locs
            .iter()
            .min_by(|(a_id, a), (b_id, b)| {
                me.distance_sq(*a)
                    .partial_cmp(&me.distance_sq(*b))
                    .expect("finite robot location")
                    .then(a_id.cmp(b_id))
            })
            .copied();
    }

    /// Forgets everything known about robot locations (testing/failover).
    pub fn clear_robot_knowledge(&mut self) {
        self.robot_locs.clear();
        self.myrobot = None;
    }

    /// Resets protocol state for a replacement node installed at the
    /// same location ("replacement nodes are at the same locations as
    /// the corresponding failed nodes", §2(d)). Identity and location
    /// are retained; everything learned is forgotten.
    pub fn reset_for_replacement(&mut self) {
        self.alive = true;
        self.neighbors = NeighborTable::new();
        self.guardian = None;
        self.guardian_last_heard = None;
        self.guardees.clear();
        self.reported_until.clear();
        self.report_attempts.clear();
        self.myrobot = None;
        self.robot_locs.clear();
        self.manager = None;
        self.dedup.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sensor_with_neighbors() -> SensorState {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.hear(n(1), p(10.0, 0.0), t(0.0));
        s.hear(n(2), p(5.0, 0.0), t(0.0));
        s.hear(n(3), p(50.0, 0.0), t(0.0));
        s
    }

    #[test]
    fn picks_nearest_neighbor_as_guardian() {
        let mut s = sensor_with_neighbors();
        assert_eq!(s.pick_guardian(t(1.0), |_| true), Some(n(2)));
        assert_eq!(s.guardian, Some(n(2)));
        assert_eq!(s.guardian_last_heard, Some(t(1.0)));
    }

    #[test]
    fn guardian_filter_respected() {
        let mut s = sensor_with_neighbors();
        // e.g. fixed algorithm: node 2 is across a subarea border.
        assert_eq!(s.pick_guardian(t(0.0), |id| id != n(2)), Some(n(1)));
    }

    #[test]
    fn guardee_timeout_detection() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.add_guardee(n(5), t(0.0));
        s.add_guardee(n(6), t(0.0));
        // n(5) beacons at t=25, n(6) stays silent.
        s.hear(n(5), p(1.0, 1.0), t(25.0));
        assert!(s.silent_guardees(t(29.0), d(30.0)).is_empty());
        assert_eq!(s.silent_guardees(t(31.0), d(30.0)), vec![n(6)]);
        assert!(s.remove_guardee(n(6)));
        assert!(s.silent_guardees(t(31.0), d(30.0)).is_empty());
    }

    #[test]
    fn hearing_a_guardee_refreshes_its_timer() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.add_guardee(n(5), t(0.0));
        for k in 1..10 {
            s.hear(n(5), p(1.0, 1.0), t(k as f64 * 10.0));
        }
        assert!(s.silent_guardees(t(95.0), d(30.0)).is_empty());
    }

    #[test]
    fn guardian_loss_detected_and_replaced() {
        let mut s = sensor_with_neighbors();
        s.pick_guardian(t(0.0), |_| true);
        assert_eq!(s.check_guardian(t(10.0), d(30.0)), GuardianEvent::Healthy);
        s.hear(n(2), p(5.0, 0.0), t(10.0)); // guardian beacon refreshes timer
        assert_eq!(s.check_guardian(t(39.0), d(30.0)), GuardianEvent::Healthy);
        assert_eq!(
            s.check_guardian(t(40.0), d(30.0)),
            GuardianEvent::GuardianLost(n(2))
        );
        // After forgetting the failed guardian, the next nearest becomes
        // the new guardian.
        assert!(s.forget_failed_neighbor(n(2)));
        assert_eq!(s.pick_guardian(t(40.0), |_| true), Some(n(1)));
    }

    #[test]
    fn forget_failed_neighbor_scrubs_state() {
        let mut s = sensor_with_neighbors();
        s.add_guardee(n(1), t(0.0));
        assert!(!s.forget_failed_neighbor(n(1)), "guardee, not guardian");
        assert!(!s.neighbors.contains(n(1)));
        assert!(!s.guardees.iter().any(|&(id, _)| id == n(1)));
    }

    #[test]
    fn myrobot_is_always_the_closest_known_robot() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        assert!(
            s.consider_robot(n(100), p(100.0, 0.0)),
            "first robot adopted"
        );
        assert!(
            !s.consider_robot(n(101), p(200.0, 0.0)),
            "farther robot: myrobot unchanged and update irrelevant"
        );
        assert_eq!(s.myrobot.unwrap().0, n(100));
        assert!(
            s.consider_robot(n(101), p(50.0, 0.0)),
            "closer robot adopted"
        );
        assert_eq!(s.myrobot.unwrap().0, n(101));
        // When my robot recedes, a previously heard closer robot takes
        // over *immediately* — the receding update is still relevant
        // (myrobot changed).
        assert!(s.consider_robot(n(101), p(300.0, 0.0)));
        assert_eq!(
            s.myrobot.unwrap(),
            (n(100), p(100.0, 0.0)),
            "argmin over remembered robot locations"
        );
        // A refresh from the current myrobot is relevant even when
        // nothing changes.
        assert!(s.consider_robot(n(100), p(101.0, 0.0)));
    }

    #[test]
    fn robot_knowledge_can_be_cleared() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.consider_robot(n(100), p(10.0, 0.0));
        s.clear_robot_knowledge();
        assert!(s.myrobot.is_none());
        assert!(s.robot_locs.is_empty());
    }

    #[test]
    fn report_attempts_count_and_clear_on_hearing() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.add_guardee(n(5), t(0.0));
        assert_eq!(s.note_report_attempt(n(5)), 1);
        assert_eq!(s.note_report_attempt(n(5)), 2);
        assert_eq!(s.note_report_attempt(n(5)), 3);
        // The guardee comes back (replacement beacon): the count resets.
        s.hear(n(5), p(1.0, 1.0), t(50.0));
        assert_eq!(s.note_report_attempt(n(5)), 1);
        // Removing the guardee also clears the count.
        s.remove_guardee(n(5));
        assert_eq!(s.note_report_attempt(n(5)), 1);
    }

    #[test]
    fn scrub_keeps_the_watch_but_cleans_routing_state() {
        let mut s = sensor_with_neighbors();
        s.pick_guardian(t(0.0), |_| true); // n(2)
        s.add_guardee(n(2), t(0.0));
        assert!(s.scrub_failed_neighbor(n(2)), "guardian slot cleared");
        assert!(!s.neighbors.contains(n(2)), "routing no longer sees it");
        assert!(
            s.guardees.iter().any(|&(id, _)| id == n(2)),
            "still watched so the retry window can fire"
        );
        assert!(!s.scrub_failed_neighbor(n(1)), "non-guardian: no repick");
    }

    #[test]
    fn forgetting_a_robot_reassigns_myrobot() {
        let mut s = SensorState::new(n(0), p(0.0, 0.0));
        s.consider_robot(n(100), p(10.0, 0.0));
        s.consider_robot(n(101), p(50.0, 0.0));
        assert_eq!(s.myrobot.unwrap().0, n(100));
        assert!(s.forget_robot(n(100)), "myrobot changed");
        assert_eq!(s.myrobot.unwrap(), (n(101), p(50.0, 0.0)));
        assert!(!s.forget_robot(n(100)), "already forgotten");
        assert!(s.forget_robot(n(101)));
        assert!(s.myrobot.is_none(), "no robots left");
    }

    #[test]
    fn replacement_resets_learned_state() {
        let mut s = sensor_with_neighbors();
        s.pick_guardian(t(0.0), |_| true);
        s.add_guardee(n(1), t(0.0));
        s.consider_robot(n(100), p(10.0, 10.0));
        s.alive = false;
        s.reset_for_replacement();
        assert!(s.alive);
        assert!(s.neighbors.is_empty());
        assert!(s.guardian.is_none());
        assert!(s.guardees.is_empty());
        assert!(s.myrobot.is_none());
        assert_eq!(s.loc, p(0.0, 0.0), "same location as the failed node");
        assert_eq!(s.id, n(0), "same identity");
    }
}
