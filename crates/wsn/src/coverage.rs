//! Sensing-coverage accounting.
//!
//! The point of sensor replacement is to "keep the coverage" (paper §1).
//! This module measures the fraction of the field within sensing range
//! of at least one alive sensor, so experiments can show coverage
//! degrading while failures are outstanding and recovering after
//! replacement.

use robonet_geom::spatial::GridIndex;
use robonet_geom::{Bounds, Point};

/// Monte-Carlo-free grid estimate of covered area fraction.
///
/// Evaluates an `resolution × resolution` lattice of sample points and
/// reports the fraction within `sensing_range` of an alive sensor.
/// `alive` flags parallel `sensors`.
///
/// # Panics
///
/// Panics if the slices differ in length, `resolution` is zero, or
/// `sensing_range` is not positive.
pub fn coverage_fraction(
    bounds: &Bounds,
    sensors: &[Point],
    alive: &[bool],
    sensing_range: f64,
    resolution: usize,
) -> f64 {
    assert_eq!(
        sensors.len(),
        alive.len(),
        "sensors and alive flags must pair up"
    );
    assert!(resolution > 0, "resolution must be positive");
    assert!(
        sensing_range.is_finite() && sensing_range > 0.0,
        "sensing range must be positive"
    );
    let alive_points: Vec<Point> = sensors
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(&p, _)| p)
        .collect();
    if alive_points.is_empty() {
        return 0.0;
    }
    let index = GridIndex::build(*bounds, sensing_range, &alive_points);
    let mut covered = 0usize;
    let total = resolution * resolution;
    for iy in 0..resolution {
        for ix in 0..resolution {
            let sample = Point::new(
                bounds.min().x + (ix as f64 + 0.5) * bounds.width() / resolution as f64,
                bounds.min().y + (iy as f64 + 0.5) * bounds.height() / resolution as f64,
            );
            let mut hit = false;
            index.for_each_within(sample, sensing_range, |_| hit = true);
            if hit {
                covered += 1;
            }
        }
    }
    covered as f64 / total as f64
}

/// The sample points of the coverage lattice that are *not* covered —
/// the holes, for visualisation.
pub fn coverage_holes(
    bounds: &Bounds,
    sensors: &[Point],
    alive: &[bool],
    sensing_range: f64,
    resolution: usize,
) -> Vec<Point> {
    assert_eq!(
        sensors.len(),
        alive.len(),
        "sensors and alive flags must pair up"
    );
    let alive_points: Vec<Point> = sensors
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(&p, _)| p)
        .collect();
    let index = if alive_points.is_empty() {
        None
    } else {
        Some(GridIndex::build(
            *bounds,
            sensing_range.max(1.0),
            &alive_points,
        ))
    };
    let mut holes = Vec::new();
    for iy in 0..resolution {
        for ix in 0..resolution {
            let sample = Point::new(
                bounds.min().x + (ix as f64 + 0.5) * bounds.width() / resolution as f64,
                bounds.min().y + (iy as f64 + 0.5) * bounds.height() / resolution as f64,
            );
            let hit = index.as_ref().is_some_and(|idx| {
                let mut h = false;
                idx.for_each_within(sample, sensing_range, |_| h = true);
                h
            });
            if !hit {
                holes.push(sample);
            }
        }
    }
    holes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_with_dense_sensors() {
        let b = Bounds::square(100.0);
        // 5×5 grid of sensors with 20 m sensing range covers everything.
        let sensors: Vec<Point> = (0..25)
            .map(|i| Point::new(10.0 + (i % 5) as f64 * 20.0, 10.0 + (i / 5) as f64 * 20.0))
            .collect();
        let alive = vec![true; 25];
        let f = coverage_fraction(&b, &sensors, &alive, 20.0, 50);
        assert!(f > 0.99, "coverage {f}");
        assert!(coverage_holes(&b, &sensors, &alive, 20.0, 50).is_empty());
    }

    #[test]
    fn no_sensors_no_coverage() {
        let b = Bounds::square(100.0);
        assert_eq!(coverage_fraction(&b, &[], &[], 10.0, 10), 0.0);
        assert_eq!(coverage_holes(&b, &[], &[], 10.0, 10).len(), 100);
    }

    #[test]
    fn dead_sensors_leave_holes() {
        let b = Bounds::square(100.0);
        let sensors: Vec<Point> = (0..25)
            .map(|i| Point::new(10.0 + (i % 5) as f64 * 20.0, 10.0 + (i / 5) as f64 * 20.0))
            .collect();
        let mut alive = vec![true; 25];
        let full = coverage_fraction(&b, &sensors, &alive, 15.0, 60);
        alive[12] = false; // kill the centre sensor
        let holed = coverage_fraction(&b, &sensors, &alive, 15.0, 60);
        assert!(holed < full, "killing a sensor must reduce coverage");
        let holes = coverage_holes(&b, &sensors, &alive, 15.0, 60);
        assert!(!holes.is_empty());
        // The hole is near the dead sensor (50, 50).
        let centre = Point::new(50.0, 50.0);
        assert!(holes.iter().any(|h| h.distance(centre) < 20.0));
    }

    #[test]
    fn replacement_restores_coverage() {
        let b = Bounds::square(100.0);
        let sensors: Vec<Point> = (0..25)
            .map(|i| Point::new(10.0 + (i % 5) as f64 * 20.0, 10.0 + (i / 5) as f64 * 20.0))
            .collect();
        let mut alive = vec![true; 25];
        let before = coverage_fraction(&b, &sensors, &alive, 15.0, 60);
        alive[7] = false;
        alive[8] = false;
        assert!(coverage_fraction(&b, &sensors, &alive, 15.0, 60) < before);
        alive[7] = true;
        alive[8] = true;
        let after = coverage_fraction(&b, &sensors, &alive, 15.0, 60);
        assert_eq!(after, before, "same-location replacement restores exactly");
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_slices_rejected() {
        let b = Bounds::square(10.0);
        coverage_fraction(&b, &[Point::ZERO], &[], 1.0, 4);
    }
}
