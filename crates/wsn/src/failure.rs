//! The sensor failure process.
//!
//! Paper §2(a): "The lifetime of a node is limited, and follows an
//! exponential distribution with an expected value of T". After a failed
//! node is replaced, the fresh node draws a fresh lifetime.

use robonet_des::rng::Xoshiro256;
use robonet_des::{sampler, SimDuration, SimTime};

/// Draws independent exponential lifetimes for sensor nodes.
#[derive(Debug)]
pub struct FailureProcess {
    mean: SimDuration,
    rng: Xoshiro256,
}

impl FailureProcess {
    /// Creates a process with the given mean lifetime (the paper uses
    /// T = 16000 s) drawing from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn new(mean: SimDuration, rng: Xoshiro256) -> Self {
        assert!(mean > SimDuration::ZERO, "mean lifetime must be positive");
        FailureProcess { mean, rng }
    }

    /// The mean lifetime.
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// Samples the remaining lifetime of a node born (or replaced) now.
    pub fn sample_lifetime(&mut self) -> SimDuration {
        sampler::exponential_duration(&mut self.rng, self.mean)
    }

    /// The absolute failure time of a node born at `birth`.
    pub fn sample_failure_at(&mut self, birth: SimTime) -> SimTime {
        birth + self.sample_lifetime()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(seed: u64) -> FailureProcess {
        FailureProcess::new(
            SimDuration::from_secs(16_000.0),
            Xoshiro256::seed_from_u64(seed),
        )
    }

    #[test]
    fn lifetimes_average_to_mean() {
        let mut p = process(1);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| p.sample_lifetime().as_secs_f64()).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 16_000.0).abs() / 16_000.0 < 0.03,
            "empirical mean {mean}"
        );
    }

    #[test]
    fn failure_time_is_after_birth() {
        let mut p = process(2);
        let birth = SimTime::from_secs(100.0);
        for _ in 0..100 {
            assert!(p.sample_failure_at(birth) >= birth);
        }
    }

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = process(3);
        let mut b = process(3);
        for _ in 0..10 {
            assert_eq!(a.sample_lifetime(), b.sample_lifetime());
        }
    }

    #[test]
    fn expected_failures_in_sim_window() {
        // With T = 16000 s and a 64000 s window, a continuously replaced
        // node slot fails ~4 times on average. Simulate 2000 slots.
        let mut p = process(4);
        let horizon = 64_000.0;
        let slots = 2000;
        let mut failures = 0u64;
        for _ in 0..slots {
            let mut t = 0.0;
            loop {
                t += p.sample_lifetime().as_secs_f64();
                if t > horizon {
                    break;
                }
                failures += 1;
            }
        }
        let per_slot = failures as f64 / slots as f64;
        assert!((per_slot - 4.0).abs() < 0.2, "failures per slot {per_slot}");
    }
}
