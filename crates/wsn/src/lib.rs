//! Sensor-node protocol state for the `robonet` workspace.
//!
//! Implements the sensor side of *Replacing Failed Sensor Nodes by
//! Mobile Robots* (Mei et al., ICDCS 2006):
//!
//! - the exponential failure process of paper §2(a)
//!   ([`failure::FailureProcess`]),
//! - per-sensor protocol state ([`SensorState`]): the beacon-maintained
//!   neighbour table, the guardian/guardee relationship (§3.1), the
//!   failure-detection timers ("three beaconing periods in our study"),
//!   the sensor's current manager (`myrobot`) and flood deduplication
//!   state,
//! - coverage accounting ([`coverage`]) to quantify the holes that
//!   failed sensors leave and replacement repairs.
//!
//! Everything here is per-node decision logic; the event-driven
//! composition lives in `robonet-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod failure;
mod sensor;

pub use sensor::{GuardianEvent, SensorState};
