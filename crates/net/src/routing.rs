//! Greedy geographic forwarding with face-routing recovery.
//!
//! The forwarding rule of paper §4.2: greedy forwarding toward the
//! destination's location; on reaching a node with no neighbour closer
//! to the destination (a routing hole), recover by traversing the
//! Gabriel-graph planarization of the neighbourhood with the right-hand
//! rule (GPSR \[7\] / GFG \[2\]), resuming greedy as soon as the packet
//! reaches a node strictly closer to the destination than where recovery
//! began.

use robonet_des::NodeId;
use robonet_geom::planar::gabriel_filter_into;
use robonet_geom::segment::Segment;
use robonet_geom::Point;

use crate::neighbor::NeighborTable;
use crate::packet::{GeoHeader, RouteMode};

/// The outcome of one routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The packet reached its destination.
    Deliver,
    /// Forward to this neighbour (the header has been updated in place).
    Forward(NodeId),
    /// The packet cannot make progress and is dropped.
    Drop(DropReason),
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Hop budget exhausted (stale locations or a perimeter loop).
    TtlExpired,
    /// The node has no neighbours at all.
    NoNeighbors,
}

/// Reusable buffers for [`route_with`]'s perimeter recovery, so a
/// routing decision on the hot path allocates nothing after warm-up.
/// One scratch can serve any number of nodes — it holds no per-node
/// state between calls.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    neighbors: Vec<(NodeId, Point)>,
    planar: Vec<(NodeId, Point)>,
}

/// Decides the next hop for a packet held by `self_id` at `self_loc`.
///
/// Convenience wrapper over [`route_with`] that allocates fresh scratch
/// buffers; dispatch loops should hold a [`RouteScratch`] and call
/// [`route_with`] directly.
pub fn route(
    self_id: NodeId,
    self_loc: Point,
    table: &NeighborTable,
    header: &mut GeoHeader,
    prev_loc: Option<Point>,
) -> RouteDecision {
    route_with(
        &mut RouteScratch::default(),
        self_id,
        self_loc,
        table,
        header,
        prev_loc,
    )
}

/// Decides the next hop for a packet held by `self_id` at `self_loc`.
///
/// `prev_loc` is the location of the neighbour the packet arrived from
/// (`None` at the originator); the right-hand rule needs it to continue
/// a face traversal. On `Forward`, the header's mode, hop count and TTL
/// are updated in place.
pub fn route_with(
    scratch: &mut RouteScratch,
    self_id: NodeId,
    self_loc: Point,
    table: &NeighborTable,
    header: &mut GeoHeader,
    prev_loc: Option<Point>,
) -> RouteDecision {
    if header.dst == self_id {
        return RouteDecision::Deliver;
    }
    if header.ttl == 0 {
        return RouteDecision::Drop(DropReason::TtlExpired);
    }
    if table.is_empty() {
        return RouteDecision::Drop(DropReason::NoNeighbors);
    }

    // Last-hop shortcut: the destination is a known neighbour (robots
    // broadcast their location to one-hop neighbours precisely so this
    // works while they move).
    if let Some(entry) = table.get(header.dst) {
        header.dst_loc = entry.loc;
        return forward(header, header.dst);
    }

    let my_d_sq = self_loc.distance_sq(header.dst_loc);

    // Perimeter → greedy resume.
    if let RouteMode::Perimeter { entry, .. } = header.mode {
        if my_d_sq < entry.distance_sq(header.dst_loc) {
            header.mode = RouteMode::Greedy;
        }
    }

    match header.mode {
        RouteMode::Greedy => {
            if let Some((next, _)) = table.closest_to_within(header.dst_loc, my_d_sq) {
                return forward(header, next);
            }
            // Local maximum: enter perimeter mode where greedy failed.
            header.mode = RouteMode::Perimeter {
                entry: self_loc,
                cross: self_loc,
            };
            // At mode entry the reference direction is the line toward
            // the destination, not the incoming edge.
            perimeter_step(scratch, self_loc, table, header, None)
        }
        RouteMode::Perimeter { .. } => perimeter_step(scratch, self_loc, table, header, prev_loc),
    }
}

fn forward(header: &mut GeoHeader, next: NodeId) -> RouteDecision {
    header.hops += 1;
    header.ttl -= 1;
    RouteDecision::Forward(next)
}

/// One right-hand-rule step on the Gabriel planarization of the local
/// neighbourhood (GPSR's perimeter forwarding): take the first edge
/// counterclockwise from the reference direction (the edge the packet
/// arrived on, or the line toward the destination when entering
/// recovery), changing face whenever the chosen edge crosses the
/// entry-to-destination line strictly closer to the destination than the
/// best crossing so far.
fn perimeter_step(
    scratch: &mut RouteScratch,
    self_loc: Point,
    table: &NeighborTable,
    header: &mut GeoHeader,
    prev_loc: Option<Point>,
) -> RouteDecision {
    let RouteMode::Perimeter { entry, mut cross } = header.mode else {
        unreachable!("perimeter_step outside perimeter mode");
    };
    scratch.neighbors.clear();
    scratch
        .neighbors
        .extend(table.iter().map(|(id, e)| (id, e.loc)));
    gabriel_filter_into(self_loc, &scratch.neighbors, &mut scratch.planar);
    let candidates = if scratch.planar.is_empty() {
        &scratch.neighbors
    } else {
        &scratch.planar
    };
    if candidates.is_empty() {
        return RouteDecision::Drop(DropReason::NoNeighbors);
    }

    let mut ref_angle = match prev_loc {
        Some(p) => (p - self_loc).angle(),
        None => (header.dst_loc - self_loc).angle(),
    };
    let lp_to_dst = Segment::new(entry, header.dst_loc);

    // Face-change loop: reject an edge that crosses the Lp→D line closer
    // to the destination, and continue the right-hand scan from it. At
    // most |candidates| rejections are possible.
    for _ in 0..=candidates.len() {
        let Some((next_id, next_loc)) = first_ccw(self_loc, ref_angle, candidates) else {
            return RouteDecision::Drop(DropReason::NoNeighbors);
        };
        let edge = Segment::new(self_loc, next_loc);
        if let Some(x) = proper_crossing(&edge, &lp_to_dst) {
            if x.distance_sq(header.dst_loc) + 1e-9 < cross.distance_sq(header.dst_loc) {
                cross = x;
                header.mode = RouteMode::Perimeter { entry, cross };
                ref_angle = (next_loc - self_loc).angle();
                continue;
            }
        }
        return forward(header, next_id);
    }
    // Every edge triggered a face change (numerically pathological);
    // give up rather than loop.
    RouteDecision::Drop(DropReason::NoNeighbors)
}

/// The candidate whose edge is first counterclockwise from `ref_angle`
/// about `self_loc`; going exactly back along the reference is the move
/// of last resort.
fn first_ccw(
    self_loc: Point,
    ref_angle: f64,
    candidates: &[(NodeId, Point)],
) -> Option<(NodeId, Point)> {
    let two_pi = std::f64::consts::TAU;
    let mut best: Option<(f64, NodeId, Point)> = None;
    for &(id, loc) in candidates {
        let a = (loc - self_loc).angle();
        let mut delta = (a - ref_angle).rem_euclid(two_pi);
        if delta < 1e-9 {
            delta = two_pi;
        }
        match best {
            Some((bd, bid, _)) if delta > bd || (delta == bd && id >= bid) => {}
            _ => best = Some((delta, id, loc)),
        }
    }
    best.map(|(_, id, loc)| (id, loc))
}

/// The crossing point of two segments if they properly intersect
/// (interiors crossing; touching at the shared origin vertex of a face
/// edge does not count as progress).
fn proper_crossing(edge: &Segment, line: &Segment) -> Option<Point> {
    let (x, t) = edge.line_intersection(line)?;
    if !(1e-9..=1.0 - 1e-9).contains(&t) {
        return None;
    }
    // Check the crossing lies within the Lp→D segment too.
    let (_, u) = line.line_intersection(edge)?;
    if !(-1e-9..=1.0 + 1e-9).contains(&u) {
        return None;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_des::SimTime;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Builds a full-knowledge routing world from positions and a range:
    /// node i's table holds every node within `range` of it.
    struct World {
        positions: Vec<Point>,
        tables: Vec<NeighborTable>,
    }

    impl World {
        fn new(positions: Vec<Point>, range: f64) -> Self {
            let tables = positions
                .iter()
                .enumerate()
                .map(|(i, &pi)| {
                    let mut t = NeighborTable::new();
                    for (j, &pj) in positions.iter().enumerate() {
                        if i != j && pi.distance(pj) <= range {
                            t.update(id(j as u32), pj, SimTime::ZERO);
                        }
                    }
                    t
                })
                .collect();
            World { positions, tables }
        }

        /// Routes from `src` to `dst`, returning the hop path (node ids)
        /// or `None` if dropped.
        fn deliver(&self, src: u32, dst: u32) -> Option<Vec<u32>> {
            let mut header = GeoHeader::new(id(dst), self.positions[dst as usize]);
            let mut cur = src;
            let mut prev: Option<Point> = None;
            let mut path = vec![src];
            loop {
                let decision = route(
                    id(cur),
                    self.positions[cur as usize],
                    &self.tables[cur as usize],
                    &mut header,
                    prev,
                );
                match decision {
                    RouteDecision::Deliver => return Some(path),
                    RouteDecision::Forward(next) => {
                        prev = Some(self.positions[cur as usize]);
                        cur = next.as_u32();
                        path.push(cur);
                    }
                    RouteDecision::Drop(_) => return None,
                }
            }
        }
    }

    #[test]
    fn delivers_to_self() {
        let w = World::new(vec![p(0.0, 0.0)], 10.0);
        assert_eq!(w.deliver(0, 0), Some(vec![0]));
    }

    #[test]
    fn greedy_chain() {
        let w = World::new((0..5).map(|i| p(i as f64 * 50.0, 0.0)).collect(), 63.0);
        let path = w.deliver(0, 4).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3, 4], "straight greedy path");
    }

    #[test]
    fn greedy_prefers_most_progress() {
        // Two candidate relays; greedy picks the one closest to dst.
        let w = World::new(
            vec![p(0.0, 0.0), p(30.0, 0.0), p(55.0, 0.0), p(110.0, 0.0)],
            63.0,
        );
        let path = w.deliver(0, 3).unwrap();
        assert_eq!(path, vec![0, 2, 3]);
    }

    #[test]
    fn hop_count_recorded_in_header() {
        let positions: Vec<Point> = (0..4).map(|i| p(i as f64 * 50.0, 0.0)).collect();
        let w = World::new(positions.clone(), 63.0);
        let mut header = GeoHeader::new(id(3), positions[3]);
        let mut cur = 0u32;
        let mut prev = None;
        loop {
            match route(
                id(cur),
                positions[cur as usize],
                &w.tables[cur as usize],
                &mut header,
                prev,
            ) {
                RouteDecision::Forward(n) => {
                    prev = Some(positions[cur as usize]);
                    cur = n.as_u32();
                }
                RouteDecision::Deliver => break,
                RouteDecision::Drop(r) => panic!("dropped: {r:?}"),
            }
        }
        assert_eq!(header.hops, 3);
        assert_eq!(header.ttl, GeoHeader::DEFAULT_TTL - 3);
    }

    #[test]
    fn routes_around_a_hole() {
        // A "C"-shaped wall of nodes: the straight line from source to
        // destination crosses a void, forcing perimeter recovery.
        //
        //   0 --- 1 --- 2
        //               |
        //   s    void   3     d  is at the far right, reachable only
        //               |        via the arc 1-2-3-4.
        //   5 --- 6 --- 4
        let positions = vec![
            p(0.0, 100.0),   // 0
            p(50.0, 100.0),  // 1
            p(100.0, 100.0), // 2
            p(100.0, 50.0),  // 3
            p(100.0, 0.0),   // 4
            p(0.0, 0.0),     // 5
            p(50.0, 0.0),    // 6
            p(150.0, 50.0),  // 7 = destination
            p(0.0, 50.0),    // 8 = source (local max w.r.t. 7)
        ];
        let w = World::new(positions, 55.0);
        let path = w.deliver(8, 7).expect("perimeter recovery must deliver");
        assert!(path.len() > 3, "cannot be direct: {path:?}");
        assert_eq!(*path.last().unwrap(), 7);
    }

    #[test]
    fn disconnected_destination_drops_by_ttl() {
        let w = World::new(vec![p(0.0, 0.0), p(30.0, 0.0), p(500.0, 0.0)], 63.0);
        assert_eq!(w.deliver(0, 2), None);
    }

    #[test]
    fn isolated_node_drops_no_neighbors() {
        let positions = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let w = World::new(positions.clone(), 63.0);
        let mut header = GeoHeader::new(id(1), positions[1]);
        let decision = route(id(0), positions[0], &w.tables[0], &mut header, None);
        assert_eq!(decision, RouteDecision::Drop(DropReason::NoNeighbors));
    }

    #[test]
    fn last_hop_shortcut_updates_destination_location() {
        // The destination's advertised location in the table is fresher
        // than the packet header (a robot moved); the shortcut must use
        // the table's version.
        let mut table = NeighborTable::new();
        table.update(id(9), p(42.0, 0.0), SimTime::ZERO);
        let mut header = GeoHeader::new(id(9), p(10.0, 10.0));
        let decision = route(id(0), p(0.0, 0.0), &table, &mut header, None);
        assert_eq!(decision, RouteDecision::Forward(id(9)));
        assert_eq!(header.dst_loc, p(42.0, 0.0));
    }

    #[test]
    fn random_connected_network_always_delivers() {
        use robonet_des::rng::{Rng, Xoshiro256};
        for seed in 0..8u64 {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let n = 80;
            let positions: Vec<Point> = (0..n)
                .map(|_| p(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)))
                .collect();
            // Only test when the UDG is connected.
            let g = robonet_geom::graph::UnitDiskGraph::build(
                robonet_geom::Bounds::square(200.0),
                45.0,
                &positions,
            );
            if !g.is_connected() {
                continue;
            }
            let w = World::new(positions, 45.0);
            for dst in [1u32, n as u32 / 2, n as u32 - 1] {
                let path = w.deliver(0, dst);
                assert!(path.is_some(), "seed {seed}: no route 0 → {dst}");
            }
        }
    }
}
