//! Beacon-maintained neighbour tables.
//!
//! "To forward a packet, a node searches its neighbor table and forwards
//! the packet to its neighbor closest in geographic distance to the
//! destination's location" (paper §4.2). Tables are built from received
//! beacons and location broadcasts, and entries are evicted when a
//! neighbour's beacons stop (failure detection deletes the failed
//! neighbour, §4.2(a)).

use robonet_des::{NodeId, SimTime};
use robonet_geom::Point;

/// What a node knows about one neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// The neighbour's last advertised location.
    pub loc: Point,
    /// When the neighbour was last heard from.
    pub last_heard: SimTime,
}

/// A node's view of its one-hop neighbourhood.
///
/// ```
/// use robonet_des::{NodeId, SimTime};
/// use robonet_geom::Point;
/// use robonet_net::NeighborTable;
///
/// let mut table = NeighborTable::new();
/// table.update(NodeId::new(1), Point::new(30.0, 0.0), SimTime::ZERO);
/// table.update(NodeId::new(2), Point::new(50.0, 0.0), SimTime::ZERO);
/// // Greedy forwarding: who is strictly closer to a far target?
/// let target = Point::new(200.0, 0.0);
/// let (next, _) = table.closest_to_within(target, 200.0 * 200.0).unwrap();
/// assert_eq!(next, NodeId::new(2));
/// ```
/// The table stores its entries in two parallel vectors sorted by node
/// id: a one-hop neighbourhood is small (tens of entries at the paper's
/// density), so binary-searched inserts beat hashing, and keeping the
/// 4-byte ids in their own vector means the per-beacon refresh search
/// scans one cache line instead of striding through 32-byte entries.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    ids: Vec<NodeId>,
    data: Vec<NeighborEntry>,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NeighborTable::default()
    }

    /// Records hearing `node` at `loc` at time `now` (insert or refresh).
    pub fn update(&mut self, node: NodeId, loc: Point, now: SimTime) {
        let entry = NeighborEntry {
            loc,
            last_heard: now,
        };
        match self.ids.binary_search(&node) {
            Ok(i) => self.data[i] = entry,
            Err(i) => {
                self.ids.insert(i, node);
                self.data.insert(i, entry);
            }
        }
    }

    /// Removes `node` (e.g. after detecting its failure). Returns `true`
    /// if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.ids.binary_search(&node) {
            Ok(i) => {
                self.ids.remove(i);
                self.data.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Drops every entry not heard from since `cutoff`. Returns the
    /// removed node ids (in id order).
    pub fn evict_stale(&mut self, cutoff: SimTime) -> Vec<NodeId> {
        let mut stale = Vec::new();
        let mut w = 0;
        for i in 0..self.ids.len() {
            if self.data[i].last_heard < cutoff {
                stale.push(self.ids[i]);
            } else {
                self.ids[w] = self.ids[i];
                self.data[w] = self.data[i];
                w += 1;
            }
        }
        self.ids.truncate(w);
        self.data.truncate(w);
        stale
    }

    /// Looks up a neighbour.
    pub fn get(&self, node: NodeId) -> Option<&NeighborEntry> {
        self.ids.binary_search(&node).ok().map(|i| &self.data[i])
    }

    /// Returns `true` if `node` is a known neighbour.
    pub fn contains(&self, node: NodeId) -> bool {
        self.ids.binary_search(&node).is_ok()
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Removes every entry, keeping the allocation (so a scratch table
    /// can be refilled without reallocating).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.data.clear();
    }

    /// Returns `true` if no neighbours are known.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over `(id, entry)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NeighborEntry)> {
        self.ids.iter().copied().zip(self.data.iter())
    }

    /// The neighbour whose advertised location is closest to `target`,
    /// with deterministic tie-breaking by node id.
    pub fn closest_to(&self, target: Point) -> Option<(NodeId, &NeighborEntry)> {
        self.iter().min_by(|(a_id, a), (b_id, b)| {
            a.loc
                .distance_sq(target)
                .partial_cmp(&b.loc.distance_sq(target))
                .expect("non-finite neighbour location")
                .then(a_id.cmp(b_id))
        })
    }

    /// The neighbour closest to `target` among those *strictly* closer
    /// than `threshold_sq` (squared distance) — the greedy-forwarding
    /// candidate set.
    pub fn closest_to_within(
        &self,
        target: Point,
        threshold_sq: f64,
    ) -> Option<(NodeId, &NeighborEntry)> {
        self.iter()
            .filter(|(_, e)| e.loc.distance_sq(target) < threshold_sq)
            .min_by(|(a_id, a), (b_id, b)| {
                a.loc
                    .distance_sq(target)
                    .partial_cmp(&b.loc.distance_sq(target))
                    .expect("non-finite neighbour location")
                    .then(a_id.cmp(b_id))
            })
    }

    /// The nearest neighbour to `self_loc` — how a sensor picks its
    /// guardian ("picks its nearest neighbor as its guardian", §3.1).
    /// `filter` restricts candidates (e.g. same subarea in the fixed
    /// algorithm, sensors only).
    pub fn nearest(
        &self,
        self_loc: Point,
        mut filter: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        self.iter()
            .filter(|(id, _)| filter(*id))
            .min_by(|(a_id, a), (b_id, b)| {
                a.loc
                    .distance_sq(self_loc)
                    .partial_cmp(&b.loc.distance_sq(self_loc))
                    .expect("non-finite neighbour location")
                    .then(a_id.cmp(b_id))
            })
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn table() -> NeighborTable {
        let mut nt = NeighborTable::new();
        nt.update(NodeId::new(1), p(10.0, 0.0), t(1.0));
        nt.update(NodeId::new(2), p(20.0, 0.0), t(2.0));
        nt.update(NodeId::new(3), p(0.0, 30.0), t(3.0));
        nt
    }

    #[test]
    fn update_and_lookup() {
        let mut nt = table();
        assert_eq!(nt.len(), 3);
        assert!(nt.contains(NodeId::new(2)));
        assert_eq!(nt.get(NodeId::new(1)).unwrap().loc, p(10.0, 0.0));
        // Refresh moves the location and timestamp.
        nt.update(NodeId::new(1), p(11.0, 0.0), t(5.0));
        assert_eq!(nt.len(), 3);
        let e = nt.get(NodeId::new(1)).unwrap();
        assert_eq!(e.loc, p(11.0, 0.0));
        assert_eq!(e.last_heard, t(5.0));
    }

    #[test]
    fn remove_and_empty() {
        let mut nt = table();
        assert!(nt.remove(NodeId::new(2)));
        assert!(!nt.remove(NodeId::new(2)));
        assert_eq!(nt.len(), 2);
        assert!(!nt.is_empty());
    }

    #[test]
    fn evict_stale_drops_old_entries() {
        let mut nt = table();
        let mut evicted = nt.evict_stale(t(2.5));
        evicted.sort_unstable();
        assert_eq!(evicted, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(nt.len(), 1);
        assert!(nt.contains(NodeId::new(3)));
    }

    #[test]
    fn closest_to_target() {
        let nt = table();
        let (id, _) = nt.closest_to(p(25.0, 0.0)).unwrap();
        assert_eq!(id, NodeId::new(2));
        assert!(NeighborTable::new().closest_to(p(0.0, 0.0)).is_none());
    }

    #[test]
    fn greedy_candidate_respects_threshold() {
        let nt = table();
        let target = p(100.0, 0.0);
        // All three are > 70 m from the target; with threshold 75² only
        // node 2 qualifies (80 m away... 100-20=80 > 75, none qualify).
        assert!(nt.closest_to_within(target, 75.0 * 75.0).is_none());
        let (id, _) = nt.closest_to_within(target, 85.0 * 85.0).unwrap();
        assert_eq!(id, NodeId::new(2));
    }

    #[test]
    fn nearest_with_filter() {
        let nt = table();
        let me = p(0.0, 0.0);
        assert_eq!(nt.nearest(me, |_| true), Some(NodeId::new(1)));
        assert_eq!(
            nt.nearest(me, |id| id != NodeId::new(1)),
            Some(NodeId::new(2))
        );
        assert_eq!(nt.nearest(me, |_| false), None);
    }

    #[test]
    fn ties_break_by_id() {
        let mut nt = NeighborTable::new();
        nt.update(NodeId::new(9), p(10.0, 0.0), t(0.0));
        nt.update(NodeId::new(4), p(-10.0, 0.0), t(0.0));
        assert_eq!(nt.nearest(p(0.0, 0.0), |_| true), Some(NodeId::new(4)));
    }
}
