//! Sequence-numbered flood deduplication.
//!
//! Robot location updates in the distributed algorithms are flooded:
//! "a sensor may receive the same update message multiple times, but it
//! relays the message to its neighbors only once. This is achieved by
//! remembering the sequence number of the robot location updates it has
//! relayed before" (paper §3.2).

use std::collections::HashMap;

use robonet_des::NodeId;

/// Per-origin highest-sequence-number bookkeeping for flooded messages.
///
/// Sequence numbers per origin are strictly increasing, so "newer than
/// anything seen" doubles as "not a duplicate" *and* as staleness
/// filtering: an out-of-order older location update is useless and is
/// treated as already seen.
#[derive(Debug, Clone, Default)]
pub struct DedupTable {
    seen: HashMap<NodeId, u32>,
}

impl DedupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DedupTable::default()
    }

    /// Returns `true` — and records the sequence number — if `(origin,
    /// seq)` is fresh, i.e. strictly newer than anything previously
    /// accepted from `origin`. Subsequent calls with the same or older
    /// `seq` return `false`.
    pub fn accept(&mut self, origin: NodeId, seq: u32) -> bool {
        match self.seen.get_mut(&origin) {
            Some(last) if *last >= seq => false,
            Some(last) => {
                *last = seq;
                true
            }
            None => {
                self.seen.insert(origin, seq);
                true
            }
        }
    }

    /// Peeks without recording: would `(origin, seq)` be accepted?
    pub fn is_fresh(&self, origin: NodeId, seq: u32) -> bool {
        self.seen.get(&origin).is_none_or(|last| *last < seq)
    }

    /// Highest sequence number accepted from `origin`, if any.
    pub fn last_seq(&self, origin: NodeId) -> Option<u32> {
        self.seen.get(&origin).copied()
    }

    /// Forgets all state (e.g. when a replaced sensor node boots fresh).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

/// A monotonically increasing per-node sequence-number source for
/// originating flooded messages.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqSource {
    next: u32,
}

impl SeqSource {
    /// Creates a source starting at sequence number 1.
    pub fn new() -> Self {
        SeqSource { next: 0 }
    }

    /// Returns the next sequence number (1, 2, 3, ...).
    pub fn next_seq(&mut self) -> u32 {
        self.next += 1;
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn first_sighting_accepted_duplicates_rejected() {
        let mut t = DedupTable::new();
        assert!(t.accept(n(1), 1));
        assert!(!t.accept(n(1), 1), "exact duplicate");
        assert!(t.accept(n(1), 2));
        assert!(!t.accept(n(1), 1), "older than accepted");
    }

    #[test]
    fn origins_are_independent() {
        let mut t = DedupTable::new();
        assert!(t.accept(n(1), 5));
        assert!(t.accept(n(2), 5));
        assert_eq!(t.last_seq(n(1)), Some(5));
        assert_eq!(t.last_seq(n(3)), None);
    }

    #[test]
    fn is_fresh_does_not_record() {
        let mut t = DedupTable::new();
        assert!(t.is_fresh(n(1), 3));
        assert!(t.is_fresh(n(1), 3), "peeking twice stays fresh");
        assert!(t.accept(n(1), 3));
        assert!(!t.is_fresh(n(1), 3));
        assert!(t.is_fresh(n(1), 4));
    }

    #[test]
    fn clear_resets() {
        let mut t = DedupTable::new();
        t.accept(n(1), 9);
        t.clear();
        assert!(
            t.accept(n(1), 1),
            "post-clear, old sequence numbers accepted"
        );
    }

    #[test]
    fn seq_source_monotonic() {
        let mut s = SeqSource::new();
        let a = s.next_seq();
        let b = s.next_seq();
        let c = s.next_seq();
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn flood_simulation_each_node_relays_once() {
        // 10 nodes all hearing each other: origin floods seq 1; every
        // node accepts once no matter how many copies arrive.
        let mut tables: Vec<DedupTable> = (0..10).map(|_| DedupTable::new()).collect();
        let origin = n(0);
        let mut relays = 0;
        for _copy in 0..5 {
            for t in tables.iter_mut() {
                if t.accept(origin, 1) {
                    relays += 1;
                }
            }
        }
        assert_eq!(relays, 10);
    }
}
