//! Sequence-numbered flood deduplication.
//!
//! Robot location updates in the distributed algorithms are flooded:
//! "a sensor may receive the same update message multiple times, but it
//! relays the message to its neighbors only once. This is achieved by
//! remembering the sequence number of the robot location updates it has
//! relayed before" (paper §3.2).

use robonet_des::NodeId;

/// Per-origin highest-sequence-number bookkeeping for flooded messages.
///
/// Sequence numbers per origin are strictly increasing, so "newer than
/// anything seen" doubles as "not a duplicate" *and* as staleness
/// filtering: an out-of-order older location update is useless and is
/// treated as already seen.
///
/// The table is a dense window indexed by origin id: the origins a
/// sensor hears from are the robots, whose ids are contiguous, so the
/// flood-relay hot path (`accept`) is one array load and one compare.
/// Origins far outside the window (more than [`MAX_DENSE_SPAN`] ids
/// apart) fall back to a small sorted spill vector.
#[derive(Debug, Clone, Default)]
pub struct DedupTable {
    /// Origin id of `dense[0]`.
    base: u32,
    /// Per-origin record: `0` = never accepted, else `last_seq + 1`
    /// (widened to `u64` so `u32::MAX + 1` cannot collide).
    dense: Vec<u64>,
    /// `(origin, last_seq)` for origins outside the dense window.
    spill: Vec<(NodeId, u32)>,
}

/// Widest id span the dense window may cover before out-of-range
/// origins spill to the sorted fallback (bounds worst-case memory for
/// callers with pathological id spreads).
const MAX_DENSE_SPAN: usize = 1 << 16;

impl DedupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DedupTable::default()
    }

    /// Returns `true` — and records the sequence number — if `(origin,
    /// seq)` is fresh, i.e. strictly newer than anything previously
    /// accepted from `origin`. Subsequent calls with the same or older
    /// `seq` return `false`.
    #[inline]
    pub fn accept(&mut self, origin: NodeId, seq: u32) -> bool {
        let i = origin.as_u32().wrapping_sub(self.base) as usize;
        if i < self.dense.len() {
            let v = &mut self.dense[i];
            if *v <= u64::from(seq) {
                *v = u64::from(seq) + 1;
                true
            } else {
                false
            }
        } else {
            self.accept_slow(origin, seq)
        }
    }

    /// Out-of-window accept: grow/rebase the dense window if the span
    /// allows, otherwise record in the sorted spill.
    fn accept_slow(&mut self, origin: NodeId, seq: u32) -> bool {
        let o = origin.as_u32();
        if self.dense.is_empty() {
            self.base = o;
            self.dense.push(0);
        } else if o < self.base {
            let shift = (self.base - o) as usize;
            if shift + self.dense.len() <= MAX_DENSE_SPAN {
                self.dense.splice(0..0, std::iter::repeat_n(0, shift));
                self.base = o;
            }
        } else {
            let need = (o - self.base) as usize + 1;
            if need <= MAX_DENSE_SPAN {
                self.dense.resize(need, 0);
            }
        }
        let i = o.wrapping_sub(self.base) as usize;
        if i < self.dense.len() {
            // The window moved: pull in any spill records it now covers
            // so each origin stays recorded in exactly one place.
            let base = self.base;
            let dense = &mut self.dense;
            self.spill.retain(|&(id, last)| {
                let j = id.as_u32().wrapping_sub(base) as usize;
                if j < dense.len() {
                    dense[j] = u64::from(last) + 1;
                    false
                } else {
                    true
                }
            });
            let v = &mut self.dense[i];
            if *v <= u64::from(seq) {
                *v = u64::from(seq) + 1;
                return true;
            }
            return false;
        }
        match self.spill.binary_search_by_key(&origin, |&(id, _)| id) {
            Ok(j) => {
                if self.spill[j].1 >= seq {
                    false
                } else {
                    self.spill[j].1 = seq;
                    true
                }
            }
            Err(j) => {
                self.spill.insert(j, (origin, seq));
                true
            }
        }
    }

    /// Highest recorded sequence for `origin`, `None` if unseen.
    fn lookup(&self, origin: NodeId) -> Option<u32> {
        let i = origin.as_u32().wrapping_sub(self.base) as usize;
        if i < self.dense.len() {
            let v = self.dense[i];
            return (v > 0).then(|| (v - 1) as u32);
        }
        self.spill
            .binary_search_by_key(&origin, |&(id, _)| id)
            .ok()
            .map(|j| self.spill[j].1)
    }

    /// Peeks without recording: would `(origin, seq)` be accepted?
    pub fn is_fresh(&self, origin: NodeId, seq: u32) -> bool {
        match self.lookup(origin) {
            Some(last) => last < seq,
            None => true,
        }
    }

    /// Highest sequence number accepted from `origin`, if any.
    pub fn last_seq(&self, origin: NodeId) -> Option<u32> {
        self.lookup(origin)
    }

    /// Forgets all state (e.g. when a replaced sensor node boots fresh).
    pub fn clear(&mut self) {
        self.dense.clear();
        self.spill.clear();
        self.base = 0;
    }
}

/// A monotonically increasing per-node sequence-number source for
/// originating flooded messages.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqSource {
    next: u32,
}

impl SeqSource {
    /// Creates a source starting at sequence number 1.
    pub fn new() -> Self {
        SeqSource { next: 0 }
    }

    /// Returns the next sequence number (1, 2, 3, ...).
    pub fn next_seq(&mut self) -> u32 {
        self.next += 1;
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn first_sighting_accepted_duplicates_rejected() {
        let mut t = DedupTable::new();
        assert!(t.accept(n(1), 1));
        assert!(!t.accept(n(1), 1), "exact duplicate");
        assert!(t.accept(n(1), 2));
        assert!(!t.accept(n(1), 1), "older than accepted");
    }

    #[test]
    fn origins_are_independent() {
        let mut t = DedupTable::new();
        assert!(t.accept(n(1), 5));
        assert!(t.accept(n(2), 5));
        assert_eq!(t.last_seq(n(1)), Some(5));
        assert_eq!(t.last_seq(n(3)), None);
    }

    #[test]
    fn is_fresh_does_not_record() {
        let mut t = DedupTable::new();
        assert!(t.is_fresh(n(1), 3));
        assert!(t.is_fresh(n(1), 3), "peeking twice stays fresh");
        assert!(t.accept(n(1), 3));
        assert!(!t.is_fresh(n(1), 3));
        assert!(t.is_fresh(n(1), 4));
    }

    #[test]
    fn clear_resets() {
        let mut t = DedupTable::new();
        t.accept(n(1), 9);
        t.clear();
        assert!(
            t.accept(n(1), 1),
            "post-clear, old sequence numbers accepted"
        );
    }

    #[test]
    fn window_rebase_and_far_spill() {
        let mut t = DedupTable::new();
        // First origin anchors the dense window high...
        assert!(t.accept(n(5000), 3));
        // ...a lower id forces a front rebase...
        assert!(t.accept(n(4900), 7));
        assert!(!t.accept(n(4900), 7));
        assert_eq!(t.last_seq(n(5000)), Some(3));
        // ...and an id billions away spills without exploding memory.
        let far = n(u32::MAX);
        assert!(t.accept(far, 1));
        assert!(!t.accept(far, 1));
        assert_eq!(t.last_seq(far), Some(1));
        assert!(t.is_fresh(far, 2));
        // Dense entries are unaffected by spill traffic.
        assert!(!t.is_fresh(n(4900), 7));
        t.clear();
        assert!(t.accept(far, 1));
        assert!(t.accept(n(0), 1));
    }

    #[test]
    fn spill_migrates_into_grown_window() {
        let mut t = DedupTable::new();
        // Anchor at 0, spill an origin beyond the max span...
        assert!(t.accept(n(0), 2));
        let outside = n(70_000);
        assert!(t.accept(outside, 9));
        // ...then rebuild state from a fresh table anchored near the
        // spilled origin: a later low id must re-cover it exactly once.
        let mut t2 = DedupTable::new();
        assert!(t2.accept(outside, 9));
        assert!(t2.accept(n(69_000), 1));
        assert!(!t2.accept(outside, 9), "migrated record survives rebase");
        assert_eq!(t2.last_seq(outside), Some(9));
        assert!(!t.is_fresh(outside, 9));
    }

    #[test]
    fn seq_zero_round_trips() {
        let mut t = DedupTable::new();
        assert!(t.is_fresh(n(1), 0));
        assert!(t.accept(n(1), 0));
        assert!(!t.accept(n(1), 0));
        assert_eq!(t.last_seq(n(1)), Some(0));
        assert!(t.accept(n(1), u32::MAX));
        assert!(!t.accept(n(1), u32::MAX));
        assert_eq!(t.last_seq(n(1)), Some(u32::MAX));
    }

    #[test]
    fn seq_source_monotonic() {
        let mut s = SeqSource::new();
        let a = s.next_seq();
        let b = s.next_seq();
        let c = s.next_seq();
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn flood_simulation_each_node_relays_once() {
        // 10 nodes all hearing each other: origin floods seq 1; every
        // node accepts once no matter how many copies arrive.
        let mut tables: Vec<DedupTable> = (0..10).map(|_| DedupTable::new()).collect();
        let origin = n(0);
        let mut relays = 0;
        for _copy in 0..5 {
            for t in tables.iter_mut() {
                if t.accept(origin, 1) {
                    relays += 1;
                }
            }
        }
        assert_eq!(relays, 10);
    }
}
