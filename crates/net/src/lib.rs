//! Geographic routing and scoped flooding for the `robonet` workspace.
//!
//! Implements the network layer of *Replacing Failed Sensor Nodes by
//! Mobile Robots* (Mei et al., ICDCS 2006), §4.2:
//!
//! - beacon-maintained [`neighbor::NeighborTable`]s holding each
//!   neighbour's last known location,
//! - greedy geographic forwarding ([`route`]): forward to the neighbour
//!   geographically closest to the destination's location,
//! - face-routing recovery around routing holes on the Gabriel-graph
//!   planarization of the neighbour set (GPSR \[7\] / GFG \[2\] style),
//! - sequence-numbered flood deduplication ([`flood::DedupTable`]) for
//!   robot location updates ("a sensor may receive the same update
//!   message multiple times, but it relays the message to its neighbors
//!   only once", §3.2).
//!
//! All of it is pure decision logic over local state — the packet-level
//! delivery itself happens in `robonet-radio`, and `robonet-core` wires
//! the two together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flood;
pub mod neighbor;
pub mod packet;
mod routing;
pub mod trace;

pub use neighbor::{NeighborEntry, NeighborTable};
pub use packet::{GeoHeader, RouteMode};
pub use routing::{route, route_with, DropReason, RouteDecision, RouteScratch};
