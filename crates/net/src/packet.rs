//! Geographic routing headers.

use robonet_des::NodeId;
use robonet_geom::Point;

/// Forwarding mode of a geographically routed packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteMode {
    /// Greedy forwarding toward the destination location.
    Greedy,
    /// Perimeter (face-routing) recovery around a routing hole.
    Perimeter {
        /// Location of the node where greedy forwarding failed; the
        /// packet resumes greedy mode as soon as it reaches a node
        /// strictly closer to the destination than this point.
        entry: Point,
        /// The point where the traversal last crossed the line from
        /// `entry` to the destination — GPSR's face-change state. A new
        /// face is entered only when an edge crosses that line strictly
        /// closer to the destination.
        cross: Point,
    },
}

/// The routing header carried by every geographically routed packet
/// ("each packet contains the destination address in the IP header and
/// the destination's location in an IP option header", paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoHeader {
    /// Final destination node.
    pub dst: NodeId,
    /// Destination's (last known) location.
    pub dst_loc: Point,
    /// Current forwarding mode.
    pub mode: RouteMode,
    /// Hops traversed so far (incremented by the forwarding node).
    pub hops: u32,
    /// Remaining hop budget; packets are dropped at zero to bound
    /// perimeter loops on stale state.
    pub ttl: u32,
}

impl GeoHeader {
    /// Default hop budget, generous for the paper's field sizes (an
    /// 800 × 800 m field is ~25 sensor hops corner to corner).
    pub const DEFAULT_TTL: u32 = 128;

    /// Creates a fresh greedy-mode header for `dst` at `dst_loc`.
    pub fn new(dst: NodeId, dst_loc: Point) -> Self {
        GeoHeader {
            dst,
            dst_loc,
            mode: RouteMode::Greedy,
            hops: 0,
            ttl: Self::DEFAULT_TTL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_header_defaults() {
        let h = GeoHeader::new(NodeId::new(5), Point::new(1.0, 2.0));
        assert_eq!(h.dst, NodeId::new(5));
        assert_eq!(h.mode, RouteMode::Greedy);
        assert_eq!(h.hops, 0);
        assert_eq!(h.ttl, GeoHeader::DEFAULT_TTL);
    }
}
