//! Offline route tracing over a set of neighbour tables.
//!
//! Drives [`route`] hop by hop without a radio medium —
//! for tests, examples and path-quality analysis (stretch vs BFS).

use robonet_des::NodeId;
use robonet_geom::Point;

use crate::packet::{GeoHeader, RouteMode};
use crate::routing::{route, RouteDecision};
use crate::NeighborTable;

/// The outcome of tracing one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTrace {
    /// Node ids visited, starting with the source.
    pub path: Vec<NodeId>,
    /// Hops spent in perimeter (recovery) mode.
    pub perimeter_hops: u32,
    /// Whether the destination was reached.
    pub delivered: bool,
}

impl RouteTrace {
    /// Total hops taken (path length minus one).
    pub fn hops(&self) -> u32 {
        self.path.len().saturating_sub(1) as u32
    }

    /// Path stretch relative to a reference hop count (e.g. BFS):
    /// `hops / reference`. `None` if the packet was not delivered or the
    /// reference is zero.
    pub fn stretch(&self, reference_hops: u32) -> Option<f64> {
        if !self.delivered || reference_hops == 0 {
            return None;
        }
        Some(f64::from(self.hops()) / f64::from(reference_hops))
    }
}

/// Traces a packet from `src` to `dst` through static `tables`.
///
/// `position_of` maps a node id to its location (sources of truth differ
/// between tests and simulations, so it is a callback). Terminates after
/// the header's TTL at the latest.
///
/// ```
/// use robonet_des::NodeId;
/// use robonet_geom::Point;
/// use robonet_net::trace::{tables_from_positions, trace_route};
///
/// let positions: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 50.0, 0.0)).collect();
/// let tables = tables_from_positions(&positions, 63.0);
/// let t = trace_route(&tables, |id| positions[id.index()], NodeId::new(0), NodeId::new(3));
/// assert!(t.delivered);
/// assert_eq!(t.hops(), 3);
/// ```
pub fn trace_route(
    tables: &[NeighborTable],
    mut position_of: impl FnMut(NodeId) -> Point,
    src: NodeId,
    dst: NodeId,
) -> RouteTrace {
    let mut header = GeoHeader::new(dst, position_of(dst));
    let mut cur = src;
    let mut prev: Option<Point> = None;
    let mut trace = RouteTrace {
        path: vec![src],
        perimeter_hops: 0,
        delivered: false,
    };
    loop {
        let cur_loc = position_of(cur);
        match route(cur, cur_loc, &tables[cur.index()], &mut header, prev) {
            RouteDecision::Deliver => {
                trace.delivered = true;
                return trace;
            }
            RouteDecision::Forward(next) => {
                if matches!(header.mode, RouteMode::Perimeter { .. }) {
                    trace.perimeter_hops += 1;
                }
                prev = Some(cur_loc);
                cur = next;
                trace.path.push(next);
            }
            RouteDecision::Drop(_) => return trace,
        }
    }
}

/// Builds per-node neighbour tables from node positions and a shared
/// communication radius — the state beaconing would establish on a
/// static network.
pub fn tables_from_positions(positions: &[Point], radius: f64) -> Vec<NeighborTable> {
    use robonet_des::SimTime;
    positions
        .iter()
        .enumerate()
        .map(|(i, &pi)| {
            let mut t = NeighborTable::new();
            for (j, &pj) in positions.iter().enumerate() {
                if i != j && pi.distance(pj) <= radius {
                    t.update(NodeId::new(j as u32), pj, SimTime::ZERO);
                }
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn straight_line_trace() {
        let positions: Vec<Point> = (0..4).map(|i| p(i as f64 * 50.0, 0.0)).collect();
        let tables = tables_from_positions(&positions, 63.0);
        let t = trace_route(
            &tables,
            |id| positions[id.index()],
            NodeId::new(0),
            NodeId::new(3),
        );
        assert!(t.delivered);
        assert_eq!(t.hops(), 3);
        assert_eq!(t.perimeter_hops, 0);
        assert_eq!(t.stretch(3), Some(1.0));
        assert_eq!(
            t.path,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn failed_trace_reports_no_delivery() {
        let positions = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let tables = tables_from_positions(&positions, 63.0);
        let t = trace_route(
            &tables,
            |id| positions[id.index()],
            NodeId::new(0),
            NodeId::new(1),
        );
        assert!(!t.delivered);
        assert_eq!(t.stretch(1), None);
    }

    #[test]
    fn stretch_handles_zero_reference() {
        let positions = vec![p(0.0, 0.0)];
        let tables = tables_from_positions(&positions, 63.0);
        let t = trace_route(
            &tables,
            |id| positions[id.index()],
            NodeId::new(0),
            NodeId::new(0),
        );
        assert!(t.delivered);
        assert_eq!(t.hops(), 0);
        assert_eq!(t.stretch(0), None);
    }
}
