//! Property tests for geographic routing: delivery on connected
//! networks, hop-count sanity, and flood dedup invariants.

use robonet_des::check::{self, Gen, Outcome};

use robonet_des::{NodeId, SimTime};
use robonet_geom::graph::UnitDiskGraph;
use robonet_geom::{Bounds, Point};
use robonet_net::flood::DedupTable;
use robonet_net::{route, GeoHeader, NeighborTable, RouteDecision};

const CASES: u32 = 48;

fn point_in(side: f64) -> Gen<Point> {
    check::pair(check::f64s(0.0..side), check::f64s(0.0..side)).map(|&(x, y)| Point::new(x, y))
}

fn points_in(side: f64, n: std::ops::Range<usize>) -> Gen<Vec<Point>> {
    check::vec_of(point_in(side), n)
}

/// An index pick independent of container length: reduce modulo `len`
/// at use time (the harness analogue of `prop::sample::Index`).
fn index_pick() -> Gen<usize> {
    check::usizes(0..1 << 32)
}

fn tables(g: &UnitDiskGraph) -> Vec<NeighborTable> {
    (0..g.len())
        .map(|i| {
            let mut t = NeighborTable::new();
            for &j in g.neighbors(i) {
                t.update(NodeId::new(j), g.position(j as usize), SimTime::ZERO);
            }
            t
        })
        .collect()
}

/// Simulates forwarding; returns hop count on delivery.
fn deliver(g: &UnitDiskGraph, tables: &[NeighborTable], src: usize, dst: usize) -> Option<u32> {
    let mut header = GeoHeader::new(NodeId::new(dst as u32), g.position(dst));
    let mut cur = src;
    let mut prev: Option<Point> = None;
    loop {
        match route(
            NodeId::new(cur as u32),
            g.position(cur),
            &tables[cur],
            &mut header,
            prev,
        ) {
            RouteDecision::Deliver => return Some(header.hops),
            RouteDecision::Forward(next) => {
                prev = Some(g.position(cur));
                cur = next.index();
            }
            RouteDecision::Drop(_) => return None,
        }
    }
}

/// On a connected unit-disk graph, greedy + perimeter routing
/// delivers between every sampled pair.
#[test]
fn connected_networks_deliver() {
    check::forall_cases(
        "connected_networks_deliver",
        CASES,
        &check::triple(points_in(250.0, 8..60), index_pick(), index_pick()),
        |(pts, src_pick, dst_pick)| {
            let g = UnitDiskGraph::build(Bounds::square(250.0), 55.0, pts);
            if !g.is_connected() {
                return Outcome::Discard;
            }
            let t = tables(&g);
            let src = src_pick % g.len();
            let dst = dst_pick % g.len();
            let hops = deliver(&g, &t, src, dst);
            assert!(hops.is_some(), "no route {src} -> {dst}");
            Outcome::Pass
        },
    );
}

/// Geographic routing never beats BFS (hops ≥ shortest path) and is
/// exact for adjacent pairs.
#[test]
fn hops_bounded_below_by_bfs() {
    check::forall_cases(
        "hops_bounded_below_by_bfs",
        CASES,
        &check::pair(points_in(250.0, 8..50), index_pick()),
        |(pts, dst_pick)| {
            let g = UnitDiskGraph::build(Bounds::square(250.0), 60.0, pts);
            if !g.is_connected() {
                return Outcome::Discard;
            }
            let t = tables(&g);
            let dst = dst_pick % g.len();
            for src in 0..g.len().min(8) {
                if let Some(hops) = deliver(&g, &t, src, dst) {
                    let bfs = g.hop_distance(src, dst).expect("connected") as u32;
                    assert!(hops >= bfs, "geo {hops} < bfs {bfs}");
                    if bfs <= 1 {
                        assert_eq!(hops, bfs, "adjacent pairs route directly");
                    }
                }
            }
            Outcome::Pass
        },
    );
}

/// TTL always terminates routing, even on disconnected graphs.
#[test]
fn routing_always_terminates() {
    check::forall_cases(
        "routing_always_terminates",
        CASES,
        &points_in(400.0, 2..40),
        |pts| {
            let g = UnitDiskGraph::build(Bounds::square(400.0), 45.0, pts);
            let t = tables(&g);
            // Not assumed connected: every pair either delivers or drops,
            // within the TTL budget (the helper would loop forever
            // otherwise, so completion of this call *is* the property).
            for src in 0..g.len().min(5) {
                let _ = deliver(&g, &t, src, g.len() - 1);
            }
            Outcome::Pass
        },
    );
}

/// Dedup accepts each (origin, seq) at most once, in any order, and
/// never accepts a stale seq after a newer one.
#[test]
fn dedup_at_most_once() {
    check::forall_cases(
        "dedup_at_most_once",
        CASES,
        &check::vec_of(check::pair(check::u32s(0..8), check::u32s(1..50)), 1..100),
        |seqs| {
            let mut table = DedupTable::new();
            let mut best: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            for &(origin, seq) in seqs {
                let expected = best.get(&origin).is_none_or(|&b| seq > b);
                let accepted = table.accept(NodeId::new(origin), seq);
                assert_eq!(accepted, expected);
                if accepted {
                    best.insert(origin, seq);
                }
            }
            Outcome::Pass
        },
    );
}

/// NeighborTable's greedy candidate is always strictly closer than
/// the threshold and the closest such entry.
#[test]
fn greedy_candidate_is_argmin() {
    check::forall_cases(
        "greedy_candidate_is_argmin",
        CASES,
        &check::pair(points_in(100.0, 1..30), point_in(100.0)),
        |(entries, target)| {
            let mut t = NeighborTable::new();
            for (i, &p) in entries.iter().enumerate() {
                t.update(NodeId::new(i as u32), p, SimTime::ZERO);
            }
            let target = *target;
            let threshold_sq = 50.0 * 50.0;
            if let Some((id, e)) = t.closest_to_within(target, threshold_sq) {
                assert!(e.loc.distance_sq(target) < threshold_sq);
                for (other, oe) in t.iter() {
                    if other != id {
                        assert!(oe.loc.distance_sq(target) >= e.loc.distance_sq(target) - 1e-12);
                    }
                }
            } else {
                for (_, oe) in t.iter() {
                    assert!(oe.loc.distance_sq(target) >= threshold_sq);
                }
            }
            Outcome::Pass
        },
    );
}
