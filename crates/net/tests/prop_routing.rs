//! Property tests for geographic routing: delivery on connected
//! networks, hop-count sanity, and flood dedup invariants.

use proptest::prelude::*;

use robonet_des::{NodeId, SimTime};
use robonet_geom::graph::UnitDiskGraph;
use robonet_geom::{Bounds, Point};
use robonet_net::flood::DedupTable;
use robonet_net::{route, GeoHeader, NeighborTable, RouteDecision};

fn points_in(side: f64, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y)), n)
}

fn tables(g: &UnitDiskGraph) -> Vec<NeighborTable> {
    (0..g.len())
        .map(|i| {
            let mut t = NeighborTable::new();
            for &j in g.neighbors(i) {
                t.update(NodeId::new(j), g.position(j as usize), SimTime::ZERO);
            }
            t
        })
        .collect()
}

/// Simulates forwarding; returns hop count on delivery.
fn deliver(g: &UnitDiskGraph, tables: &[NeighborTable], src: usize, dst: usize) -> Option<u32> {
    let mut header = GeoHeader::new(NodeId::new(dst as u32), g.position(dst));
    let mut cur = src;
    let mut prev: Option<Point> = None;
    loop {
        match route(
            NodeId::new(cur as u32),
            g.position(cur),
            &tables[cur],
            &mut header,
            prev,
        ) {
            RouteDecision::Deliver => return Some(header.hops),
            RouteDecision::Forward(next) => {
                prev = Some(g.position(cur));
                cur = next.index();
            }
            RouteDecision::Drop(_) => return None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a connected unit-disk graph, greedy + perimeter routing
    /// delivers between every sampled pair.
    #[test]
    fn connected_networks_deliver(
        pts in points_in(250.0, 8..60),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let g = UnitDiskGraph::build(Bounds::square(250.0), 55.0, &pts);
        prop_assume!(g.is_connected());
        let t = tables(&g);
        let src = src_pick.index(g.len());
        let dst = dst_pick.index(g.len());
        let hops = deliver(&g, &t, src, dst);
        prop_assert!(hops.is_some(), "no route {src} -> {dst}");
    }

    /// Geographic routing never beats BFS (hops ≥ shortest path) and is
    /// exact for adjacent pairs.
    #[test]
    fn hops_bounded_below_by_bfs(
        pts in points_in(250.0, 8..50),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let g = UnitDiskGraph::build(Bounds::square(250.0), 60.0, &pts);
        prop_assume!(g.is_connected());
        let t = tables(&g);
        let dst = dst_pick.index(g.len());
        for src in 0..g.len().min(8) {
            if let Some(hops) = deliver(&g, &t, src, dst) {
                let bfs = g.hop_distance(src, dst).expect("connected") as u32;
                prop_assert!(hops >= bfs, "geo {hops} < bfs {bfs}");
                if bfs <= 1 {
                    prop_assert_eq!(hops, bfs, "adjacent pairs route directly");
                }
            }
        }
    }

    /// TTL always terminates routing, even on disconnected graphs.
    #[test]
    fn routing_always_terminates(pts in points_in(400.0, 2..40)) {
        let g = UnitDiskGraph::build(Bounds::square(400.0), 45.0, &pts);
        let t = tables(&g);
        // Not assumed connected: every pair either delivers or drops,
        // within the TTL budget (the helper would loop forever
        // otherwise, so completion of this call *is* the property).
        for src in 0..g.len().min(5) {
            let _ = deliver(&g, &t, src, g.len() - 1);
        }
    }

    /// Dedup accepts each (origin, seq) at most once, in any order, and
    /// never accepts a stale seq after a newer one.
    #[test]
    fn dedup_at_most_once(
        seqs in prop::collection::vec((0u32..8, 1u32..50), 1..100),
    ) {
        let mut table = DedupTable::new();
        let mut best: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &(origin, seq) in &seqs {
            let expected = best.get(&origin).is_none_or(|&b| seq > b);
            let accepted = table.accept(NodeId::new(origin), seq);
            prop_assert_eq!(accepted, expected);
            if accepted {
                best.insert(origin, seq);
            }
        }
    }

    /// NeighborTable's greedy candidate is always strictly closer than
    /// the threshold and the closest such entry.
    #[test]
    fn greedy_candidate_is_argmin(
        entries in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..30),
        target in (0.0f64..100.0, 0.0f64..100.0),
    ) {
        let mut t = NeighborTable::new();
        for (i, &(x, y)) in entries.iter().enumerate() {
            t.update(NodeId::new(i as u32), Point::new(x, y), SimTime::ZERO);
        }
        let target = Point::new(target.0, target.1);
        let threshold_sq = 50.0 * 50.0;
        if let Some((id, e)) = t.closest_to_within(target, threshold_sq) {
            prop_assert!(e.loc.distance_sq(target) < threshold_sq);
            for (other, oe) in t.iter() {
                if other != id {
                    prop_assert!(
                        oe.loc.distance_sq(target) >= e.loc.distance_sq(target) - 1e-12
                    );
                }
            }
        } else {
            for (_, oe) in t.iter() {
                prop_assert!(oe.loc.distance_sq(target) >= threshold_sq);
            }
        }
    }
}
