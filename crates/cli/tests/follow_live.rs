//! Live-tail integration tests against the real `robonet` binary:
//! `run --trace-out -` piping straight into `replay --follow -`, and
//! `replay --follow` tailing a trace file while the producer is still
//! writing it.

use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_robonet");

fn robonet(args: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    cmd
}

const RUN_SMALL: &[&str] = &[
    "run", "--alg", "dynamic", "--k", "1", "--scale", "16", "--seed", "7",
];

/// `--trace-out -` streams the *identical* artifact to stdout that
/// `--trace-out FILE` writes to disk, with the human summary exiled to
/// stderr and no manifest emitted.
#[test]
fn trace_out_dash_streams_the_artifact_to_stdout() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("stream_ref.jsonl");
    let mut file_args = RUN_SMALL.to_vec();
    file_args.extend(["--trace-out", trace.to_str().unwrap()]);
    let file_run = robonet(&file_args).output().expect("file run executes");
    assert!(file_run.status.success());

    let mut pipe_args = RUN_SMALL.to_vec();
    pipe_args.extend(["--trace-out", "-"]);
    let pipe_run = robonet(&pipe_args).output().expect("pipe run executes");
    assert!(pipe_run.status.success());

    let on_disk = std::fs::read(&trace).expect("file trace exists");
    assert_eq!(
        pipe_run.stdout, on_disk,
        "streamed JSONL must be byte-identical to the file artifact"
    );
    let stderr = String::from_utf8(pipe_run.stderr).unwrap();
    assert!(
        stderr.contains("dropped packets:"),
        "summary moves to stderr: {stderr}"
    );
    assert!(
        !stderr.contains("trace written:"),
        "no artifact path to report for a pipe: {stderr}"
    );
    assert!(
        !dir.join("-.manifest.json").exists() && !std::path::Path::new("-.manifest.json").exists(),
        "no manifest for a pipe"
    );
}

/// The headline pipeline: `run --trace-out - | replay --follow -`
/// finishes with exactly the state an offline replay of the same
/// stream reports.
#[test]
fn run_pipes_into_replay_follow() {
    let mut run_args = RUN_SMALL.to_vec();
    run_args.extend(["--trace-out", "-"]);
    let mut producer = robonet(&run_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("producer starts");
    let stream = producer.stdout.take().expect("piped stdout");

    let follower = robonet(&["replay", "--follow", "-"])
        .stdin(Stdio::from(stream))
        .stderr(Stdio::piped())
        .output()
        .expect("follower executes");
    assert!(producer.wait().expect("producer exits").success());
    assert!(follower.status.success());

    // Offline reference: the same stream replayed from a byte buffer.
    let mut pipe_args = RUN_SMALL.to_vec();
    pipe_args.extend(["--trace-out", "-"]);
    let rerun = robonet(&pipe_args).output().expect("rerun executes");
    let offline = robonet(&["replay", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write as _;
            child.stdin.take().unwrap().write_all(&rerun.stdout)?;
            child.wait_with_output()
        })
        .expect("offline replay executes");
    assert!(offline.status.success());

    assert_eq!(
        String::from_utf8(follower.stdout).unwrap(),
        String::from_utf8(offline.stdout).unwrap(),
        "follow-mode final state must equal the offline replay"
    );
    let dashboards = String::from_utf8(follower.stderr).unwrap();
    assert!(
        dashboards.contains("en-route"),
        "rolling dashboards went to stderr: {dashboards}"
    );
}

/// `replay --follow FILE` started *before* the producer finishes tails
/// the file to completion and lands on the offline answer — including
/// the manifest-seeded geometry an offline replay gets.
#[test]
fn follow_tails_a_live_file_to_the_offline_answer() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("live.jsonl");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(dir.join("live.manifest.json"));

    let mut run_args = RUN_SMALL.to_vec();
    run_args.extend(["--trace-out", trace.to_str().unwrap()]);
    let mut producer = robonet(&run_args)
        .stdout(Stdio::null())
        .spawn()
        .expect("producer starts");

    // Start tailing immediately — the trace file may not even exist
    // yet; the follower polls until it appears.
    let follower = robonet(&["replay", "--follow", trace.to_str().unwrap()])
        .stderr(Stdio::piped())
        .output()
        .expect("follower executes");
    assert!(producer.wait().expect("producer exits").success());
    assert!(follower.status.success());

    let offline = robonet(&["replay", trace.to_str().unwrap()])
        .output()
        .expect("offline replay executes");
    assert!(offline.status.success());

    assert_eq!(
        String::from_utf8(follower.stdout).unwrap(),
        String::from_utf8(offline.stdout).unwrap(),
        "tail-follow must land byte-identical to the offline replay"
    );
}
