//! Golden gating for the scenario library plus the flag/scenario
//! determinism contract:
//!
//! - every `scenarios/*.rjson` runs fixed-seed and its summary must be
//!   byte-identical to the committed `tests/golden/scenario_<name>.txt`
//!   (regenerate intentional changes with `ROBONET_UPDATE_GOLDEN=1
//!   cargo test -q -p robonet-cli scenario_golden`),
//! - `paper_baseline.rjson` must be byte-identical — summary *and*
//!   trace — to the flag run it encodes,
//! - a scenario file holding nothing but the CLI defaults must be
//!   byte-identical to the flag-driven run for all three algorithms
//!   (the "empty scenario is inert" guarantee).

use robonet_cli::run_cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Strips the lines that are legitimately non-deterministic (wall-clock
/// profile) or environment-dependent (artifact paths) from a run
/// summary, leaving every simulation-derived byte intact.
fn normalized(out: &str) -> String {
    let mut kept: Vec<&str> = out
        .lines()
        .filter(|l| {
            !(l.starts_with("profile:")
                || l.starts_with("trace written:")
                || l.starts_with("manifest written:"))
        })
        .collect();
    while kept.last().is_some_and(|l| l.is_empty()) {
        kept.pop();
    }
    kept.join("\n") + "\n"
}

#[test]
fn library_scenarios_match_goldens_byte_for_byte() {
    let root = repo_root();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(root.join("scenarios"))
        .expect("scenarios/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rjson"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "scenario library shrank: {} files",
        paths.len()
    );
    for path in paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let out = run_cli(&args(&["run", "--scenario", path.to_str().unwrap()]))
            .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
        let summary = normalized(&out);
        let golden_path = root
            .join("tests/golden")
            .join(format!("scenario_{name}.txt"));
        if std::env::var_os("ROBONET_UPDATE_GOLDEN").is_some() {
            std::fs::write(&golden_path, &summary).expect("write golden summary");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {golden_path:?}: {e}"));
        assert_eq!(
            summary, golden,
            "{name}: summary drifted from {golden_path:?} \
             (ROBONET_UPDATE_GOLDEN=1 to regenerate)"
        );
    }
}

/// Runs `run` with `extra` flags plus a trace capture, returning the
/// normalized summary and the raw trace bytes.
fn traced_run(tag: &str, extra: &[&str]) -> (String, Vec<u8>) {
    let trace = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("{tag}.jsonl"));
    let trace_s = trace.to_str().expect("utf-8 tmpdir");
    let mut argv = vec!["run"];
    argv.extend_from_slice(extra);
    argv.extend_from_slice(&["--trace-out", trace_s]);
    let out = run_cli(&args(&argv)).unwrap_or_else(|e| panic!("{tag}: run failed: {e}"));
    let bytes = std::fs::read(&trace).expect("trace file exists");
    (normalized(&out), bytes)
}

#[test]
fn paper_baseline_scenario_is_byte_identical_to_its_flag_run() {
    let scenario = repo_root().join("scenarios/paper_baseline.rjson");
    let (scenario_out, scenario_trace) =
        traced_run("scn_baseline", &["--scenario", scenario.to_str().unwrap()]);
    let (flag_out, flag_trace) = traced_run(
        "scn_baseline_flags",
        &[
            "--alg", "dynamic", "--k", "2", "--scale", "64", "--seed", "1",
        ],
    );
    assert_eq!(scenario_out, flag_out, "summaries must match byte for byte");
    assert_eq!(
        scenario_trace, flag_trace,
        "traces must match byte for byte"
    );
}

#[test]
fn default_encoding_scenario_is_inert_for_every_algorithm() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    for alg in ["centralized", "fixed", "dynamic"] {
        // The file pins only the algorithm; every other knob is the
        // compiler's default — which must equal the CLI's default.
        let path = dir.join(format!("inert_{alg}.rjson"));
        std::fs::write(
            &path,
            format!("{{ \"name\": \"inert_{alg}\", \"algorithm\": \"{alg}\" }}\n"),
        )
        .expect("write scenario");
        let (scenario_out, scenario_trace) = traced_run(
            &format!("scn_inert_{alg}"),
            &["--scenario", path.to_str().unwrap(), "--scale", "64"],
        );
        let (flag_out, flag_trace) = traced_run(
            &format!("scn_inert_{alg}_flags"),
            &["--alg", alg, "--scale", "64"],
        );
        assert_eq!(scenario_out, flag_out, "{alg}: summaries must match");
        assert_eq!(scenario_trace, flag_trace, "{alg}: traces must match");
    }
}

#[test]
fn scenario_manifest_records_provenance() {
    let scenario = repo_root().join("scenarios/paper_baseline.rjson");
    let trace = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("scn_manifest.jsonl");
    let trace_s = trace.to_str().unwrap();
    run_cli(&args(&[
        "run",
        "--scenario",
        scenario.to_str().unwrap(),
        "--trace-out",
        trace_s,
    ]))
    .expect("traced scenario run succeeds");
    let manifest = std::fs::read_to_string(trace.with_extension("manifest.json"))
        .expect("manifest written next to trace");
    assert!(
        manifest.contains("\"scenario\":\"paper_baseline\""),
        "manifest must carry the scenario name: {manifest}"
    );

    // Flag-driven manifests stay scenario-free (byte-stable with
    // pre-scenario releases).
    let trace2 = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("scn_manifest_flags.jsonl");
    run_cli(&args(&[
        "run",
        "--scale",
        "64",
        "--trace-out",
        trace2.to_str().unwrap(),
    ]))
    .expect("traced flag run succeeds");
    let manifest =
        std::fs::read_to_string(trace2.with_extension("manifest.json")).expect("manifest written");
    assert!(
        !manifest.contains("\"scenario\""),
        "flag-run manifest must not mention a scenario: {manifest}"
    );
}
