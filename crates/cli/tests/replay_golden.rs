//! Golden gating for the replay renderers: for every algorithm the
//! animation, heatmap and waterfall SVGs must be byte-identical across
//! invocations *and* byte-identical to the committed goldens.
//!
//! Regenerate after an intentional rendering change with
//! `ROBONET_UPDATE_GOLDEN=1 cargo test -q -p robonet-cli replay_golden`.

use robonet_cli::run_cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Repo-root golden directory — shared with the spans CSV goldens.
fn golden_path(kind: &str, alg: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("replay_{kind}_{alg}.svg"))
}

/// Traces the same seed-pinned run `scripts/ci.sh` uses for its golden
/// artifact, renders every replay figure twice, and byte-diffs both
/// against each other and against the committed goldens.
#[test]
fn replay_figures_match_goldens_byte_for_byte() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    for alg in ["centralized", "fixed", "dynamic"] {
        let trace = dir.join(format!("replay_golden_{alg}.jsonl"));
        let trace_s = trace.to_str().expect("utf-8 tmpdir");
        run_cli(&args(&[
            "run",
            "--alg",
            alg,
            "--k",
            "1",
            "--scale",
            "64",
            "--seed",
            "7",
            "--trace-out",
            trace_s,
        ]))
        .expect("traced run succeeds");

        let render = |tag: &str| -> Vec<(String, std::path::PathBuf)> {
            let outs: Vec<(String, std::path::PathBuf)> = ["anim", "heatmap", "waterfall"]
                .iter()
                .map(|kind| {
                    (
                        kind.to_string(),
                        dir.join(format!("replay_{kind}_{alg}_{tag}.svg")),
                    )
                })
                .collect();
            run_cli(&args(&[
                "replay",
                trace_s,
                "--svg",
                outs[0].1.to_str().unwrap(),
                "--heatmap",
                outs[1].1.to_str().unwrap(),
                "--waterfall",
                outs[2].1.to_str().unwrap(),
            ]))
            .expect("replay renders");
            outs
        };

        let first = render("a");
        let second = render("b");
        for ((kind, a), (_, b)) in first.iter().zip(&second) {
            let a = std::fs::read(a).expect("first render exists");
            let b = std::fs::read(b).expect("second render exists");
            assert_eq!(a, b, "{alg}/{kind}: two renders must be byte-identical");

            let svg = String::from_utf8(a).expect("SVG is UTF-8");
            assert!(svg.starts_with("<svg"), "{alg}/{kind}: well-formed head");
            assert!(svg.ends_with("</svg>"), "{alg}/{kind}: well-formed tail");

            let path = golden_path(kind, alg);
            if std::env::var_os("ROBONET_UPDATE_GOLDEN").is_some() {
                std::fs::write(&path, &svg).expect("write golden SVG");
                continue;
            }
            let golden = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{alg}/{kind}: missing golden {path:?}: {e}"));
            assert_eq!(
                svg, golden,
                "{alg}/{kind}: rendering drifted from {path:?} \
                 (ROBONET_UPDATE_GOLDEN=1 to regenerate)"
            );
        }

        // The animation carries SMIL timelines and the field overlay;
        // the waterfall carries the span stages.
        let anim = std::fs::read_to_string(&first[0].1).unwrap();
        assert!(anim.contains("<animate"), "{alg}: animation has timelines");
        assert!(anim.contains("<polygon"), "{alg}: Voronoi overlay drawn");
        let waterfall = std::fs::read_to_string(&first[2].1).unwrap();
        assert!(
            waterfall.contains("travel") && waterfall.contains("install"),
            "{alg}: waterfall legend names the stages"
        );
    }
}
