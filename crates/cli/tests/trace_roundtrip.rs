//! End-to-end check of the trace artifact pipeline: `robonet run
//! --trace-out` → JSONL + manifest on disk → `robonet stats` printing
//! the same per-failure figures the run itself reported.

use robonet_cli::run_cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn trace_out_and_stats_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("roundtrip.jsonl");
    let trace_s = trace.to_str().expect("utf-8 tmpdir");

    let run_out = run_cli(&args(&[
        "run",
        "--alg",
        "dynamic",
        "--k",
        "1",
        "--scale",
        "64",
        "--seed",
        "7",
        "--trace-out",
        trace_s,
    ]))
    .expect("traced run succeeds");
    assert!(run_out.contains("trace written:"));
    assert!(run_out.contains("dropped packets:"));

    // Every artifact line is one well-formed JSON object.
    let text = std::fs::read_to_string(&trace).expect("trace file exists");
    assert!(!text.is_empty());
    for (i, line) in text.lines().enumerate() {
        robonet_core::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: bad JSON: {e:?}", i + 1));
    }

    // The trace leads with a versioned schema header.
    let first = text.lines().next().expect("trace has lines");
    let header = robonet_core::obs::json::parse(first).expect("header parses");
    assert_eq!(
        header.get("schema").and_then(|v| v.as_str()),
        Some("robonet-trace")
    );
    assert_eq!(
        header.get("schema_version").and_then(|v| v.as_u64()),
        Some(robonet_core::obs::TRACE_SCHEMA_VERSION)
    );

    // The manifest sits next to the trace and parses as one object.
    let manifest = dir.join("roundtrip.manifest.json");
    let mtext = std::fs::read_to_string(&manifest).expect("manifest exists");
    let m = robonet_core::obs::json::parse(mtext.trim()).expect("manifest parses");
    assert_eq!(m.get("algorithm").and_then(|v| v.as_str()), Some("dynamic"));
    assert_eq!(m.get("seed").and_then(|v| v.as_u64()), Some(7));
    assert!(m.get("counters").is_some(), "counter snapshot present");
    assert_eq!(
        m.get("schema_version").and_then(|v| v.as_u64()),
        Some(robonet_core::obs::TRACE_SCHEMA_VERSION),
        "manifest carries the schema version"
    );

    // `stats` reproduces the run's own headline lines verbatim — the
    // averages are recomputed from the artifact yet bit-identical.
    let stats_out = run_cli(&args(&["stats", trace_s])).expect("stats succeeds");
    for key in [
        "failures:",
        "replacements:",
        "travel per failure:",
        "report hops:",
    ] {
        let from_run = run_out
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("run output missing `{key}`"));
        let from_stats = stats_out
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("stats output missing `{key}`"));
        assert_eq!(from_run, from_stats, "`{key}` line must match exactly");
    }
}

#[test]
fn stats_rejects_missing_and_malformed_input() {
    assert!(run_cli(&args(&["stats"])).is_err(), "usage error");
    assert!(
        run_cli(&args(&["stats", "/nonexistent/no.jsonl"])).is_err(),
        "missing file"
    );

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"ev\":\"not_a_kind\",\"t\":0.0}\n").unwrap();
    let err = run_cli(&args(&["stats", bad.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("line 1"), "error locates the line: {err}");
}

#[test]
fn truncated_trace_degrades_to_a_note_over_the_complete_prefix() {
    // A trace cut off mid-write (crashed or still-writing producer):
    // valid header, one valid event, then a line truncated partway
    // through its JSON object. The analyzers cover the complete prefix
    // and flag the ragged tail instead of erroring out.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let cut = dir.join("truncated.jsonl");
    std::fs::write(
        &cut,
        format!(
            "{}\n{}\n{}",
            robonet_core::obs::trace_header(),
            "{\"ev\":\"failure\",\"t\":1.5,\"sensor\":3}",
            "{\"ev\":\"replaced\",\"t\":9.0,\"rob"
        ),
    )
    .unwrap();
    let cut_s = cut.to_str().unwrap();
    for verb in ["stats", "spans", "replay"] {
        let out = run_cli(&args(&[verb, cut_s]))
            .unwrap_or_else(|e| panic!("{verb} must tolerate a ragged tail: {e}"));
        assert!(
            out.contains("truncated tail"),
            "{verb}: output flags the tail: {out}"
        );
        assert!(
            out.contains("line 3"),
            "{verb}: note locates the cut: {out}"
        );
        assert!(
            out.contains("complete prefix"),
            "{verb}: note says what the figures cover: {out}"
        );
    }
    // The complete prefix is actually analyzed: the failure made it in.
    let stats = run_cli(&args(&["stats", cut_s])).unwrap();
    assert!(stats.contains("failures:             1"), "{stats}");

    // A *terminated* malformed line is still a hard, located error.
    let bad = dir.join("corrupt.jsonl");
    std::fs::write(
        &bad,
        format!(
            "{}\n{}\n{}\n",
            robonet_core::obs::trace_header(),
            "{\"ev\":\"failure\",\"t\":1.5,\"sensor\":3}",
            "{\"ev\":\"replaced\",\"t\":9.0,\"rob"
        ),
    )
    .unwrap();
    for verb in ["stats", "spans", "replay"] {
        let err = run_cli(&args(&[verb, bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("line 3"), "{verb}: error locates it: {err}");
    }
}

#[test]
fn unknown_schema_version_is_rejected() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let future = dir.join("future.jsonl");
    std::fs::write(
        &future,
        "{\"schema\":\"robonet-trace\",\"schema_version\":99}\n\
         {\"ev\":\"failure\",\"t\":1.5,\"sensor\":3}\n",
    )
    .unwrap();
    for verb in ["stats", "spans"] {
        let err = run_cli(&args(&[verb, future.to_str().unwrap()])).unwrap_err();
        assert!(
            err.contains("schema_version 99"),
            "{verb}: error names the version: {err}"
        );
        assert!(
            err.contains("version 1"),
            "{verb}: error names the supported version: {err}"
        );
    }
}

#[test]
fn spans_analyzer_decomposes_a_trace() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("spans_single.jsonl");
    let trace_s = trace.to_str().unwrap();
    run_cli(&args(&[
        "run",
        "--alg",
        "dynamic",
        "--k",
        "1",
        "--scale",
        "64",
        "--seed",
        "7",
        "--trace-out",
        trace_s,
    ]))
    .expect("traced run succeeds");

    // Text mode: labelled by the manifest's algorithm, all packet-level
    // stages present.
    let text = run_cli(&args(&["spans", trace_s])).expect("spans succeeds");
    assert!(text.contains("dynamic:"), "manifest label used: {text}");
    for stage in [
        "detection",
        "report_transit",
        "dispatch_decision",
        "travel",
        "install",
        "total",
    ] {
        assert!(text.contains(stage), "missing stage `{stage}`: {text}");
    }

    // CSV mode: header plus one line per (algorithm, stage).
    let csv = run_cli(&args(&["spans", trace_s, "--csv"])).expect("spans --csv succeeds");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("algorithm,stage,count,mean_s,p50_s,p95_s,p99_s,max_s")
    );
    assert!(lines.all(|l| l.starts_with("dynamic,")));
}

#[test]
fn spans_by_alg_lays_traces_side_by_side() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let mut traces = Vec::new();
    for alg in ["fixed", "centralized"] {
        let trace = dir.join(format!("spans_{alg}.jsonl"));
        run_cli(&args(&[
            "run",
            "--alg",
            alg,
            "--k",
            "1",
            "--scale",
            "64",
            "--seed",
            "7",
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .expect("traced run succeeds");
        traces.push(trace);
    }
    let csv = run_cli(&args(&[
        "spans",
        traces[0].to_str().unwrap(),
        traces[1].to_str().unwrap(),
        "--by-alg",
        "--csv",
    ]))
    .expect("spans --by-alg succeeds");
    assert!(csv.lines().any(|l| l.starts_with("fixed,")));
    assert!(csv.lines().any(|l| l.starts_with("centralized,")));
    let text = run_cli(&args(&[
        "spans",
        traces[0].to_str().unwrap(),
        traces[1].to_str().unwrap(),
        "--by-alg",
    ]))
    .expect("spans text succeeds");
    assert!(text.contains("fixed:") && text.contains("centralized:"));
}
