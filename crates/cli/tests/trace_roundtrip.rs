//! End-to-end check of the trace artifact pipeline: `robonet run
//! --trace-out` → JSONL + manifest on disk → `robonet stats` printing
//! the same per-failure figures the run itself reported.

use robonet_cli::run_cli;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn trace_out_and_stats_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let trace = dir.join("roundtrip.jsonl");
    let trace_s = trace.to_str().expect("utf-8 tmpdir");

    let run_out = run_cli(&args(&[
        "run",
        "--alg",
        "dynamic",
        "--k",
        "1",
        "--scale",
        "64",
        "--seed",
        "7",
        "--trace-out",
        trace_s,
    ]))
    .expect("traced run succeeds");
    assert!(run_out.contains("trace written:"));
    assert!(run_out.contains("dropped packets:"));

    // Every artifact line is one well-formed JSON object.
    let text = std::fs::read_to_string(&trace).expect("trace file exists");
    assert!(!text.is_empty());
    for (i, line) in text.lines().enumerate() {
        robonet_core::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: bad JSON: {e:?}", i + 1));
    }

    // The manifest sits next to the trace and parses as one object.
    let manifest = dir.join("roundtrip.manifest.json");
    let mtext = std::fs::read_to_string(&manifest).expect("manifest exists");
    let m = robonet_core::obs::json::parse(mtext.trim()).expect("manifest parses");
    assert_eq!(m.get("algorithm").and_then(|v| v.as_str()), Some("dynamic"));
    assert_eq!(m.get("seed").and_then(|v| v.as_u64()), Some(7));
    assert!(m.get("counters").is_some(), "counter snapshot present");

    // `stats` reproduces the run's own headline lines verbatim — the
    // averages are recomputed from the artifact yet bit-identical.
    let stats_out = run_cli(&args(&["stats", trace_s])).expect("stats succeeds");
    for key in [
        "failures:",
        "replacements:",
        "travel per failure:",
        "report hops:",
    ] {
        let from_run = run_out
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("run output missing `{key}`"));
        let from_stats = stats_out
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("stats output missing `{key}`"));
        assert_eq!(from_run, from_stats, "`{key}` line must match exactly");
    }
}

#[test]
fn stats_rejects_missing_and_malformed_input() {
    assert!(run_cli(&args(&["stats"])).is_err(), "usage error");
    assert!(
        run_cli(&args(&["stats", "/nonexistent/no.jsonl"])).is_err(),
        "missing file"
    );

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"ev\":\"not_a_kind\",\"t\":0.0}\n").unwrap();
    let err = run_cli(&args(&["stats", bad.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("line 1"), "error locates the line: {err}");
}
