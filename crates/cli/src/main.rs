//! `robonet` — command-line front end for the sensor-replacement
//! simulator.
//!
//! ```text
//! robonet run     --alg dynamic --k 2 [--scale 16] [--seed 1] [--prune 0.4]
//!                 [--dispatch nearest-idle] [--coverage 100]
//! robonet figures [--scale 16] [--seeds 1,2] [--ks 2,3,4]
//! robonet sweep   [--scale 16] [--seeds 1,2] [--ks 2,3,4]     # CSV only
//! ```

use robonet_cli::{print_usage, run_cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}
