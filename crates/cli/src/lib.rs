//! Implementation of the `robonet` command-line interface.
//!
//! Kept as a library so argument parsing and command dispatch are unit
//! testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod timeline;

pub use replay::REPLAY_FLAGS;
pub use timeline::TIMELINE_FLAGS;

use std::fmt::Write as _;

use robonet_bench::{average_series, sweep, sweep_result, SweepOptions};
use robonet_core::obs::json::{self, ObjectWriter};
use robonet_core::obs::TRACE_SCHEMA_VERSION;
use robonet_core::report::{self, Row};
use robonet_core::{
    compile_scenario, Algorithm, CoverageSampling, DispatchPolicy, FaultPlan, JsonlSink, Outcome,
    Overrides, ScenarioConfig, Simulation, SpanAssembler, TraceAggregate,
};
use robonet_des::SimDuration;

/// Every flag `robonet run` accepts, with whether it takes a value —
/// the single source of truth the usage text is audited against (see
/// the `usage_documents_every_run_flag` test).
pub const RUN_FLAGS: &[(&str, bool)] = &[
    ("--scenario", true),
    ("--alg", true),
    ("--k", true),
    ("--sensors", true),
    ("--scale", true),
    ("--seed", true),
    ("--prune", true),
    ("--dispatch", true),
    ("--coverage", true),
    ("--trace", true),
    ("--trace-out", true),
    ("--progress", false),
    ("--loss", true),
    ("--report-loss", true),
    ("--dispatch-loss", true),
    ("--update-loss", true),
    ("--breakdown", true),
    ("--breakdown-repair", true),
    ("--slow-prob", true),
    ("--slow-factor", true),
    ("--sample-every", true),
    ("--profile-out", true),
];

/// The usage text (returned so tests can audit it against the parser).
pub fn usage_text() -> String {
    "robonet — robot-assisted sensor replacement simulator (Mei et al., ICDCS 2006)\n\
     \n\
     USAGE:\n\
     \x20 robonet run     --alg <fixed|fixed-hex|dynamic|centralized> [--k N]\n\
     \x20                 [--scenario FILE.rjson]\n\
     \x20                 [--sensors N] [--scale F] [--seed N] [--prune F]\n\
     \x20                 [--dispatch <nearest|nearest-idle>] [--coverage SECS]\n\
     \x20                 [--trace N] [--trace-out FILE] [--progress]\n\
     \x20                 [--loss P] [--report-loss P] [--dispatch-loss P]\n\
     \x20                 [--update-loss P] [--breakdown MEAN_SECS]\n\
     \x20                 [--breakdown-repair SECS] [--slow-prob P] [--slow-factor F]\n\
     \x20                 [--sample-every SECS] [--profile-out FILE]\n\
     \x20 robonet stats   <run.jsonl>\n\
     \x20 robonet timeline <run.jsonl> [--csv] [--svg FILE] [--series a,b,c]\n\
     \x20                 [--compare other.jsonl]...\n\
     \x20 robonet spans   <run.jsonl>... [--csv] [--by-alg]\n\
     \x20 robonet replay  <run.jsonl|-> [--at T] [--svg FILE] [--heatmap FILE]\n\
     \x20                 [--waterfall FILE] [--metric <failures|latency>]\n\
     \x20                 [--grid N] [--rows N] [--duration SECS] [--follow]\n\
     \x20                 [--poll-ms N]\n\
     \x20 robonet figures [--scale F] [--seeds a,b] [--ks 2,3,4] [--jobs N]\n\
     \x20 robonet sweep   [--scale F] [--seeds a,b] [--ks 2,3,4] [--jobs N]\n\
     \n\
     `--scale F` compresses simulated time F× while preserving all\n\
     per-failure metrics (default 16; use 1 for the paper's full 64000 s runs).\n\
     `--scenario FILE.rjson` loads a declarative scenario (field geometry,\n\
     non-uniform deployment regions, fleet spec, scheduled fault timeline)\n\
     instead of building the run from flags; see scenarios/ for the\n\
     library and DESIGN.md §14 for the format. Scalar flags given\n\
     alongside (`--alg`, `--k`, `--sensors`, `--scale`, `--seed`, and\n\
     the fault flags) override the file's values; a scenario encoding\n\
     the defaults runs byte-identical to the flag-driven run, and the\n\
     run manifest records the scenario name as provenance.\n\
     `--sensors N` deploys exactly N sensors at the paper's density: the\n\
     k x k fleet keeps N/k^2 sensors per robot cell (N must divide evenly)\n\
     and the robot cell side scales so density stays at 50 sensors per\n\
     200 m x 200 m — the geometry the scale benchmarks use.\n\
     `--jobs N` fans sweep cells across N worker threads (default: the\n\
     `ROBONET_JOBS` env var, else all cores); output is byte-identical\n\
     for any value — parallelism only changes the wall-clock.\n\
     `--trace N` keeps the last N protocol events in memory and prints them;\n\
     `--trace-out FILE` streams every protocol event to FILE as JSON lines\n\
     and writes a run manifest (config, seed, counters) next to it; with\n\
     `-` as FILE the events stream to stdout (summary moves to stderr, no\n\
     manifest) so a run pipes straight into `robonet replay --follow -`.\n\
     `robonet stats` aggregates such a file back into the per-failure\n\
     overhead table without re-running the simulation.\n\
     `--sample-every SECS` arms the telemetry timeline: the run emits a\n\
     deterministic telemetry_sample event every SECS sim seconds (live\n\
     gauges: alive/down sensors, coverage, open repairs by stage, robot\n\
     queues, in-flight frames, scheduler queue) and an online health\n\
     monitor cross-checks conservation invariants at each sample,\n\
     emitting invariant_violated events instead of silently diverging.\n\
     Without the flag runs are byte-identical to earlier releases.\n\
     `robonet timeline` charts those samples from a trace: plain CSV of\n\
     every series (the default and `--csv`), or a multi-series sim-time\n\
     SVG chart (`--svg`, series picked with `--series`); `--compare`\n\
     overlays the same series from more traces, one palette color per\n\
     trace, labelled from their manifests.\n\
     `--profile-out FILE` writes the scheduler profile (event counts,\n\
     timer-wheel occupancy, per-subsystem wall-clock attribution) as\n\
     JSON after the run. Wall-clock figures are non-deterministic —\n\
     diagnostics only, never part of determinism gates.\n\
     `robonet spans` decomposes each repair in a trace into causal stages\n\
     (detection, report transit, dispatch, travel, install) and prints\n\
     per-stage p50/p95/p99; `--by-alg` lays several traces side by side.\n\
     `robonet replay` reconstructs world state from a trace: the state\n\
     summary at the end (or at sim time T with `--at T`), an SMIL-animated\n\
     field replay (`--svg`, one loop lasting `--duration` wall seconds,\n\
     Voronoi overlay included), a per-cell density heatmap (`--heatmap`\n\
     on a `--grid N` lattice of `--metric` failure counts or mean repair\n\
     latency), and a per-failure span waterfall (`--waterfall`, bucketed\n\
     beyond `--rows N`). Geometry-dependent figures recover the exact\n\
     deployment from the run manifest next to the trace. `--follow` tails\n\
     a growing trace file (or `-` for stdin), printing rolling dashboards\n\
     to stderr and the final state — identical to an offline replay of\n\
     the finished artifact — to stdout; `--poll-ms N` sets how often the\n\
     tail re-checks the file for new bytes (default 40 ms).\n\
     `--progress` prints sim-time/wall-time/open-span heartbeats to stderr.\n\
     \n\
     Fault injection (deterministic, from a dedicated seed stream):\n\
     `--loss P` drops reports, dispatch requests and location updates each\n\
     with probability P at the origin (`--report-loss`/`--dispatch-loss`/\n\
     `--update-loss` set them individually); `--breakdown MEAN_SECS` gives\n\
     each robot exponential breakdowns, repaired in place after\n\
     `--breakdown-repair SECS` if set (otherwise permanent); `--slow-prob P`\n\
     turns that fraction of breakdowns into a slowdown to `--slow-factor F`\n\
     of normal speed instead of a death. Any fault flag also arms the\n\
     recovery protocol: guardian report retries with exponential backoff,\n\
     manager dispatch timeouts with re-dispatch, and peer takeover floods."
        .to_string()
}

/// Prints the usage text to stderr.
pub fn print_usage() {
    eprintln!("{}", usage_text());
}

/// Parses and executes `args`, returning the stdout text.
///
/// # Errors
///
/// Returns a message describing the first invalid argument.
pub fn run_cli(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    match command.as_str() {
        "run" => cmd_run(rest),
        "stats" => cmd_stats(rest),
        "timeline" => timeline::cmd_timeline(rest),
        "spans" => cmd_spans(rest),
        "replay" => replay::cmd_replay(rest),
        "figures" => cmd_figures(rest),
        "sweep" => cmd_sweep(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(String::new())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses an algorithm name by resolving it through the coordination
/// registry ([`robonet_core::coord::registry`]) — the same table that
/// defines [`Algorithm::name`], so the two can never drift apart.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Algorithm::parse(name).ok_or_else(|| {
        let known: Vec<&str> = robonet_core::coord::names().collect();
        format!(
            "unknown algorithm `{name}` (expected one of: {})",
            known.join(", ")
        )
    })
}

struct RunArgs {
    scenario: Option<String>,
    alg: Algorithm,
    k: usize,
    sensors: Option<usize>,
    scale: f64,
    seed: u64,
    /// Which scalar flags appeared explicitly — with `--scenario`, only
    /// explicit flags override the file's values; the defaults above
    /// otherwise only exist for the flag-driven path.
    explicit_alg: bool,
    explicit_k: bool,
    explicit_scale: bool,
    explicit_seed: bool,
    prune: Option<f64>,
    dispatch: DispatchPolicy,
    coverage: Option<f64>,
    trace: usize,
    trace_out: Option<String>,
    progress: bool,
    faults: Option<FaultPlan>,
    sample_every: Option<f64>,
    profile_out: Option<String>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs {
        scenario: None,
        alg: Algorithm::Dynamic,
        k: 2,
        sensors: None,
        scale: 16.0,
        seed: 1,
        explicit_alg: false,
        explicit_k: false,
        explicit_scale: false,
        explicit_seed: false,
        prune: None,
        dispatch: DispatchPolicy::Nearest,
        coverage: None,
        trace: 0,
        trace_out: None,
        progress: false,
        faults: None,
        sample_every: None,
        profile_out: None,
    };
    let mut plan = FaultPlan::default();
    let mut faulty = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        let parse_f64 =
            |v: &str| -> Result<f64, String> { v.parse().map_err(|e| format!("bad {flag}: {e}")) };
        match flag.as_str() {
            "--scenario" => out.scenario = Some(value()?.to_string()),
            "--alg" => {
                out.alg = parse_algorithm(value()?)?;
                out.explicit_alg = true;
            }
            "--k" => {
                out.k = value()?.parse().map_err(|e| format!("bad --k: {e}"))?;
                out.explicit_k = true;
            }
            "--sensors" => {
                out.sensors = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad --sensors: {e}"))?,
                );
            }
            "--scale" => {
                out.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                out.explicit_scale = true;
            }
            "--seed" => {
                out.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                out.explicit_seed = true;
            }
            "--prune" => {
                out.prune = Some(value()?.parse().map_err(|e| format!("bad --prune: {e}"))?);
            }
            "--dispatch" => {
                out.dispatch = match value()? {
                    "nearest" => DispatchPolicy::Nearest,
                    "nearest-idle" => DispatchPolicy::NearestIdle,
                    other => return Err(format!("unknown dispatch policy `{other}`")),
                };
            }
            "--coverage" => {
                out.coverage = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad --coverage: {e}"))?,
                );
            }
            "--trace" => {
                out.trace = value()?.parse().map_err(|e| format!("bad --trace: {e}"))?;
            }
            "--trace-out" => out.trace_out = Some(value()?.to_string()),
            "--progress" => out.progress = true,
            "--sample-every" => {
                out.sample_every = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad --sample-every: {e}"))?,
                );
            }
            "--profile-out" => out.profile_out = Some(value()?.to_string()),
            "--loss" => {
                let p = parse_f64(value()?)?;
                plan.report_loss = p;
                plan.dispatch_loss = p;
                plan.update_loss = p;
                faulty = true;
            }
            "--report-loss" => {
                plan.report_loss = parse_f64(value()?)?;
                faulty = true;
            }
            "--dispatch-loss" => {
                plan.dispatch_loss = parse_f64(value()?)?;
                faulty = true;
            }
            "--update-loss" => {
                plan.update_loss = parse_f64(value()?)?;
                faulty = true;
            }
            "--breakdown" => {
                plan.breakdown_mean = Some(SimDuration::from_secs(parse_f64(value()?)?));
                faulty = true;
            }
            "--breakdown-repair" => {
                plan.breakdown_repair = Some(SimDuration::from_secs(parse_f64(value()?)?));
                faulty = true;
            }
            "--slow-prob" => {
                plan.slow_prob = parse_f64(value()?)?;
                faulty = true;
            }
            "--slow-factor" => {
                plan.slow_factor = parse_f64(value()?)?;
                faulty = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    out.faults = faulty.then_some(plan);
    Ok(out)
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let parsed = parse_run_args(args)?;
    let (mut cfg, scale) = if let Some(path) = parsed.scenario.as_deref() {
        // Declarative path: the file supplies everything, explicitly
        // given scalar flags override it (`compile` mirrors the flag
        // path's construction order, so a scenario that encodes the
        // defaults runs byte-identical to the flag-driven run).
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let overrides = Overrides {
            algorithm: parsed.explicit_alg.then_some(parsed.alg),
            k: parsed.explicit_k.then_some(parsed.k),
            sensors: parsed.sensors,
            scale: parsed.explicit_scale.then_some(parsed.scale),
            seed: parsed.explicit_seed.then_some(parsed.seed),
            faults: parsed.faults.clone(),
        };
        let compiled = compile_scenario(&source, &overrides).map_err(|e| format!("{path}:{e}"))?;
        (compiled.cfg, compiled.scale)
    } else {
        let mut cfg = ScenarioConfig::paper(parsed.k, parsed.alg).with_seed(parsed.seed);
        if let Some(n) = parsed.sensors {
            // Paper-density deployment hitting `n` sensors exactly (the
            // same geometry as the scale benchmarks): the per-robot cell
            // side grows with sqrt(sensors_per_robot / 50) so sensor
            // density — and with it MAC contention and neighbour degree —
            // stays at the paper's 50 sensors per 200 m × 200 m cell.
            let fleet = parsed.k * parsed.k;
            let spr = n / fleet;
            if spr * fleet != n {
                return Err(format!(
                    "--sensors {n} does not divide evenly into the {}x{} fleet",
                    parsed.k, parsed.k
                ));
            }
            cfg.sensors_per_robot = spr;
            cfg.area_per_robot_side = 200.0 * (spr as f64 / 50.0).sqrt();
        }
        // Faults go in before scaling so the plan's timers compress with
        // the rest of the scenario.
        cfg.faults = parsed.faults.clone();
        if parsed.scale > 1.0 {
            cfg = cfg.scaled(parsed.scale);
        }
        (cfg, parsed.scale)
    };
    cfg.broadcast_prune = parsed.prune;
    cfg.dispatch = parsed.dispatch;
    cfg.trace_capacity = parsed.trace;
    if let Some(period) = parsed.coverage {
        cfg.coverage_sample = Some(CoverageSampling {
            period: SimDuration::from_secs(period),
            ..CoverageSampling::default()
        });
    }
    // The sampling cadence is in sim seconds as given — deliberately
    // not compressed by --scale, so a 100 s cadence means the same
    // thing at every scale.
    cfg.sample_every = parsed.sample_every.map(SimDuration::from_secs);
    cfg.validate()?;

    let mut sim = match parsed.trace_out.as_deref() {
        // `-` streams the events themselves to stdout (line-buffered,
        // so a `--follow -` consumer sees them as they happen); the
        // human-readable summary then moves to stderr and no manifest
        // is written.
        Some("-") => {
            let sink = JsonlSink::new(std::io::stdout());
            Simulation::with_sink(cfg, Box::new(sink))
        }
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            let sink = JsonlSink::new(std::io::BufWriter::new(file));
            Simulation::with_sink(cfg, Box::new(sink))
        }
        None => Simulation::new(cfg),
    };
    if parsed.progress {
        sim.enable_progress(std::time::Duration::from_secs(1));
    }
    if parsed.profile_out.is_some() {
        sim.enable_subsystem_profile();
    }
    let mut outcome = sim.run_to_completion();
    let span_report = outcome.spans.take();
    let m = &outcome.metrics;
    let s = m.summary();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} | {} robots | {} sensors | {:.0} s simulated (scale {}x)",
        outcome.config.algorithm,
        outcome.config.n_robots(),
        outcome.config.n_sensors(),
        outcome.config.sim_time.as_secs_f64(),
        scale,
    );
    let _ = writeln!(out, "failures:             {}", s.failures_occurred);
    let _ = writeln!(out, "replacements:         {}", s.replacements);
    let _ = writeln!(
        out,
        "travel per failure:   {:.1} m",
        s.avg_travel_per_failure
    );
    let _ = writeln!(out, "report hops:          {:.2}", s.avg_report_hops);
    if let Some(h) = s.avg_request_hops {
        let _ = writeln!(out, "request hops:         {h:.2}");
    }
    let _ = writeln!(
        out,
        "update tx / failure:  {:.1}",
        s.loc_update_tx_per_failure
    );
    let _ = writeln!(
        out,
        "report delivery:      {:.2}%",
        s.report_delivery_ratio * 100.0
    );
    let _ = writeln!(out, "repair delay:         {:.1} s", s.avg_repair_delay);
    let _ = writeln!(out, "fleet travel:         {:.0} m", s.total_travel);
    let d = &s.packets_dropped;
    let _ = writeln!(
        out,
        "dropped packets:      {} (ttl {}, no-neighbor {}, mac {})",
        d.total(),
        d.ttl_expired,
        d.no_neighbors,
        d.mac_give_up
    );
    // Fault/recovery lines appear only for runs with a live fault plan,
    // keeping fault-free output byte-identical to earlier releases.
    if outcome
        .config
        .faults
        .as_ref()
        .is_some_and(|p| !p.is_inert())
    {
        let fs = &m.faults;
        let _ = writeln!(
            out,
            "faults injected:      {} msg drops (report {}, dispatch {}, update {}), \
             {} breakdowns, {} slowdowns",
            fs.report_drops + fs.dispatch_drops + fs.update_drops,
            fs.report_drops,
            fs.dispatch_drops,
            fs.update_drops,
            fs.robot_breakdowns,
            fs.robot_slowdowns
        );
        let _ = writeln!(
            out,
            "recovery:             {} report retries ({} abandoned), {} dispatch timeouts \
             ({} redispatched, {} abandoned), {} robot repairs, {} takeovers",
            fs.report_retries,
            fs.reports_abandoned,
            fs.dispatch_timeouts,
            fs.redispatches,
            fs.dispatches_abandoned,
            fs.robot_repairs,
            fs.takeovers
        );
    }
    // Health verdicts appear only for sampled runs with actual drift,
    // keeping unsampled output byte-identical to earlier releases.
    if m.invariant_violations > 0 {
        let _ = writeln!(
            out,
            "INVARIANT VIOLATIONS: {} (see invariant_violated trace events)",
            m.invariant_violations
        );
    }
    let _ = writeln!(out, "profile:              {}", outcome.profile);
    let _ = writeln!(out, "\ntransmissions by class:\n{}", m.tx);
    if let Some(report) = span_report {
        let label = outcome.config.algorithm.name().to_string();
        let _ = writeln!(out, "\nrepair-lifecycle stages:");
        out.push_str(&report::spans_text(&[(label, report)]));
    }
    if let Some(path) = parsed.trace_out.as_deref().filter(|p| *p != "-") {
        let manifest = manifest_path_for(path);
        std::fs::write(&manifest, run_manifest_json(&outcome))
            .map_err(|e| format!("cannot write manifest `{manifest}`: {e}"))?;
        let _ = writeln!(out, "\ntrace written:        {path}");
        let _ = writeln!(out, "manifest written:     {manifest}");
    }
    if let Some(path) = parsed.profile_out.as_deref() {
        std::fs::write(path, profile_json(&outcome.profile))
            .map_err(|e| format!("cannot write profile `{path}`: {e}"))?;
        let _ = writeln!(out, "profile written:      {path}");
    }
    if !outcome.trace.is_empty() {
        let _ = writeln!(out, "last {} protocol events:", outcome.trace.len());
        for ev in outcome.trace.events() {
            let _ = writeln!(out, "  {ev}");
        }
    }
    if !m.coverage_timeline.is_empty() {
        let _ = writeln!(out, "time_s,coverage,dead");
        for &(t, cov, dead) in &m.coverage_timeline {
            let _ = writeln!(out, "{t:.0},{cov:.4},{dead}");
        }
    }
    // When the trace owns stdout, the summary moves wholesale to
    // stderr so the JSONL stream stays machine-parseable.
    if parsed.trace_out.as_deref() == Some("-") {
        eprint!("{out}");
        return Ok(String::new());
    }
    Ok(out)
}

/// One JSON object describing where a run's wall-clock went: scheduler
/// throughput, timer-wheel occupancy, and per-subsystem attribution.
/// Wall-clock figures are machine- and load-dependent, so this artifact
/// is explicitly non-deterministic and excluded from determinism gates
/// (unlike the trace and the manifest, which must be byte-stable).
fn profile_json(profile: &robonet_des::SchedulerProfile) -> String {
    let mut wheel = ObjectWriter::new();
    wheel.field_u64("front_high_water", profile.wheel.front_high_water as u64);
    wheel.field_u64("lane0_high_water", profile.wheel.lane0_high_water as u64);
    wheel.field_u64(
        "overflow_high_water",
        profile.wheel.overflow_high_water as u64,
    );
    wheel.field_u64("overflow_promotions", profile.wheel.overflow_promotions);
    let sub = &profile.subsystems;
    let mut subsystems = ObjectWriter::new();
    subsystems.field_f64("radio_s", sub.radio_s);
    subsystems.field_f64("routing_s", sub.routing_s);
    subsystems.field_f64("coord_s", sub.coord_s);
    subsystems.field_f64("obs_sink_s", sub.obs_sink_s);
    subsystems.field_f64("total_s", sub.total());
    let mut w = ObjectWriter::new();
    w.field_u64("events_dispatched", profile.events_dispatched);
    w.field_u64("queue_high_water", profile.queue_high_water as u64);
    w.field_f64("sim_seconds", profile.sim_seconds);
    w.field_f64("wall_seconds", profile.wall_seconds);
    w.field_raw("wheel", &wheel.finish());
    w.field_raw("subsystems", &subsystems.finish());
    let mut json = w.finish();
    json.push('\n');
    json
}

/// `run.jsonl` → `run.manifest.json` (any other name just gains the
/// `.manifest.json` suffix).
pub(crate) fn manifest_path_for(trace_path: &str) -> String {
    let stem = trace_path.strip_suffix(".jsonl").unwrap_or(trace_path);
    format!("{stem}.manifest.json")
}

/// One JSON object describing a traced run: the scenario knobs that
/// produced the artifact, the headline summary figures, and the full
/// per-subsystem counter snapshot.
fn run_manifest_json(outcome: &Outcome) -> String {
    let cfg = &outcome.config;
    let s = outcome.metrics.summary();
    let mut summary = ObjectWriter::new();
    summary.field_u64("failures", s.failures_occurred);
    summary.field_u64("replacements", s.replacements);
    summary.field_f64("avg_travel_per_failure", s.avg_travel_per_failure);
    summary.field_f64("avg_report_hops", s.avg_report_hops);
    summary.field_f64("total_travel", s.total_travel);
    summary.field_u64("packets_dropped", s.packets_dropped.total());
    let mut w = ObjectWriter::new();
    w.field_u64("schema_version", TRACE_SCHEMA_VERSION);
    w.field_str("algorithm", cfg.algorithm.name());
    // Scenario provenance, present only for `--scenario` runs so every
    // pre-scenario manifest stays byte-identical.
    if let Some(name) = cfg.scenario_name.as_deref() {
        w.field_str("scenario", name);
    }
    w.field_u64("seed", cfg.seed);
    w.field_u64("k", cfg.k as u64);
    w.field_u64("robots", cfg.n_robots() as u64);
    w.field_u64("sensors", cfg.n_sensors() as u64);
    w.field_f64("sim_time_s", cfg.sim_time.as_secs_f64());
    // Deployment geometry: with these two fields `robonet replay` can
    // re-derive the exact sensor/robot positions of the producing run
    // (older manifests fall back to paper density and 1 m/s).
    w.field_f64("area_per_robot_side", cfg.area_per_robot_side);
    w.field_f64("robot_speed", cfg.robot_speed);
    w.field_raw("summary", &summary.finish());
    w.field_raw("counters", &outcome.metrics.counters.counters_json());
    let mut json = w.finish();
    json.push('\n');
    json
}

/// `robonet stats <run.jsonl>`: re-derives the paper's per-failure
/// overhead table from a trace artifact, without re-running. Travel and
/// hop averages match the producing run's output exactly; the repair
/// delay is reconstructed from event timestamps and is approximate.
fn cmd_stats(args: &[String]) -> Result<String, String> {
    let [path] = args else {
        return Err("usage: robonet stats <run.jsonl>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let agg = TraceAggregate::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "{} events from {path}", agg.events);
    let _ = writeln!(out, "failures:             {}", agg.failures);
    let _ = writeln!(out, "replacements:         {}", agg.replacements);
    let _ = writeln!(
        out,
        "travel per failure:   {:.1} m",
        agg.avg_travel_per_failure()
    );
    let _ = writeln!(out, "report hops:          {:.2}", agg.avg_report_hops());
    let _ = writeln!(
        out,
        "repair delay:         {:.1} s (reconstructed)",
        agg.avg_repair_delay()
    );
    let _ = writeln!(out, "fleet travel:         {:.0} m", agg.total_travel());
    let d = &agg.drops;
    let _ = writeln!(
        out,
        "dropped packets:      {} (ttl {}, no-neighbor {}, mac {})",
        d.total(),
        d.ttl_expired,
        d.no_neighbors,
        d.mac_give_up
    );
    let _ = writeln!(out, "loc-update floods:    {}", agg.loc_update_floods);
    let _ = writeln!(
        out,
        "robot legs:           {} started, {} completed",
        agg.legs_started, agg.legs_ended
    );
    if let Some(tail) = agg.truncated {
        let _ = writeln!(out, "note: {tail} — figures cover the complete prefix");
    }
    Ok(out)
}

/// `robonet spans <run.jsonl>... [--csv] [--by-alg]`: replays trace
/// artifacts through the span assembler and prints the per-stage
/// latency decomposition. With `--by-alg`, several traces are laid side
/// by side, each labelled by the algorithm recorded in its manifest
/// (falling back to the file name).
fn cmd_spans(args: &[String]) -> Result<String, String> {
    let mut csv = false;
    let mut by_alg = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--csv" => csv = true,
            "--by-alg" => by_alg = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`"));
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return Err("usage: robonet spans <run.jsonl>... [--csv] [--by-alg]".into());
    }
    if paths.len() > 1 && !by_alg {
        return Err("several traces given: pass --by-alg for a side-by-side table".into());
    }
    let mut tables = Vec::with_capacity(paths.len());
    let mut notes = String::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let report = SpanAssembler::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        if let Some(tail) = report.truncated {
            let _ = writeln!(
                notes,
                "# note: {path}: {tail} — spans cover the complete prefix"
            );
        }
        tables.push((trace_label(path), report));
    }
    let table = if csv {
        report::spans_csv(&tables)
    } else {
        report::spans_text(&tables)
    };
    Ok(format!("{notes}{table}"))
}

/// Label for a trace in a side-by-side table: the `algorithm` recorded
/// in the run manifest next to the trace, else the trace's file stem.
pub(crate) fn trace_label(trace_path: &str) -> String {
    let from_manifest = std::fs::read_to_string(manifest_path_for(trace_path))
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| {
            v.get("algorithm")
                .and_then(|a| a.as_str().map(String::from))
        });
    from_manifest.unwrap_or_else(|| {
        std::path::Path::new(trace_path).file_stem().map_or_else(
            || trace_path.to_string(),
            |s| s.to_string_lossy().into_owned(),
        )
    })
}

fn cmd_figures(args: &[String]) -> Result<String, String> {
    let mut opts = SweepOptions::from_args(args.iter().cloned())?;
    if opts.scale == 1.0 && !args.iter().any(|a| a == "--scale") {
        opts.scale = 16.0;
    }
    let rows = sweep(&opts);
    let mut out = String::new();
    for (title, metric) in [
        (
            "Figure 2: average traveling distance per failure (m)",
            (|r: &Row| Some(r.summary.avg_travel_per_failure)) as fn(&Row) -> Option<f64>,
        ),
        ("Figure 3a: average hops per failure report", |r: &Row| {
            Some(r.summary.avg_report_hops)
        }),
        (
            "Figure 3b: average hops per repair request (centralized)",
            |r: &Row| r.summary.avg_request_hops,
        ),
        (
            "Figure 4: location-update transmissions per failure",
            |r: &Row| Some(r.summary.loc_update_tx_per_failure),
        ),
    ] {
        let _ = writeln!(out, "{title}");
        for (alg, robots, v) in average_series(&rows, metric) {
            let _ = writeln!(out, "  {alg:<12} {robots:>2} robots: {v:>9.2}");
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

fn cmd_sweep(args: &[String]) -> Result<String, String> {
    let mut opts = SweepOptions::from_args(args.iter().cloned())?;
    if opts.scale == 1.0 && !args.iter().any(|a| a == "--scale") {
        opts.scale = 16.0;
    }
    let result = sweep_result(&opts);
    let mut out = String::new();
    let _ = writeln!(out, "{}", Row::csv_header());
    for r in &result.rows() {
        let _ = writeln!(out, "{}", r.to_csv());
    }
    if !result.failed.is_empty() {
        let _ = writeln!(out, "\n# failed cells");
        for f in &result.failed {
            let _ = writeln!(out, "#   {f}");
        }
    }
    let _ = writeln!(out, "\n# merged aggregate over completed cells");
    for line in result.merged.report().lines() {
        let _ = writeln!(out, "# {line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_core::PartitionKind;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn algorithm_names_parse() {
        assert_eq!(parse_algorithm("dynamic").unwrap(), Algorithm::Dynamic);
        assert_eq!(
            parse_algorithm("fixed").unwrap(),
            Algorithm::Fixed(PartitionKind::Square)
        );
        assert_eq!(
            parse_algorithm("fixed-hex").unwrap(),
            Algorithm::Fixed(PartitionKind::Hex)
        );
        assert_eq!(
            parse_algorithm("centralized").unwrap(),
            Algorithm::Centralized
        );
        assert!(parse_algorithm("voronoi").is_err());
    }

    #[test]
    fn parse_round_trips_every_registered_algorithm() {
        for entry in robonet_core::coord::registry() {
            let alg = entry.algorithm;
            assert_eq!(
                parse_algorithm(alg.name()),
                Ok(alg),
                "parse(name({alg:?})) must round-trip"
            );
        }
    }

    #[test]
    fn unknown_algorithm_error_lists_registered_names() {
        let err = parse_algorithm("voronoi").unwrap_err();
        for entry in robonet_core::coord::registry() {
            assert!(
                err.contains(entry.name),
                "error should mention `{}`: {err}",
                entry.name
            );
        }
    }

    #[test]
    fn run_args_defaults_and_overrides() {
        let a = parse_run_args(&args(&[])).unwrap();
        assert_eq!(a.alg, Algorithm::Dynamic);
        assert_eq!(a.k, 2);
        assert_eq!(a.scale, 16.0);

        let a = parse_run_args(&args(&[
            "--alg",
            "centralized",
            "--k",
            "3",
            "--seed",
            "9",
            "--dispatch",
            "nearest-idle",
            "--prune",
            "0.4",
        ]))
        .unwrap();
        assert_eq!(a.alg, Algorithm::Centralized);
        assert_eq!(a.k, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.dispatch, DispatchPolicy::NearestIdle);
        assert_eq!(a.prune, Some(0.4));
    }

    #[test]
    fn bad_arguments_are_reported() {
        assert!(parse_run_args(&args(&["--bogus"])).is_err());
        assert!(parse_run_args(&args(&["--k"])).is_err(), "missing value");
        assert!(parse_run_args(&args(&["--dispatch", "magic"])).is_err());
        assert!(run_cli(&args(&["destroy"])).is_err());
        assert!(run_cli(&args(&[])).is_err());
    }

    #[test]
    fn run_command_executes_a_small_simulation() {
        let out = run_cli(&args(&[
            "run", "--alg", "dynamic", "--k", "1", "--scale", "64",
        ]))
        .expect("run succeeds");
        assert!(out.contains("failures:"));
        assert!(out.contains("replacements:"));
        assert!(out.contains("transmissions by class"));
    }

    #[test]
    fn scenario_flag_tracks_explicit_overrides() {
        let a = parse_run_args(&args(&["--scenario", "x.rjson"])).unwrap();
        assert_eq!(a.scenario.as_deref(), Some("x.rjson"));
        assert!(!a.explicit_alg && !a.explicit_k && !a.explicit_scale && !a.explicit_seed);

        let a = parse_run_args(&args(&[
            "--scenario",
            "x.rjson",
            "--seed",
            "7",
            "--scale",
            "32",
        ]))
        .unwrap();
        assert!(a.explicit_seed && a.explicit_scale);
        assert!(!a.explicit_alg && !a.explicit_k);
        assert_eq!(a.seed, 7);
        assert_eq!(a.scale, 32.0);
    }

    #[test]
    fn scenario_errors_name_the_file_and_position() {
        let dir = std::env::temp_dir().join("robonet-scenario-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.rjson");
        std::fs::write(&path, "{\n  \"name\": \"x\",\n  \"robots\": 4,\n}").unwrap();
        let err = run_cli(&args(&["run", "--scenario", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("bad.rjson:3:"), "{err}");
        assert!(err.contains("unknown key"), "{err}");

        let err = run_cli(&args(&["run", "--scenario", "/no/such.rjson"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn progress_flag_parses() {
        let a = parse_run_args(&args(&["--progress"])).unwrap();
        assert!(a.progress);
        assert!(!parse_run_args(&args(&[])).unwrap().progress);
    }

    #[test]
    fn fault_flags_build_a_plan() {
        assert!(parse_run_args(&args(&[])).unwrap().faults.is_none());
        let a = parse_run_args(&args(&["--loss", "0.05"])).unwrap();
        let plan = a.faults.expect("--loss arms the fault plan");
        assert_eq!(plan.report_loss, 0.05);
        assert_eq!(plan.dispatch_loss, 0.05);
        assert_eq!(plan.update_loss, 0.05);

        let a = parse_run_args(&args(&[
            "--report-loss",
            "0.1",
            "--breakdown",
            "4000",
            "--breakdown-repair",
            "500",
            "--slow-prob",
            "0.5",
            "--slow-factor",
            "0.25",
        ]))
        .unwrap();
        let plan = a.faults.unwrap();
        assert_eq!(plan.report_loss, 0.1);
        assert_eq!(plan.dispatch_loss, 0.0);
        assert_eq!(plan.breakdown_mean, Some(SimDuration::from_secs(4000.0)));
        assert_eq!(plan.breakdown_repair, Some(SimDuration::from_secs(500.0)));
        assert_eq!(plan.slow_prob, 0.5);
        assert_eq!(plan.slow_factor, 0.25);
        assert!(parse_run_args(&args(&["--loss", "nope"])).is_err());
    }

    /// Dummy value accepted by every value-taking run flag.
    fn dummy_value(flag: &str) -> &'static str {
        match flag {
            "--alg" => "dynamic",
            "--dispatch" => "nearest",
            "--scenario" => "scenarios/paper_baseline.rjson",
            "--trace-out" => "/tmp/t.jsonl",
            "--k" | "--trace" | "--seed" | "--sensors" => "1",
            _ => "0.5",
        }
    }

    #[test]
    fn parser_accepts_every_declared_run_flag() {
        for &(flag, takes_value) in RUN_FLAGS {
            let argv = if takes_value {
                args(&[flag, dummy_value(flag)])
            } else {
                args(&[flag])
            };
            parse_run_args(&argv).unwrap_or_else(|e| panic!("declared flag {flag} rejected: {e}"));
        }
    }

    #[test]
    fn usage_documents_every_run_flag_and_documents_nothing_extra() {
        let usage = usage_text();
        // Every flag the parser accepts appears in the usage text.
        for &(flag, _) in RUN_FLAGS {
            assert!(usage.contains(flag), "usage text is missing `{flag}`");
        }
        // Every `--flag` token in the run section parses (tokens of the
        // other subcommands are excluded by their own usage lines).
        let run_section: String = usage
            .lines()
            .skip_while(|l| !l.contains("robonet run"))
            .take_while(|l| !l.contains("robonet stats"))
            .collect::<Vec<_>>()
            .join(" ");
        for token in run_section.split(|c: char| !(c.is_alphanumeric() || c == '-')) {
            if let Some(flag) = token.strip_prefix("--").map(|_| token) {
                assert!(
                    RUN_FLAGS.iter().any(|&(f, _)| f == flag),
                    "usage documents `{flag}` but the parser does not accept it"
                );
            }
        }
    }

    #[test]
    fn usage_documents_every_replay_flag_and_documents_nothing_extra() {
        let usage = usage_text();
        // Every flag the replay parser accepts appears in the usage text.
        for &(flag, _) in REPLAY_FLAGS {
            assert!(usage.contains(flag), "usage text is missing `{flag}`");
        }
        // Every `--flag` token in the replay usage section parses.
        let replay_section: String = usage
            .lines()
            .skip_while(|l| !l.contains("robonet replay"))
            .take_while(|l| !l.contains("robonet figures"))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(
            replay_section.contains("--at"),
            "replay usage section not found"
        );
        for token in replay_section.split(|c: char| !(c.is_alphanumeric() || c == '-')) {
            if let Some(flag) = token.strip_prefix("--").map(|_| token) {
                assert!(
                    REPLAY_FLAGS.iter().any(|&(f, _)| f == flag),
                    "usage documents `{flag}` but the replay parser does not accept it"
                );
            }
        }
    }

    #[test]
    fn usage_documents_every_timeline_flag_and_documents_nothing_extra() {
        let usage = usage_text();
        // Every flag the timeline parser accepts appears in the usage text.
        for &(flag, _) in TIMELINE_FLAGS {
            assert!(usage.contains(flag), "usage text is missing `{flag}`");
        }
        // Every `--flag` token in the timeline usage section parses.
        let timeline_section: String = usage
            .lines()
            .skip_while(|l| !l.contains("robonet timeline"))
            .take_while(|l| !l.contains("robonet spans"))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(
            timeline_section.contains("--series"),
            "timeline usage section not found"
        );
        for token in timeline_section.split(|c: char| !(c.is_alphanumeric() || c == '-')) {
            if let Some(flag) = token.strip_prefix("--").map(|_| token) {
                assert!(
                    TIMELINE_FLAGS.iter().any(|&(f, _)| f == flag),
                    "usage documents `{flag}` but the timeline parser does not accept it"
                );
            }
        }
    }

    #[test]
    fn sample_every_and_profile_out_flags_parse() {
        let a = parse_run_args(&args(&[
            "--sample-every",
            "100",
            "--profile-out",
            "/tmp/p.json",
        ]))
        .unwrap();
        assert_eq!(a.sample_every, Some(100.0));
        assert_eq!(a.profile_out.as_deref(), Some("/tmp/p.json"));
        let a = parse_run_args(&args(&[])).unwrap();
        assert!(a.sample_every.is_none() && a.profile_out.is_none());
        assert!(parse_run_args(&args(&["--sample-every", "often"])).is_err());
    }

    #[test]
    fn profile_json_has_every_section() {
        let profile = robonet_des::SchedulerProfile::default();
        let json = profile_json(&profile);
        let v = json::parse(&json).expect("valid JSON");
        for key in ["events_dispatched", "wall_seconds", "wheel", "subsystems"] {
            assert!(v.get(key).is_some(), "missing `{key}`: {json}");
        }
        let sub = v.get("subsystems").unwrap();
        for key in ["radio_s", "routing_s", "coord_s", "obs_sink_s", "total_s"] {
            assert!(sub.get(key).is_some(), "missing subsystems.{key}: {json}");
        }
    }

    #[test]
    fn spans_argument_errors_are_clear() {
        let err = run_cli(&args(&["spans"])).unwrap_err();
        assert!(err.contains("usage"), "{err}");
        let err = run_cli(&args(&["spans", "a.jsonl", "b.jsonl"])).unwrap_err();
        assert!(err.contains("--by-alg"), "{err}");
        let err = run_cli(&args(&["spans", "--frobnicate", "a.jsonl"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn spans_missing_file_names_the_path() {
        let err = run_cli(&args(&["spans", "/no/such/trace.jsonl"])).unwrap_err();
        assert!(err.contains("/no/such/trace.jsonl"), "{err}");
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn sweep_command_emits_csv_and_aggregate() {
        let out = run_cli(&args(&[
            "sweep", "--scale", "64", "--ks", "1", "--seeds", "1", "--jobs", "2",
        ]))
        .expect("sweep succeeds");
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("algorithm,robots,seed"));
        let csv_rows = out.lines().skip(1).take_while(|l| !l.is_empty()).count();
        assert_eq!(csv_rows, 3, "3 algorithms");
        assert!(out.contains("# merged aggregate over completed cells"));
        assert!(out.contains("# cells               3"));
        assert!(!out.contains("# failed cells"), "no failures expected");
    }
}
