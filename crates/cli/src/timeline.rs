//! `robonet timeline` — charts the telemetry samples a `--sample-every`
//! run streamed into its trace: plain CSV of every series, or a
//! multi-series sim-time SVG chart, optionally overlaying the same
//! series from several traces (`--compare`).
//!
//! All sample semantics live in `robonet_core::obs::timeline`; this
//! module only parses flags and composes [`Timeline`] series into
//! `robonet_viz` charts. The CSV is byte-identical to one rendered from
//! the live sampler's values — shortest-round-trip floats carried
//! verbatim through the JSONL artifact — so CI golden-gates it.

use std::fmt::Write as _;

use robonet_core::obs::timeline::{self, Timeline};
use robonet_viz::chart::{LineChart, Series};

use crate::trace_label;

/// Every flag `robonet timeline` accepts, with whether it takes a
/// value — audited against the usage text and the parser exactly like
/// [`RUN_FLAGS`](crate::RUN_FLAGS).
pub const TIMELINE_FLAGS: &[(&str, bool)] = &[
    ("--csv", false),
    ("--svg", true),
    ("--series", true),
    ("--compare", true),
];

#[derive(Debug)]
struct TimelineArgs {
    path: String,
    csv: bool,
    svg: Option<String>,
    series: Vec<String>,
    compare: Vec<String>,
}

fn parse_timeline_args(args: &[String]) -> Result<TimelineArgs, String> {
    let mut out = TimelineArgs {
        path: String::new(),
        csv: false,
        svg: None,
        series: Vec::new(),
        compare: Vec::new(),
    };
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--csv" => out.csv = true,
            "--svg" => out.svg = Some(value()?.to_string()),
            "--series" => {
                for name in value()?.split(',').filter(|s| !s.is_empty()) {
                    if !timeline::SERIES.contains(&name) {
                        return Err(format!(
                            "unknown series `{name}` (expected one of: {})",
                            timeline::SERIES.join(", ")
                        ));
                    }
                    out.series.push(name.to_string());
                }
            }
            "--compare" => out.compare.push(value()?.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`"));
            }
            _ => {
                if path.replace(arg.to_string()).is_some() {
                    return Err("timeline takes exactly one primary trace".into());
                }
            }
        }
    }
    out.path = path.ok_or("usage: robonet timeline <run.jsonl> [flags]")?;
    if !out.compare.is_empty() && out.svg.is_none() {
        return Err("--compare overlays traces on a chart: pass --svg FILE as well".into());
    }
    if out.csv && out.svg.is_some() {
        return Err("--csv and --svg are separate outputs: pass one at a time".into());
    }
    Ok(out)
}

fn load_timeline(path: &str) -> Result<Timeline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let (tl, tail) = Timeline::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(tail) = tail {
        // Stdout may be a pure CSV stream here; notes go to stderr.
        eprintln!("note: {path}: {tail} — timeline covers the complete prefix");
    }
    for (t, invariant, expected, actual) in &tl.violations {
        eprintln!(
            "warning: {path}: invariant `{invariant}` violated at t={t}: expected {expected}, got {actual}"
        );
    }
    Ok(tl)
}

/// `robonet timeline <run.jsonl> [...]` — see [`TIMELINE_FLAGS`].
pub fn cmd_timeline(args: &[String]) -> Result<String, String> {
    let parsed = parse_timeline_args(args)?;
    let tl = load_timeline(&parsed.path)?;
    let Some(svg_path) = &parsed.svg else {
        // CSV is the default output (and what `--csv` asks for
        // explicitly): every series, byte-stable, golden-gateable.
        return Ok(tl.csv());
    };
    if tl.is_empty() {
        return Err(format!(
            "no telemetry samples in `{}` — produce the trace with `robonet run --sample-every SECS`",
            parsed.path
        ));
    }
    let names: Vec<String> = if parsed.series.is_empty() {
        vec!["coverage".to_string()]
    } else {
        parsed.series.clone()
    };

    // One (label, timeline) per trace; with `--compare`, every trace
    // keeps one palette color across all its series so the chart reads
    // as "one color = one run".
    let mut traces: Vec<(String, Timeline)> = vec![(trace_label(&parsed.path), tl)];
    for path in &parsed.compare {
        traces.push((trace_label(path), load_timeline(path)?));
    }
    // Comparing runs of the same algorithm (a k sweep, a seed sweep)
    // gives every trace the same manifest label; fall back to file
    // stems so the legend still tells them apart.
    let mut sorted: Vec<&str> = traces.iter().map(|(l, _)| l.as_str()).collect();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        let paths = std::iter::once(&parsed.path).chain(&parsed.compare);
        for ((label, _), path) in traces.iter_mut().zip(paths) {
            *label = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        }
    }
    let mut chart = LineChart::new(
        format!("telemetry timeline — {}", names.join(", ")),
        "sim time",
        names.join(", "),
    )
    .with_time_axis();
    // Coverage lives in a sliver under 1.0; a zero-based axis would
    // flatten it into a horizontal line.
    if names.iter().all(|n| n == "coverage") {
        chart = chart.tight_y();
    }
    for (ti, (label, tl)) in traces.iter().enumerate() {
        for name in &names {
            let points = tl.series(name).expect("validated series name");
            let label = if traces.len() > 1 && names.len() > 1 {
                format!("{label}:{name}")
            } else if traces.len() > 1 {
                label.clone()
            } else {
                name.clone()
            };
            let mut series = Series::new(label, points);
            if traces.len() > 1 {
                series = series.with_color(ti);
            }
            chart = chart.with_series(series);
        }
    }
    std::fs::write(svg_path, chart.render(760, 440))
        .map_err(|e| format!("cannot write `{svg_path}`: {e}"))?;

    let mut out = String::new();
    for (label, tl) in &traces {
        let _ = writeln!(
            out,
            "{label}: {} samples, {} invariant violations",
            tl.len(),
            tl.violations.len()
        );
    }
    let _ = writeln!(out, "timeline chart written: {svg_path}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Dummy value accepted by every value-taking timeline flag.
    fn dummy_value(flag: &str) -> &'static str {
        match flag {
            "--svg" => "/tmp/out.svg",
            "--series" => "coverage,alive",
            _ => "other.jsonl",
        }
    }

    #[test]
    fn parser_accepts_every_declared_timeline_flag() {
        for &(flag, takes_value) in TIMELINE_FLAGS {
            let mut argv = vec!["t.jsonl".to_string()];
            argv.push(flag.to_string());
            if takes_value {
                argv.push(dummy_value(flag).to_string());
            }
            // `--compare` needs `--svg`; `--csv` conflicts with it.
            if flag == "--compare" {
                argv.extend(args(&["--svg", "/tmp/out.svg"]));
            }
            parse_timeline_args(&argv)
                .unwrap_or_else(|e| panic!("declared flag {flag} rejected: {e}"));
        }
    }

    #[test]
    fn timeline_args_defaults_and_overrides() {
        let a = parse_timeline_args(&args(&["run.jsonl"])).unwrap();
        assert_eq!(a.path, "run.jsonl");
        assert!(!a.csv);
        assert!(a.svg.is_none());
        assert!(a.series.is_empty());
        assert!(a.compare.is_empty());

        let a = parse_timeline_args(&args(&[
            "run.jsonl",
            "--svg",
            "t.svg",
            "--series",
            "coverage,alive,down",
            "--compare",
            "b.jsonl",
            "--compare",
            "c.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.svg.as_deref(), Some("t.svg"));
        assert_eq!(a.series, ["coverage", "alive", "down"]);
        assert_eq!(a.compare, ["b.jsonl", "c.jsonl"]);
    }

    #[test]
    fn timeline_arg_errors_are_clear() {
        assert!(parse_timeline_args(&args(&[])).is_err(), "needs a path");
        assert!(parse_timeline_args(&args(&["a", "b"])).is_err(), "one path");
        let err = parse_timeline_args(&args(&["t", "--series", "vibes"])).unwrap_err();
        assert!(err.contains("unknown series"), "{err}");
        assert!(err.contains("coverage"), "lists known names: {err}");
        let err = parse_timeline_args(&args(&["t", "--compare", "o.jsonl"])).unwrap_err();
        assert!(err.contains("--svg"), "{err}");
        let err = parse_timeline_args(&args(&["t", "--csv", "--svg", "x.svg"])).unwrap_err();
        assert!(err.contains("separate outputs"), "{err}");
        assert!(parse_timeline_args(&args(&["t", "--bogus"])).is_err());
    }

    #[test]
    fn missing_trace_names_the_path() {
        let err = cmd_timeline(&args(&["/no/such/run.jsonl"])).unwrap_err();
        assert!(err.contains("/no/such/run.jsonl"), "{err}");
        assert!(err.contains("cannot read"), "{err}");
    }
}
