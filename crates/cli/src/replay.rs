//! `robonet replay` — the trace analyzer: offline state reconstruction
//! (`--at`), SMIL field animation (`--svg`), density heatmaps
//! (`--heatmap`), span waterfalls (`--waterfall`) and live tail-follow
//! (`--follow`).
//!
//! All trace semantics live in `robonet_core::obs::replay`; this module
//! only parses flags, recovers the [`ReplaySetup`] from the run
//! manifest sitting next to the trace, and composes the replayed data
//! into `robonet_viz` figure specs. Every output is byte-deterministic
//! for a given artifact, so CI can golden-gate the rendered SVGs.

use std::fmt::Write as _;
use std::io::BufRead as _;

use robonet_core::obs::replay::{Film, ReplaySetup, ReplayState, Replayer};
use robonet_core::obs::{for_each_event_line, TruncatedTail};
use robonet_core::trace::TraceEvent;
use robonet_core::{SpanAssembler, Stage};
use robonet_geom::voronoi::voronoi_cells;
use robonet_viz::anim::{AnimLeg, AnimRobot, AnimScene, AnimSensor};
use robonet_viz::heatmap::{HeatMetric, Heatmap};
use robonet_viz::waterfall::{Waterfall, WaterfallRow};

use crate::manifest_path_for;

/// Every flag `robonet replay` accepts, with whether it takes a value —
/// audited against the usage text and the parser exactly like
/// [`RUN_FLAGS`](crate::RUN_FLAGS).
pub const REPLAY_FLAGS: &[(&str, bool)] = &[
    ("--at", true),
    ("--svg", true),
    ("--heatmap", true),
    ("--waterfall", true),
    ("--metric", true),
    ("--grid", true),
    ("--rows", true),
    ("--duration", true),
    ("--follow", false),
    ("--poll-ms", true),
];

/// What a heatmap cell aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeatKind {
    /// Failure count per cell.
    Failures,
    /// Mean end-to-end repair latency per cell.
    Latency,
}

#[derive(Debug)]
struct ReplayArgs {
    path: String,
    at: Option<f64>,
    svg: Option<String>,
    heatmap: Option<String>,
    waterfall: Option<String>,
    metric: HeatKind,
    grid: usize,
    rows: usize,
    duration: f64,
    follow: bool,
    poll_ms: u64,
}

fn parse_replay_args(args: &[String]) -> Result<ReplayArgs, String> {
    let mut out = ReplayArgs {
        path: String::new(),
        at: None,
        svg: None,
        heatmap: None,
        waterfall: None,
        metric: HeatKind::Failures,
        grid: 10,
        rows: 40,
        duration: 20.0,
        follow: false,
        poll_ms: 40,
    };
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--at" => {
                out.at = Some(value()?.parse().map_err(|e| format!("bad --at: {e}"))?);
            }
            "--svg" => out.svg = Some(value()?.to_string()),
            "--heatmap" => out.heatmap = Some(value()?.to_string()),
            "--waterfall" => out.waterfall = Some(value()?.to_string()),
            "--metric" => {
                out.metric = match value()? {
                    "failures" => HeatKind::Failures,
                    "latency" => HeatKind::Latency,
                    other => return Err(format!("unknown heat metric `{other}`")),
                };
            }
            "--grid" => {
                out.grid = value()?.parse().map_err(|e| format!("bad --grid: {e}"))?;
                if out.grid == 0 {
                    return Err("bad --grid: must be at least 1".into());
                }
            }
            "--rows" => {
                out.rows = value()?.parse().map_err(|e| format!("bad --rows: {e}"))?;
                if out.rows == 0 {
                    return Err("bad --rows: must be at least 1".into());
                }
            }
            "--duration" => {
                out.duration = value()?
                    .parse()
                    .map_err(|e| format!("bad --duration: {e}"))?;
            }
            "--follow" => out.follow = true,
            "--poll-ms" => {
                out.poll_ms = value()?
                    .parse()
                    .map_err(|e| format!("bad --poll-ms: {e}"))?;
                if out.poll_ms == 0 {
                    return Err("bad --poll-ms: must be at least 1".into());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`"));
            }
            _ => {
                if path.replace(arg.to_string()).is_some() {
                    return Err("replay takes exactly one trace (or `-`)".into());
                }
            }
        }
    }
    out.path = path.ok_or("usage: robonet replay <run.jsonl|-> [flags]")?;
    if out.follow && (out.at.is_some() || out.svg.is_some() || out.heatmap.is_some()) {
        return Err(
            "--follow renders live dashboards; combine artifacts with an offline replay instead"
                .into(),
        );
    }
    if out.follow && out.waterfall.is_some() {
        return Err(
            "--follow cannot write a waterfall; re-run replay offline once the trace is complete"
                .into(),
        );
    }
    Ok(out)
}

/// `robonet replay <run.jsonl|-> [...]` — see [`REPLAY_FLAGS`].
pub fn cmd_replay(args: &[String]) -> Result<String, String> {
    let parsed = parse_replay_args(args)?;
    if parsed.follow {
        return if parsed.path == "-" {
            follow_stdin()
        } else {
            follow_file(&parsed.path, parsed.poll_ms)
        };
    }
    let text = if parsed.path == "-" {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(&parsed.path)
            .map_err(|e| format!("cannot read `{}`: {e}", parsed.path))?
    };
    let setup = load_setup(&parsed.path)?;

    let mut events: Vec<TraceEvent> = Vec::new();
    let tail = for_each_event_line(&text, |ev| events.push(ev.clone()))
        .map_err(|e| format!("{}: {e}", parsed.path))?;
    // `--at T` analyzes the trace as of T: the state machine, the film
    // and the span decomposition all see only the prefix.
    if let Some(t) = parsed.at {
        events.retain(|ev| ev.time() <= t);
    }

    let mut state = match &setup {
        Some(setup) => ReplayState::new(setup),
        None => ReplayState::discovering(),
    };
    for ev in &events {
        state.apply(ev);
    }

    let mut out = match parsed.at {
        Some(t) => state.summary_at(t),
        None => state.summary(),
    };
    if let Some(tail) = tail {
        let _ = writeln!(out, "note: {tail} — state covers the complete prefix");
    }

    if let Some(svg_path) = &parsed.svg {
        let setup = setup
            .as_ref()
            .ok_or_else(|| needs_manifest("--svg", &parsed.path))?;
        let scene = film_scene(setup, &events, parsed.duration);
        write_artifact(svg_path, &robonet_viz::anim::render(&scene, 640))?;
        let _ = writeln!(out, "replay animation written: {svg_path}");
    }
    if let Some(heat_path) = &parsed.heatmap {
        let setup = setup
            .as_ref()
            .ok_or_else(|| needs_manifest("--heatmap", &parsed.path))?;
        let heat = heatmap_spec(setup, &events, parsed.metric, parsed.grid);
        write_artifact(heat_path, &heat.render(480))?;
        let _ = writeln!(out, "heatmap written: {heat_path}");
    }
    if let Some(wf_path) = &parsed.waterfall {
        let wf = waterfall_spec(setup.as_ref(), &events, parsed.rows);
        write_artifact(wf_path, &wf.render(760))?;
        let _ = writeln!(out, "waterfall written: {wf_path}");
    }
    Ok(out)
}

/// The run manifest next to the trace, if there is one. Replaying a
/// bare pipe or a trace whose manifest was deleted still works — nodes
/// are discovered from the events — but position-dependent figures
/// need the recovered deployment.
fn load_setup(trace_path: &str) -> Result<Option<ReplaySetup>, String> {
    if trace_path == "-" {
        return Ok(None);
    }
    let manifest = manifest_path_for(trace_path);
    match std::fs::read_to_string(&manifest) {
        Ok(text) => ReplaySetup::from_manifest(&text)
            .map(Some)
            .map_err(|e| format!("{manifest}: {e}")),
        Err(_) => Ok(None),
    }
}

fn needs_manifest(flag: &str, trace_path: &str) -> String {
    format!(
        "{flag} needs the deployment geometry: no readable manifest at `{}`",
        manifest_path_for(trace_path)
    )
}

fn write_artifact(path: &str, svg: &str) -> Result<(), String> {
    std::fs::write(path, svg).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Composes the full-run film into an animated scene: every sensor at
/// its deployed position flashing through its outages, every robot
/// driving its recorded legs, Voronoi cells of the initial fleet as an
/// overlay. Open legs and outages are closed at the film horizon.
fn film_scene(setup: &ReplaySetup, events: &[TraceEvent], playback_s: f64) -> AnimScene {
    let film = Film::build(events, |id| setup.sensor_pos.get(id as usize).copied());
    let dur = film.t_end;
    let n_sensors = setup.n_sensors() as u32;
    let mut sensors: Vec<AnimSensor> = setup
        .sensor_pos
        .iter()
        .map(|&loc| AnimSensor {
            loc,
            outages: Vec::new(),
        })
        .collect();
    for o in &film.outages {
        if let Some(s) = sensors.get_mut(o.sensor as usize) {
            s.outages.push((o.start, o.end.unwrap_or(dur)));
        }
    }
    let mut robots: Vec<AnimRobot> = setup
        .robot_home
        .iter()
        .enumerate()
        .map(|(r, &home)| AnimRobot {
            label: format!("R{r}"),
            home,
            legs: Vec::new(),
        })
        .collect();
    for leg in &film.legs {
        if let Some(rb) = leg
            .robot
            .checked_sub(n_sensors)
            .and_then(|i| robots.get_mut(i as usize))
        {
            rb.legs.push(AnimLeg {
                from: leg.from,
                to: leg.to,
                start: leg.start,
                end: leg.end.unwrap_or(dur),
            });
        }
    }
    AnimScene {
        title: format!("{} replay", setup.algorithm),
        bounds: setup.bounds,
        duration_s: dur,
        playback_s,
        sensors,
        robots,
        cells: voronoi_cells(&setup.robot_home, &setup.bounds),
    }
}

/// Failure density (unit samples, summed) or repair latency (dead-time
/// samples, averaged) over the deployed sensor positions.
fn heatmap_spec(
    setup: &ReplaySetup,
    events: &[TraceEvent],
    kind: HeatKind,
    grid: usize,
) -> Heatmap {
    let sensor_loc = |id: u32| setup.sensor_pos.get(id as usize).copied();
    let (title, unit, metric, samples) = match kind {
        HeatKind::Failures => {
            let film = Film::build(events, sensor_loc);
            let samples = film
                .outages
                .iter()
                .filter_map(|o| o.loc.map(|loc| (loc, 1.0)))
                .collect();
            (
                format!("failure density — {}", setup.algorithm),
                "failures".to_string(),
                HeatMetric::Sum,
                samples,
            )
        }
        HeatKind::Latency => {
            let mut assembler = SpanAssembler::new();
            for ev in events {
                assembler.ingest(ev);
            }
            let report = assembler.finish();
            let samples = report
                .spans
                .iter()
                .filter_map(|s| sensor_loc(s.sensor.as_u32()).map(|loc| (loc, s.total())))
                .collect();
            (
                format!("repair latency — {}", setup.algorithm),
                "s".to_string(),
                HeatMetric::Mean,
                samples,
            )
        }
    };
    Heatmap {
        title,
        unit,
        bounds: setup.bounds,
        grid,
        metric,
        samples,
    }
}

/// One waterfall row per repaired failure, segmented by lifecycle
/// stage; `viz::waterfall` sorts and (beyond `max_rows`) buckets them.
fn waterfall_spec(
    setup: Option<&ReplaySetup>,
    events: &[TraceEvent],
    max_rows: usize,
) -> Waterfall {
    let mut assembler = SpanAssembler::new();
    for ev in events {
        assembler.ingest(ev);
    }
    let report = assembler.finish();
    let rows = report
        .spans
        .iter()
        .map(|span| WaterfallRow {
            label: format!("s{} @ {:.0} s", span.sensor.as_u32(), span.failed_at),
            start: span.failed_at,
            segments: Stage::ALL
                .iter()
                .enumerate()
                .filter_map(|(i, st)| span.stage(*st).map(|d| (i, d)))
                .collect(),
        })
        .collect();
    Waterfall {
        title: format!(
            "repair lifecycle — {} ({} repairs, {} open)",
            setup.map_or("trace", |s| s.algorithm.as_str()),
            report.spans.len(),
            report.orphans.len()
        ),
        stage_names: Stage::ALL.iter().map(|s| s.label().to_string()).collect(),
        rows,
        max_rows,
    }
}

/// How many events between rolling dashboard lines in follow mode.
const DASHBOARD_EVERY: u64 = 256;

/// Follows a pipe on stdin (`robonet run --trace-out - | robonet
/// replay --follow -`): rolling dashboards to stderr while the
/// producer runs, the final state summary to stdout at EOF.
fn follow_stdin() -> Result<String, String> {
    let mut replayer = Replayer::discovering();
    let stdin = std::io::stdin();
    let mut lock = stdin.lock();
    let mut line = String::new();
    let mut next_dash = DASHBOARD_EVERY;
    loop {
        line.clear();
        let n = lock
            .read_line(&mut line)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        if n == 0 {
            break;
        }
        replayer.feed(&line)?;
        if replayer.state().events >= next_dash {
            eprintln!("{}", replayer.state().dashboard());
            next_dash += DASHBOARD_EVERY;
        }
    }
    let (state, tail) = replayer.finish()?;
    eprintln!("{}", state.dashboard());
    finish_summary(state, tail)
}

/// Tails a trace file being written by a live `robonet run
/// --trace-out FILE`: poll + seek every `poll_ms` milliseconds, a
/// ragged final line buffered until the rest arrives. The follow ends
/// when the producer's manifest exists and a poll reads no new bytes —
/// the run is over and the trace drained.
fn follow_file(path: &str, poll_ms: u64) -> Result<String, String> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let manifest = manifest_path_for(path);
    let mut replayer = Replayer::discovering();
    let mut pos: u64 = 0;
    loop {
        let mut chunk = Vec::new();
        if let Ok(mut f) = std::fs::File::open(path) {
            f.seek(SeekFrom::Start(pos))
                .map_err(|e| format!("cannot seek `{path}`: {e}"))?;
            f.read_to_end(&mut chunk)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
        }
        if chunk.is_empty() {
            // Trace drained and the producer has signed off (the
            // manifest is the last artifact a run writes).
            if pos > 0 && std::path::Path::new(&manifest).exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            continue;
        }
        pos += chunk.len() as u64;
        // Trace JSONL is pure ASCII; a split multi-byte sequence can
        // only mean a foreign file.
        let text =
            std::str::from_utf8(&chunk).map_err(|_| format!("`{path}` is not UTF-8 JSONL"))?;
        replayer.feed(text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{}", replayer.state().dashboard());
    }
    let (live, tail) = replayer.finish()?;
    // With the manifest on disk the deployment geometry is now
    // recoverable; re-fold the finished artifact so the final summary
    // is byte-identical to `robonet replay <path>` run offline.
    if let Some(setup) = load_setup(path)? {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let mut state = ReplayState::new(&setup);
        let tail =
            for_each_event_line(&text, |ev| state.apply(ev)).map_err(|e| format!("{path}: {e}"))?;
        return finish_summary(state, tail);
    }
    finish_summary(live, tail)
}

fn finish_summary(state: ReplayState, tail: Option<TruncatedTail>) -> Result<String, String> {
    let mut out = state.summary();
    if let Some(tail) = tail {
        let _ = writeln!(out, "note: {tail} — state covers the complete prefix");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Dummy value accepted by every value-taking replay flag.
    fn dummy_value(flag: &str) -> &'static str {
        match flag {
            "--svg" | "--heatmap" | "--waterfall" => "/tmp/out.svg",
            "--metric" => "latency",
            "--grid" | "--rows" | "--poll-ms" => "4",
            _ => "100.5",
        }
    }

    #[test]
    fn parser_accepts_every_declared_replay_flag() {
        for &(flag, takes_value) in REPLAY_FLAGS {
            let argv = if takes_value {
                args(&["t.jsonl", flag, dummy_value(flag)])
            } else {
                args(&["t.jsonl", flag])
            };
            parse_replay_args(&argv)
                .unwrap_or_else(|e| panic!("declared flag {flag} rejected: {e}"));
        }
    }

    #[test]
    fn replay_args_defaults_and_overrides() {
        let a = parse_replay_args(&args(&["run.jsonl"])).unwrap();
        assert_eq!(a.path, "run.jsonl");
        assert_eq!(a.at, None);
        assert_eq!(a.grid, 10);
        assert_eq!(a.rows, 40);
        assert_eq!(a.duration, 20.0);
        assert!(!a.follow);
        assert_eq!(a.poll_ms, 40);

        let a = parse_replay_args(&args(&["run.jsonl", "--follow", "--poll-ms", "250"])).unwrap();
        assert!(a.follow);
        assert_eq!(a.poll_ms, 250);

        let a = parse_replay_args(&args(&[
            "-",
            "--at",
            "1200.5",
            "--svg",
            "a.svg",
            "--metric",
            "latency",
            "--grid",
            "8",
            "--rows",
            "12",
            "--duration",
            "30",
        ]))
        .unwrap();
        assert_eq!(a.path, "-");
        assert_eq!(a.at, Some(1200.5));
        assert_eq!(a.svg.as_deref(), Some("a.svg"));
        assert_eq!(a.metric, HeatKind::Latency);
        assert_eq!(a.grid, 8);
        assert_eq!(a.rows, 12);
        assert_eq!(a.duration, 30.0);
    }

    #[test]
    fn replay_arg_errors_are_clear() {
        assert!(parse_replay_args(&args(&[])).is_err(), "needs a path");
        assert!(parse_replay_args(&args(&["a", "b"])).is_err(), "one path");
        assert!(parse_replay_args(&args(&["t", "--at"])).is_err());
        assert!(parse_replay_args(&args(&["t", "--grid", "0"])).is_err());
        assert!(parse_replay_args(&args(&["t", "--metric", "vibes"])).is_err());
        assert!(parse_replay_args(&args(&["t", "--poll-ms", "0"])).is_err());
        assert!(parse_replay_args(&args(&["t", "--poll-ms", "fast"])).is_err());
        assert!(parse_replay_args(&args(&["t", "--bogus"])).is_err());
        let err = parse_replay_args(&args(&["t", "--follow", "--svg", "a.svg"])).unwrap_err();
        assert!(err.contains("--follow"), "{err}");
        let err = parse_replay_args(&args(&["t", "--follow", "--waterfall", "w.svg"])).unwrap_err();
        assert!(err.contains("--follow"), "{err}");
    }

    #[test]
    fn missing_trace_names_the_path() {
        let err = cmd_replay(&args(&["/no/such/run.jsonl"])).unwrap_err();
        assert!(err.contains("/no/such/run.jsonl"), "{err}");
        assert!(err.contains("cannot read"), "{err}");
    }
}
