//! Property tests for the MAC engine: conservation laws that must hold
//! for any topology and traffic pattern.

use robonet_des::check::{self, Gen, Outcome};
use robonet_des::rng::Xoshiro256;

use robonet_des::{NodeId, Scheduler, SimTime};
use robonet_geom::{Bounds, Point};
use robonet_radio::engine::{RadioEvent, Upcall, UpcallBuf};
use robonet_radio::medium::{Medium, NodeClass, RangeTable};
use robonet_radio::{Frame, MacParams, RadioEngine, TrafficClass};

const CASES: u32 = 32;

struct RunResult {
    completes_ok: usize,
    completes_fail: usize,
    delivered: Vec<(u32, u32)>, // (src, dst)
}

/// Drives the engine to quiescence for the given sends.
fn run(
    positions: &[Point],
    sends: &[(u32, Option<u32>, u64)], // (src, dst, at_millis)
    seed: u64,
) -> RunResult {
    let classes = vec![NodeClass::Sensor; positions.len()];
    let medium = Medium::new(
        Bounds::square(1000.0),
        RangeTable::default(),
        positions,
        &classes,
    );
    let mut engine: RadioEngine<u32> = RadioEngine::new(
        medium,
        MacParams::default(),
        Xoshiro256::seed_from_u64(seed),
    );

    enum Ev {
        Send(Frame<u32>),
        Radio(RadioEvent),
    }
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(src, dst, at)) in sends.iter().enumerate() {
        sched.schedule_at(
            SimTime::from_millis(at),
            Ev::Send(Frame {
                src: NodeId::new(src),
                dst: dst.map(NodeId::new),
                bytes: 48,
                class: TrafficClass::Other,
                payload: i as u32,
            }),
        );
    }
    let mut result = RunResult {
        completes_ok: 0,
        completes_fail: 0,
        delivered: Vec::new(),
    };
    let mut out = UpcallBuf::new();
    while let Some(ev) = sched.next_event() {
        let now = sched.now();
        let mut pend: Vec<(SimTime, RadioEvent)> = Vec::new();
        match ev {
            Ev::Send(f) => engine.send(now, f, &mut |at, e| pend.push((at, e))),
            Ev::Radio(r) => engine.handle(now, r, &mut |at, e| pend.push((at, e)), &mut out),
        }
        for (at, e) in pend {
            sched.schedule_at(at, Ev::Radio(e));
        }
        for up in out.take_owned() {
            match up {
                Upcall::TxComplete { ok, .. } => {
                    if ok {
                        result.completes_ok += 1;
                    } else {
                        result.completes_fail += 1;
                    }
                }
                Upcall::Delivered { to, frame } => {
                    result.delivered.push((frame.src.as_u32(), to.as_u32()));
                }
            }
        }
    }
    result
}

fn positions_gen() -> Gen<Vec<Point>> {
    check::vec_of(
        check::pair(check::f64s(0.0..1000.0), check::f64s(0.0..1000.0))
            .map(|&(x, y)| Point::new(x, y)),
        2..20,
    )
}

/// Conservation: every send completes exactly once (ok or failed);
/// the engine always quiesces.
#[test]
fn every_send_completes_once() {
    check::forall_cases(
        "every_send_completes_once",
        CASES,
        &check::triple(
            positions_gen(),
            check::vec_of(
                check::triple(
                    check::usizes(0..100),
                    check::usizes(0..100),
                    check::u64s(0..50),
                ),
                1..40,
            ),
            check::u64_any(),
        ),
        |(positions, raw_sends, seed)| {
            let n = positions.len();
            let sends: Vec<(u32, Option<u32>, u64)> = raw_sends
                .iter()
                .map(|&(s, d, at)| {
                    let src = (s % n) as u32;
                    let dst = (d % n) as u32;
                    let dst = if dst == src { None } else { Some(dst) };
                    (src, dst, at)
                })
                .collect();
            let r = run(positions, &sends, *seed);
            assert_eq!(
                r.completes_ok + r.completes_fail,
                sends.len(),
                "sends must complete exactly once"
            );
            Outcome::Pass
        },
    );
}

/// Deliveries only happen within the sender's transmission range.
#[test]
fn deliveries_respect_range() {
    check::forall_cases(
        "deliveries_respect_range",
        CASES,
        &check::pair(positions_gen(), check::u64_any()),
        |(positions, seed)| {
            let n = positions.len();
            let sends: Vec<(u32, Option<u32>, u64)> =
                (0..n as u32).map(|i| (i, None, u64::from(i) * 3)).collect();
            let r = run(positions, &sends, *seed);
            for &(src, dst) in &r.delivered {
                let d = positions[src as usize].distance(positions[dst as usize]);
                assert!(d <= 63.0 + 1e-9, "delivery over {d} m at 63 m range");
            }
            Outcome::Pass
        },
    );
}

/// A unicast to an in-range destination on an otherwise idle
/// channel always succeeds (no spurious losses).
#[test]
fn idle_channel_unicast_succeeds() {
    check::forall_cases(
        "idle_channel_unicast_succeeds",
        CASES,
        &check::triple(check::f64s(0.0..62.0), check::bools(), check::u64_any()),
        |&(x, y_sign, seed)| {
            let y = if y_sign { 1.0 } else { -1.0 };
            let positions = vec![Point::new(500.0, 500.0), Point::new(500.0 + x, 500.0 + y)];
            let r = run(&positions, &[(0, Some(1), 0)], seed);
            assert_eq!(r.completes_ok, 1);
            assert_eq!(r.completes_fail, 0);
            assert_eq!(r.delivered.len(), 1);
            Outcome::Pass
        },
    );
}

/// Determinism: identical inputs and seed give identical outcomes.
#[test]
fn engine_is_deterministic() {
    check::forall_cases(
        "engine_is_deterministic",
        CASES,
        &check::pair(positions_gen(), check::u64_any()),
        |(positions, seed)| {
            let n = positions.len() as u32;
            let sends: Vec<(u32, Option<u32>, u64)> =
                (0..n).map(|i| (i, Some((i + 1) % n), 0)).collect();
            let a = run(positions, &sends, *seed);
            let b = run(positions, &sends, *seed);
            assert_eq!(a.completes_ok, b.completes_ok);
            assert_eq!(a.completes_fail, b.completes_fail);
            assert_eq!(a.delivered, b.delivered);
            Outcome::Pass
        },
    );
}
