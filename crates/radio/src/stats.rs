//! Transmission accounting.
//!
//! The paper's messaging-overhead metric "is measured as the number of
//! wireless transmissions incurred" (§2); these counters are that
//! number, broken down by traffic class.

use crate::frame::TrafficClass;

/// Counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Data-frame transmissions, *including* retransmissions and relays
    /// (every time energy leaves an antenna it counts once).
    pub data_tx: u64,
    /// ACK transmissions.
    pub ack_tx: u64,
    /// Frames successfully delivered (unicast: to its destination;
    /// broadcast: counted once per frame with at least one receiver).
    pub delivered: u64,
    /// Unicast frames dropped after exhausting retries.
    pub dropped: u64,
    /// Receptions corrupted by a collision.
    pub collisions: u64,
}

impl ClassStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &ClassStats) {
        self.data_tx += other.data_tx;
        self.ack_tx += other.ack_tx;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.collisions += other.collisions;
    }
}

/// Per-class transmission statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxStats {
    classes: [ClassStats; TrafficClass::ALL.len()],
}

impl TxStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        TxStats::default()
    }

    /// Counters for `class`.
    pub fn class(&self, class: TrafficClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Mutable counters for `class`.
    pub fn class_mut(&mut self, class: TrafficClass) -> &mut ClassStats {
        &mut self.classes[class.index()]
    }

    /// Total transmissions (data + ACK) across all classes.
    pub fn total_tx(&self) -> u64 {
        self.classes.iter().map(|c| c.data_tx + c.ack_tx).sum()
    }

    /// Total data transmissions for `class` (the Figure 3/4 metric).
    pub fn data_tx(&self, class: TrafficClass) -> u64 {
        self.class(class).data_tx
    }

    /// Counters summed over every traffic class — the shape observability
    /// snapshots want when attributing MAC activity to one subsystem.
    pub fn totals(&self) -> ClassStats {
        let mut t = ClassStats::default();
        for c in &self.classes {
            t.data_tx += c.data_tx;
            t.ack_tx += c.ack_tx;
            t.delivered += c.delivered;
            t.dropped += c.dropped;
            t.collisions += c.collisions;
        }
        t
    }

    /// Folds `other` into `self` (elementwise counter add per class).
    /// Integer addition makes the fold order-independent, which the
    /// sweep engine relies on when merging per-cell statistics.
    pub fn merge(&mut self, other: &TxStats) {
        for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
            mine.merge(theirs);
        }
    }

    /// Delivery ratio over unicast frames of `class`:
    /// delivered / (delivered + dropped). `None` when nothing was sent.
    pub fn delivery_ratio(&self, class: TrafficClass) -> Option<f64> {
        let c = self.class(class);
        let attempts = c.delivered + c.dropped;
        if attempts == 0 {
            None
        } else {
            Some(c.delivered as f64 / attempts as f64)
        }
    }
}

impl std::fmt::Display for TxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "class", "data_tx", "ack_tx", "delivered", "dropped", "collisions"
        )?;
        for class in TrafficClass::ALL {
            let c = self.class(class);
            if c.data_tx + c.ack_tx + c.delivered + c.dropped + c.collisions == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<16} {:>10} {:>10} {:>10} {:>8} {:>10}",
                class.to_string(),
                c.data_tx,
                c.ack_tx,
                c.delivered,
                c.dropped,
                c.collisions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_class() {
        let mut s = TxStats::new();
        s.class_mut(TrafficClass::Beacon).data_tx += 3;
        s.class_mut(TrafficClass::FailureReport).data_tx += 2;
        s.class_mut(TrafficClass::FailureReport).ack_tx += 2;
        assert_eq!(s.data_tx(TrafficClass::Beacon), 3);
        assert_eq!(s.data_tx(TrafficClass::FailureReport), 2);
        assert_eq!(s.total_tx(), 7);
    }

    #[test]
    fn totals_sum_across_classes() {
        let mut s = TxStats::new();
        s.class_mut(TrafficClass::Beacon).data_tx = 3;
        s.class_mut(TrafficClass::Beacon).collisions = 1;
        s.class_mut(TrafficClass::FailureReport).data_tx = 2;
        s.class_mut(TrafficClass::FailureReport).ack_tx = 2;
        s.class_mut(TrafficClass::FailureReport).delivered = 2;
        let t = s.totals();
        assert_eq!(t.data_tx, 5);
        assert_eq!(t.ack_tx, 2);
        assert_eq!(t.delivered, 2);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.collisions, 1);
    }

    #[test]
    fn delivery_ratio_cases() {
        let mut s = TxStats::new();
        assert_eq!(s.delivery_ratio(TrafficClass::Beacon), None);
        s.class_mut(TrafficClass::FailureReport).delivered = 9;
        s.class_mut(TrafficClass::FailureReport).dropped = 1;
        assert_eq!(s.delivery_ratio(TrafficClass::FailureReport), Some(0.9));
    }

    #[test]
    fn merge_adds_counters_per_class() {
        let mut a = TxStats::new();
        a.class_mut(TrafficClass::Beacon).data_tx = 3;
        a.class_mut(TrafficClass::FailureReport).delivered = 1;
        let mut b = TxStats::new();
        b.class_mut(TrafficClass::Beacon).data_tx = 4;
        b.class_mut(TrafficClass::Beacon).collisions = 2;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is order-independent");
        assert_eq!(ab.class(TrafficClass::Beacon).data_tx, 7);
        assert_eq!(ab.class(TrafficClass::Beacon).collisions, 2);
        assert_eq!(ab.class(TrafficClass::FailureReport).delivered, 1);
    }

    #[test]
    fn display_skips_empty_rows() {
        let mut s = TxStats::new();
        s.class_mut(TrafficClass::Beacon).data_tx = 1;
        let text = s.to_string();
        assert!(text.contains("beacon"));
        assert!(!text.contains("repair-request"));
    }
}
