//! The CSMA/CA MAC engine.
//!
//! # Model
//!
//! - **Carrier sense**: every node tracks `busy_until`, the latest end
//!   time of any transmission it can hear. A node contends only when its
//!   channel is idle.
//! - **Contention**: before each transmission attempt the node waits
//!   DIFS plus a uniform number of backoff slots in `[0, CW]`, with CW
//!   doubling per retry (frame-granular: the whole wait is drawn at once
//!   rather than freezing per-slot counters — at the paper's traffic
//!   loads the difference is statistically invisible, and it keeps event
//!   counts proportional to frames).
//! - **Collisions**: any two frames overlapping in time at a receiver
//!   corrupt each other there (no capture effect). A node that is
//!   transmitting cannot receive (half-duplex).
//! - **Unicast**: a successfully received unicast frame is acknowledged
//!   after SIFS. The ACK occupies the channel around the receiver and is
//!   counted, but is itself delivered reliably — a deliberate
//!   simplification documented in DESIGN.md (the paper's asymmetric
//!   ranges make strict symmetric-link ACKs impossible for
//!   robot-to-sensor hops that the paper itself relies on). Failed
//!   attempts retry up to the 802.11 long-retry limit.
//! - **Broadcast**: transmitted once, never acknowledged, as in 802.11.

use std::collections::VecDeque;

use robonet_des::rng::{Rng, Xoshiro256};
use robonet_des::{NodeId, SimTime};

use crate::frame::Frame;
use crate::medium::{Fading, Medium};
use crate::params::MacParams;
use crate::stats::TxStats;

/// Events the engine asks the simulation driver to schedule and feed
/// back via [`RadioEngine::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioEvent {
    /// A node's contention wait elapsed; it will transmit if the channel
    /// is still idle.
    TryAccess {
        /// The contending node.
        node: NodeId,
    },
    /// A transmission's air time ended.
    TxEnd {
        /// Transmission id.
        tx: u64,
    },
    /// The abstract ACK for transmission `tx` finished; the sender may
    /// proceed.
    AckDone {
        /// Transmission id being acknowledged.
        tx: u64,
    },
    /// The sender of a unicast frame gave up waiting for an ACK.
    AckTimeout {
        /// The waiting sender.
        node: NodeId,
        /// Generation token guarding against stale timeouts.
        token: u64,
    },
}

/// What the radio layer reports up to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum Upcall<P> {
    /// A frame arrived intact at `to` (for broadcast: one upcall per
    /// receiver).
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The received frame.
        frame: Frame<P>,
    },
    /// The sender finished with a frame: `ok` is `true` on success
    /// (broadcast frames always complete "ok" once sent).
    TxComplete {
        /// The sending node.
        src: NodeId,
        /// The frame that completed.
        frame: Frame<P>,
        /// Whether the frame was delivered (unicast) or sent (broadcast).
        ok: bool,
    },
}

/// One buffered upcall. The frame payload lives in the owning
/// [`UpcallBuf`] and is referenced by index, so a broadcast heard by N
/// nodes buffers its frame once instead of N clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpcallEntry {
    /// A frame arrived intact (one entry per receiver).
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// Index for [`UpcallBuf::frame`].
        frame: u32,
    },
    /// The sender finished with a frame (see [`Upcall::TxComplete`]).
    TxComplete {
        /// The sending node.
        src: NodeId,
        /// Index for [`UpcallBuf::frame`].
        frame: u32,
        /// Whether the frame was delivered (unicast) or sent (broadcast).
        ok: bool,
    },
}

/// Reusable output buffer for [`RadioEngine::handle`].
///
/// Hot consumers iterate [`UpcallBuf::entries`] (12-byte copies) and
/// resolve frames by reference through [`UpcallBuf::frame`];
/// [`UpcallBuf::take_owned`] materialises classic owned [`Upcall`]s for
/// tests and tools that prefer them.
#[derive(Debug)]
pub struct UpcallBuf<P> {
    entries: Vec<UpcallEntry>,
    frames: Vec<Frame<P>>,
}

impl<P> Default for UpcallBuf<P> {
    fn default() -> Self {
        UpcallBuf {
            entries: Vec::new(),
            frames: Vec::new(),
        }
    }
}

impl<P> UpcallBuf<P> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        UpcallBuf::default()
    }

    /// The buffered upcalls, in emission order.
    pub fn entries(&self) -> &[UpcallEntry] {
        &self.entries
    }

    /// Resolves a frame index from an [`UpcallEntry`].
    pub fn frame(&self, idx: u32) -> &Frame<P> {
        &self.frames[idx as usize]
    }

    /// Returns `true` if no upcalls are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the buffer, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.frames.clear();
    }

    fn push_frame(&mut self, frame: Frame<P>) -> u32 {
        let i = self.frames.len() as u32;
        self.frames.push(frame);
        i
    }
}

impl<P: Clone> UpcallBuf<P> {
    /// Drains the buffer into owned [`Upcall`]s, cloning shared frames.
    pub fn take_owned(&mut self) -> Vec<Upcall<P>> {
        let ups = self
            .entries
            .iter()
            .map(|&e| match e {
                UpcallEntry::Delivered { to, frame } => Upcall::Delivered {
                    to,
                    frame: self.frames[frame as usize].clone(),
                },
                UpcallEntry::TxComplete { src, frame, ok } => Upcall::TxComplete {
                    src,
                    frame: self.frames[frame as usize].clone(),
                    ok,
                },
            })
            .collect();
        self.clear();
        ups
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum MacState {
    #[default]
    Idle,
    WaitingAccess,
    Transmitting,
    AwaitAck,
}

/// Cold per-node MAC state (frame queue and retry bookkeeping). The
/// fields every transmission touches for *every hearer* — carrier-sense
/// deadline, MAC state, in-flight receptions — live in dense parallel
/// arrays on the engine instead, so the hearer loop stays inside a few
/// small, cache-resident allocations rather than striding through this
/// struct.
#[derive(Debug)]
struct MacNode<P> {
    queue: VecDeque<Frame<P>>,
    /// Attempt number (0-based) for the head-of-queue frame.
    attempt: u32,
    /// Generation token for AckTimeout staleness checks.
    token: u64,
}

impl<P> Default for MacNode<P> {
    fn default() -> Self {
        MacNode {
            queue: VecDeque::new(),
            attempt: 0,
            token: 0,
        }
    }
}

/// The per-node fields every transmission touches for *every hearer*,
/// packed and cache-line aligned so exactly one line covers a node's
/// whole carrier-sense update (unaligned, most entries would straddle
/// two lines and double the miss cost of the 60M+ hearer visits in a
/// large run).
#[derive(Debug, Default)]
#[repr(align(64))]
struct HotNode {
    /// Carrier-sense deadline: the channel is sensed busy until this
    /// time (written for every hearer of every frame).
    busy_until: SimTime,
    /// Transmission ids currently arriving at this node.
    incoming: TxSet,
    /// MAC protocol state.
    state: MacState,
}

/// Set of in-flight transmission ids at a receiver. A node rarely hears
/// more than two concurrent frames, so the common case stays inline in
/// the `HotNode` cache line; pile-ups spill to the heap. Ids are unique
/// (one per live transmission) and order is immaterial: every member is
/// treated alike by the collision logic.
#[derive(Debug, Default)]
struct TxSet {
    /// Number of ids stored in `inline`.
    len: u8,
    inline: [u64; 2],
    spill: Vec<u64>,
}

impl TxSet {
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, tx: u64) {
        if (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = tx;
            self.len += 1;
        } else {
            self.spill.push(tx);
        }
    }

    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    /// Drops `tx` if present, backfilling the inline slots from the
    /// spill so `is_empty` stays a plain `len == 0` check.
    fn remove(&mut self, tx: u64) {
        for i in 0..self.len as usize {
            if self.inline[i] == tx {
                self.len -= 1;
                self.inline[i] = self.inline[self.len as usize];
                if let Some(s) = self.spill.pop() {
                    self.inline[self.len as usize] = s;
                    self.len += 1;
                }
                return;
            }
        }
        if let Some(i) = self.spill.iter().position(|&t| t == tx) {
            self.spill.swap_remove(i);
        }
    }

    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

/// Lifecycle of a transmission slot in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    /// Slot is on the free list.
    Free,
    /// Data frame on the air (between `start_tx` and `TxEnd`).
    Airing,
    /// Abstract ACK in flight (between `TxEnd` and `AckDone`).
    Acking,
}

/// One arena slot. Transmission ids pack `(slot, generation)` so stale
/// ids from a node's `incoming` list can never corrupt a reused slot;
/// the `receivers` buffer is recycled with the slot, so steady-state
/// transmissions allocate nothing.
struct TxSlot {
    generation: u32,
    state: TxState,
    src: NodeId,
    /// `(receiver, corrupted)` pairs.
    receivers: Vec<(NodeId, bool)>,
}

fn tx_id(slot: u32, generation: u32) -> u64 {
    (u64::from(slot) << 32) | u64::from(generation)
}

fn tx_slot(tx: u64) -> usize {
    (tx >> 32) as usize
}

fn tx_generation(tx: u64) -> u32 {
    tx as u32
}

/// Marks `receiver`'s entry in transmission `tx` corrupted, if `tx` is
/// still on the air. A free function so call sites inside
/// `for_each_hearer` closures can borrow the arena without borrowing
/// the whole engine.
fn corrupt_at(txs: &mut [TxSlot], tx: u64, receiver: NodeId) {
    let s = &mut txs[tx_slot(tx)];
    if s.generation == tx_generation(tx) && s.state == TxState::Airing {
        for r in s.receivers.iter_mut().filter(|r| r.0 == receiver) {
            r.1 = true;
        }
    }
}

/// The MAC engine for all nodes sharing one [`Medium`].
///
/// The engine is driven by the simulation loop: [`RadioEngine::send`]
/// enqueues application frames, and every [`RadioEvent`] the engine
/// schedules (through the `sched` callback) must be fed back to
/// [`RadioEngine::handle`] at its due time. Deliveries and completions
/// come out through the `out` buffer.
pub struct RadioEngine<P> {
    params: MacParams,
    medium: Medium,
    nodes: Vec<MacNode<P>>,
    /// Dense hearer-hot state, parallel to `nodes` (see [`HotNode`]).
    hot: Vec<HotNode>,
    /// Transmission arena; ids handed to the scheduler pack the slot
    /// index and its generation.
    txs: Vec<TxSlot>,
    free_txs: Vec<u32>,
    rng: Xoshiro256,
    stats: TxStats,
}

impl<P: Clone> RadioEngine<P> {
    /// Creates an engine over `medium` with `params`, drawing backoff
    /// (and fading, if the medium has a grey zone) randomness from
    /// `rng`.
    pub fn new(medium: Medium, params: MacParams, rng: Xoshiro256) -> Self {
        let n = medium.len();
        RadioEngine {
            params,
            medium,
            nodes: (0..n).map(|_| MacNode::default()).collect(),
            hot: (0..n).map(|_| HotNode::default()).collect(),
            txs: Vec::new(),
            free_txs: Vec::new(),
            rng,
            stats: TxStats::new(),
        }
    }

    /// Allocates a transmission slot for `src`, reusing a freed slot's
    /// `receivers` buffer when one is available.
    fn alloc_tx(&mut self, src: NodeId) -> u64 {
        if let Some(slot) = self.free_txs.pop() {
            let s = &mut self.txs[slot as usize];
            debug_assert!(s.state == TxState::Free && s.receivers.is_empty());
            s.state = TxState::Airing;
            s.src = src;
            tx_id(slot, s.generation)
        } else {
            let slot = u32::try_from(self.txs.len()).expect("< 2^32 live transmissions");
            self.txs.push(TxSlot {
                generation: 0,
                state: TxState::Airing,
                src,
                receivers: Vec::new(),
            });
            tx_id(slot, 0)
        }
    }

    /// Returns a slot to the free list and invalidates outstanding ids.
    fn free_tx(&mut self, slot: usize) {
        let s = &mut self.txs[slot];
        debug_assert!(s.state != TxState::Free);
        s.state = TxState::Free;
        s.generation = s.generation.wrapping_add(1);
        s.receivers.clear();
        self.free_txs.push(slot as u32);
    }

    /// Immutable access to the medium (positions, classes, liveness).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Moves a node (robots, while travelling).
    pub fn set_position(&mut self, node: NodeId, pos: robonet_geom::Point) {
        self.medium.set_position(node, pos);
    }

    /// Marks a node failed or repaired. Failing a node flushes its MAC
    /// queue and detaches it from any in-flight receptions.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.medium.set_alive(node, alive);
        if !alive {
            let st = &mut self.nodes[node.index()];
            st.queue.clear();
            st.attempt = 0;
            st.token += 1;
            self.hot[node.index()].state = MacState::Idle;
            // Frames in flight toward this node can no longer be
            // delivered; mark its receiver entries corrupted. The list
            // is cleared (the node is detached) but keeps its buffer.
            let incoming = std::mem::take(&mut self.hot[node.index()].incoming);
            for tx in incoming.iter() {
                corrupt_at(&mut self.txs, tx, node);
            }
            self.hot[node.index()].incoming = incoming;
            self.hot[node.index()].incoming.clear();
        }
    }

    /// Transmission statistics so far.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// Number of frames currently on the air or awaiting their ACK
    /// (live transmission slots). O(1): the arena tracks its free list.
    pub fn in_flight(&self) -> usize {
        self.txs.len() - self.free_txs.len()
    }

    /// Returns `true` if `node` has nothing queued or in flight.
    pub fn is_idle(&self, node: NodeId) -> bool {
        self.hot[node.index()].state == MacState::Idle && self.nodes[node.index()].queue.is_empty()
    }

    /// Enqueues `frame` for transmission from `frame.src`.
    ///
    /// Silently ignores sends from dead nodes (the application may race
    /// a failure event with a scheduled send).
    pub fn send(
        &mut self,
        now: SimTime,
        frame: Frame<P>,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let src = frame.src;
        if !self.medium.is_alive(src) {
            return;
        }
        self.nodes[src.index()].queue.push_back(frame);
        if self.hot[src.index()].state == MacState::Idle {
            self.begin_access(now, src, sched);
        }
    }

    /// Processes a radio event previously scheduled through `sched`,
    /// pushing deliveries and completions into `out`.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: RadioEvent,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut UpcallBuf<P>,
    ) {
        match event {
            RadioEvent::TryAccess { node } => self.on_try_access(now, node, sched),
            RadioEvent::TxEnd { tx } => self.on_tx_end(now, tx, sched, out),
            RadioEvent::AckDone { tx } => self.on_ack_done(now, tx, sched, out),
            RadioEvent::AckTimeout { node, token } => {
                self.on_ack_timeout(now, node, token, sched, out)
            }
        }
    }

    fn begin_access(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let cw = self
            .params
            .contention_window(self.nodes[node.index()].attempt);
        let slots = self.rng.gen_range(0..=cw);
        self.hot[node.index()].state = MacState::WaitingAccess;
        let idle_at = self.hot[node.index()].busy_until.max(now);
        let at = idle_at + self.params.difs + self.params.slot * u64::from(slots);
        sched(at, RadioEvent::TryAccess { node });
    }

    fn on_try_access(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        if self.hot[node.index()].state != MacState::WaitingAccess || !self.medium.is_alive(node) {
            return; // stale event (node died or was reset)
        }
        if self.hot[node.index()].busy_until > now {
            // Channel became busy during our backoff; re-contend once it
            // frees up.
            self.begin_access(now, node, sched);
            return;
        }
        self.start_tx(now, node, sched);
    }

    fn start_tx(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let (bytes, class) = {
            let f = self.nodes[node.index()]
                .queue
                .front()
                .expect("start_tx with empty queue");
            (f.bytes, f.class)
        };
        let tx = self.alloc_tx(node);
        let slot = tx_slot(tx);
        let duration = self.params.airtime(bytes);
        let end = now + duration;
        self.stats.class_mut(class).data_tx += 1;

        // The sender cannot receive while transmitting: corrupt anything
        // currently arriving at it.
        let incoming = std::mem::take(&mut self.hot[node.index()].incoming);
        for other in incoming.iter() {
            corrupt_at(&mut self.txs, other, node);
        }
        self.hot[node.index()].incoming = incoming;

        // With fading off, reception is certain for every hearer (they
        // are in range by construction), so skip the per-hearer distance
        // computation; no randomness is consumed either way.
        let fading = !matches!(self.medium.fading(), Fading::None);
        self.medium.for_each_hearer(node, |h| {
            // Edge-of-range fading: a weak frame still occupies the
            // channel (carrier sense) but may fail to lock the receiver.
            let faded = fading && {
                let p_rx = self.medium.reception_prob(node, h);
                p_rx < 1.0 && self.rng.next_f64() >= p_rx
            };
            let h_i = h.index();
            let busy = &mut self.hot[h_i].busy_until;
            *busy = (*busy).max(end);
            if faded {
                return;
            }
            if self.hot[h_i].state == MacState::Transmitting {
                return; // half-duplex: cannot receive at all
            }
            let collided = !self.hot[h_i].incoming.is_empty();
            if collided {
                self.stats.class_mut(class).collisions += 1;
                let incoming = std::mem::take(&mut self.hot[h_i].incoming);
                for other in incoming.iter() {
                    corrupt_at(&mut self.txs, other, h);
                }
                self.hot[h_i].incoming = incoming;
            }
            self.hot[h_i].incoming.push(tx);
            self.txs[slot].receivers.push((h, collided));
        });

        self.hot[node.index()].state = MacState::Transmitting;
        let busy = &mut self.hot[node.index()].busy_until;
        *busy = (*busy).max(end);
        sched(end, RadioEvent::TxEnd { tx });
    }

    fn on_tx_end(
        &mut self,
        now: SimTime,
        tx: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut UpcallBuf<P>,
    ) {
        let slot = tx_slot(tx);
        let s = &self.txs[slot];
        assert!(
            s.generation == tx_generation(tx) && s.state == TxState::Airing,
            "unknown transmission"
        );
        let src = s.src;
        // Detach from receivers and deliver. The frame is buffered once
        // and every Delivered entry references it by index, so fan-out
        // to N hearers costs one clone, not N.
        let fi = match self.nodes[src.index()].queue.front() {
            Some(f) => out.push_frame(f.clone()),
            None => {
                // Sender died mid-transmission and its queue was flushed;
                // nothing to deliver or complete.
                for &(h, _) in &self.txs[slot].receivers {
                    self.hot[h.index()].incoming.remove(tx);
                }
                self.free_tx(slot);
                return;
            }
        };
        let (dst, class) = {
            let f = out.frame(fi);
            (f.dst, f.class)
        };

        let mut dst_received = false;
        let mut any_received = false;
        for &(h, corrupted) in &self.txs[slot].receivers {
            self.hot[h.index()].incoming.remove(tx);
            if corrupted || !self.medium.is_alive(h) {
                continue;
            }
            any_received = true;
            if dst == Some(h) {
                dst_received = true;
            }
            if dst.is_none() || dst == Some(h) {
                out.entries
                    .push(UpcallEntry::Delivered { to: h, frame: fi });
            }
        }

        if !self.medium.is_alive(src) {
            // Sender died exactly at tx end; drop silently.
            self.hot[src.index()].state = MacState::Idle;
            self.free_tx(slot);
            return;
        }

        match dst {
            None => {
                // Broadcast: done.
                self.free_tx(slot);
                if any_received {
                    self.stats.class_mut(class).delivered += 1;
                }
                self.complete_head(now, src, true, out, sched);
            }
            Some(dst) if dst_received => {
                // Abstract ACK: occupies the channel around the receiver
                // for SIFS + ACK air time, then the sender completes. The
                // slot stays allocated (state Acking) until AckDone.
                self.stats.class_mut(class).ack_tx += 1;
                let ack_end = now + self.params.sifs + self.params.ack_airtime();
                self.medium.for_each_hearer(dst, |h| {
                    let busy = &mut self.hot[h.index()].busy_until;
                    *busy = (*busy).max(ack_end);
                });
                self.hot[src.index()].state = MacState::AwaitAck;
                let busy = &mut self.hot[src.index()].busy_until;
                *busy = (*busy).max(ack_end);
                self.txs[slot].state = TxState::Acking;
                self.txs[slot].receivers.clear();
                sched(ack_end, RadioEvent::AckDone { tx });
            }
            Some(_) => {
                // Destination missed the frame (collision, death, or out
                // of range): wait out the ACK timeout, then retry.
                self.free_tx(slot);
                self.hot[src.index()].state = MacState::AwaitAck;
                let st = &mut self.nodes[src.index()];
                st.token += 1;
                let token = st.token;
                sched(
                    now + self.params.ack_timeout(),
                    RadioEvent::AckTimeout { node: src, token },
                );
            }
        }
    }

    fn on_ack_done(
        &mut self,
        now: SimTime,
        tx: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut UpcallBuf<P>,
    ) {
        let slot = tx_slot(tx);
        let s = &self.txs[slot];
        if s.generation != tx_generation(tx) || s.state != TxState::Acking {
            return; // stale id
        }
        let src = s.src;
        self.free_tx(slot);
        if !self.medium.is_alive(src) || self.hot[src.index()].state != MacState::AwaitAck {
            return;
        }
        if let Some(frame) = self.nodes[src.index()].queue.front() {
            self.stats.class_mut(frame.class).delivered += 1;
        }
        self.complete_head(now, src, true, out, sched);
    }

    fn on_ack_timeout(
        &mut self,
        now: SimTime,
        node: NodeId,
        token: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut UpcallBuf<P>,
    ) {
        let st = &self.nodes[node.index()];
        if self.hot[node.index()].state != MacState::AwaitAck
            || st.token != token
            || !self.medium.is_alive(node)
        {
            return; // stale timeout
        }
        let attempt = st.attempt + 1;
        if attempt >= self.params.max_attempts {
            if let Some(frame) = self.nodes[node.index()].queue.front() {
                self.stats.class_mut(frame.class).dropped += 1;
            }
            self.complete_head(now, node, false, out, sched);
        } else {
            let st = &mut self.nodes[node.index()];
            st.attempt = attempt;
            self.begin_access(now, node, sched);
        }
    }

    fn complete_head(
        &mut self,
        now: SimTime,
        node: NodeId,
        ok: bool,
        out: &mut UpcallBuf<P>,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let st = &mut self.nodes[node.index()];
        let frame = st
            .queue
            .pop_front()
            .expect("complete_head with empty queue");
        st.attempt = 0;
        st.token += 1;
        self.hot[node.index()].state = MacState::Idle;
        let fi = out.push_frame(frame);
        out.entries.push(UpcallEntry::TxComplete {
            src: node,
            frame: fi,
            ok,
        });
        if !self.nodes[node.index()].queue.is_empty() {
            self.begin_access(now, node, sched);
        }
    }
}

impl<P> std::fmt::Debug for RadioEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioEngine")
            .field("nodes", &self.nodes.len())
            .field("active_txs", &(self.txs.len() - self.free_txs.len()))
            .field("total_tx", &self.stats.total_tx())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::TrafficClass;
    use crate::medium::{NodeClass, RangeTable};
    use robonet_des::Scheduler;
    use robonet_geom::{Bounds, Point};

    /// Drives the engine until its event queue drains, collecting upcalls.
    fn run(
        engine: &mut RadioEngine<&'static str>,
        sends: Vec<(f64, Frame<&'static str>)>,
    ) -> Vec<(SimTime, Upcall<&'static str>)> {
        #[derive(Debug)]
        enum Ev {
            Send(Frame<&'static str>),
            Radio(RadioEvent),
        }
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for (t, f) in sends {
            sched.schedule_at(SimTime::from_secs(t), Ev::Send(f));
        }
        let mut upcalls = Vec::new();
        let mut buffer = UpcallBuf::new();
        while let Some(ev) = sched.next_event() {
            let now = sched.now();
            let mut pending: Vec<(SimTime, RadioEvent)> = Vec::new();
            {
                let mut cb = |at: SimTime, e: RadioEvent| pending.push((at, e));
                match ev {
                    Ev::Send(f) => engine.send(now, f, &mut cb),
                    Ev::Radio(r) => engine.handle(now, r, &mut cb, &mut buffer),
                }
            }
            for (at, e) in pending {
                sched.schedule_at(at, Ev::Radio(e));
            }
            for u in buffer.take_owned() {
                upcalls.push((now, u));
            }
        }
        upcalls
    }

    fn line_engine(positions: &[(f64, f64)], classes: &[NodeClass]) -> RadioEngine<&'static str> {
        line_engine_seeded(positions, classes, 7)
    }

    fn line_engine_seeded(
        positions: &[(f64, f64)],
        classes: &[NodeClass],
        seed: u64,
    ) -> RadioEngine<&'static str> {
        let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let medium = Medium::new(Bounds::square(2000.0), RangeTable::default(), &pts, classes);
        RadioEngine::new(
            medium,
            MacParams::default(),
            Xoshiro256::seed_from_u64(seed),
        )
    }

    /// Finds a seed for which the two hidden-terminal senders' backoff
    /// draws overlap (used by the collision tests so they stay
    /// meaningful under any PRNG implementation).
    fn colliding_seed() -> u64 {
        for seed in 0..256 {
            let mut e = line_engine_seeded(
                &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
                &[NodeClass::Sensor; 3],
                seed,
            );
            run(
                &mut e,
                vec![
                    (0.0, frame(0, None, TrafficClass::Beacon)),
                    (0.0, frame(1, None, TrafficClass::Beacon)),
                ],
            );
            if e.stats().class(TrafficClass::Beacon).collisions > 0 {
                return seed;
            }
        }
        panic!("no colliding seed in 0..256 — backoff model changed?");
    }

    fn frame(src: u32, dst: Option<u32>, class: TrafficClass) -> Frame<&'static str> {
        Frame {
            src: NodeId::new(src),
            dst: dst.map(NodeId::new),
            bytes: 64,
            class,
            payload: "p",
        }
    }

    #[test]
    fn broadcast_reaches_all_in_range() {
        let mut e = line_engine(
            &[(0.0, 0.0), (50.0, 0.0), (60.0, 0.0), (500.0, 0.0)],
            &[NodeClass::Sensor; 4],
        );
        let ups = run(&mut e, vec![(0.0, frame(0, None, TrafficClass::Beacon))]);
        let delivered: Vec<u32> = ups
            .iter()
            .filter_map(|(_, u)| match u {
                Upcall::Delivered { to, .. } => Some(to.as_u32()),
                _ => None,
            })
            .collect();
        assert_eq!(
            delivered,
            vec![1, 2],
            "nodes within 63 m hear, 500 m does not"
        );
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
        assert_eq!(e.stats().data_tx(TrafficClass::Beacon), 1);
        assert_eq!(
            e.stats().class(TrafficClass::Beacon).ack_tx,
            0,
            "no ACK for broadcast"
        );
    }

    #[test]
    fn unicast_delivers_and_acks() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::FailureReport))],
        );
        assert!(ups.iter().any(|(_, u)| matches!(
            u,
            Upcall::Delivered { to, .. } if to.as_u32() == 1
        )));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.data_tx, 1);
        assert_eq!(s.ack_tx, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn unicast_out_of_range_retries_then_drops() {
        let mut e = line_engine(&[(0.0, 0.0), (200.0, 0.0)], &[NodeClass::Sensor; 2]);
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::FailureReport))],
        );
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: false, .. })));
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.data_tx, u64::from(MacParams::default().max_attempts));
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivered, 0);
    }

    #[test]
    fn asymmetric_range_robot_reaches_far_sensor() {
        let mut e = line_engine(
            &[(0.0, 0.0), (200.0, 0.0)],
            &[NodeClass::Robot, NodeClass::Sensor],
        );
        // Robot → sensor at 200 m succeeds (250 m range) even though the
        // sensor could not reply with data at that distance.
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::RepairRequest))],
        );
        assert!(ups.iter().any(|(_, u)| matches!(
            u,
            Upcall::Delivered { to, .. } if to.as_u32() == 1
        )));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
    }

    #[test]
    fn queue_drains_in_order() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        let mut f1 = frame(0, Some(1), TrafficClass::FailureReport);
        f1.payload = "first";
        let mut f2 = frame(0, Some(1), TrafficClass::FailureReport);
        f2.payload = "second";
        let ups = run(&mut e, vec![(0.0, f1), (0.0, f2)]);
        let delivered: Vec<&str> = ups
            .iter()
            .filter_map(|(_, u)| match u {
                Upcall::Delivered { frame, .. } => Some(frame.payload),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec!["first", "second"]);
        assert_eq!(e.stats().class(TrafficClass::FailureReport).delivered, 2);
    }

    #[test]
    fn simultaneous_senders_defer_not_collide() {
        // Two senders in range of each other contend; the second hears
        // the first and defers, so both broadcasts deliver.
        let mut e = line_engine(
            &[(0.0, 0.0), (30.0, 0.0), (15.0, 10.0)],
            &[NodeClass::Sensor; 3],
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, None, TrafficClass::Beacon)),
                (0.0, frame(1, None, TrafficClass::Beacon)),
            ],
        );
        let delivered_to_2 = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::Delivered { to, .. } if to.as_u32() == 2))
            .count();
        // Node 2 hears both beacons (senders deferred to each other, with
        // high probability under different backoff draws).
        assert_eq!(delivered_to_2, 2);
        assert_eq!(e.stats().class(TrafficClass::Beacon).collisions, 0);
    }

    #[test]
    fn hidden_terminals_collide_at_receiver() {
        // Senders at 0 and 120 cannot hear each other (63 m range) but
        // both reach the middle node at 60: a classic hidden-terminal
        // collision corrupting both frames.
        let mut e = line_engine_seeded(
            &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
            &[NodeClass::Sensor; 3],
            colliding_seed(),
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, None, TrafficClass::Beacon)),
                (0.0, frame(1, None, TrafficClass::Beacon)),
            ],
        );
        let delivered_to_2 = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::Delivered { to, .. } if to.as_u32() == 2))
            .count();
        // Both senders draw their backoff independently; the frames can
        // only avoid collision if their airtimes do not overlap at all.
        // With identical send times, same CW and 238 µs airtime over a
        // 620 µs contention spread, overlap is likely but not certain —
        // assert the *accounting* is consistent rather than the outcome.
        let collisions = e.stats().class(TrafficClass::Beacon).collisions;
        assert_eq!(
            delivered_to_2 == 2,
            collisions == 0,
            "either both delivered cleanly or a collision was recorded"
        );
        // With this seed the backoffs do overlap.
        assert!(collisions > 0, "seed chosen to exhibit the collision");
        assert_eq!(delivered_to_2, 0, "corrupted frames are not delivered");
    }

    #[test]
    fn unicast_retry_succeeds_after_collision() {
        // Hidden terminals with unicast: the data frames collide at the
        // receiver, but retransmissions (new backoff draws) eventually
        // get through — delivery ratio stays 100% as the paper observes.
        let mut e = line_engine_seeded(
            &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
            &[NodeClass::Sensor; 3],
            colliding_seed(),
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, Some(2), TrafficClass::FailureReport)),
                (0.0, frame(1, Some(2), TrafficClass::FailureReport)),
            ],
        );
        let ok = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. }))
            .count();
        assert_eq!(ok, 2, "both unicasts eventually delivered");
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.delivered, 2);
        assert!(s.data_tx > 2, "retransmissions happened");
    }

    #[test]
    fn dead_receiver_gets_nothing() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(1), false);
        let ups = run(&mut e, vec![(0.0, frame(0, Some(1), TrafficClass::Beacon))]);
        assert!(!ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Delivered { .. })));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: false, .. })));
    }

    #[test]
    fn dead_sender_send_ignored() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(0), false);
        let ups = run(&mut e, vec![(0.0, frame(0, None, TrafficClass::Beacon))]);
        assert!(ups.is_empty());
        assert_eq!(e.stats().total_tx(), 0);
        assert!(e.is_idle(NodeId::new(0)));
    }

    #[test]
    fn revived_node_participates_again() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(1), false);
        e.set_alive(NodeId::new(1), true);
        let ups = run(&mut e, vec![(0.0, frame(0, Some(1), TrafficClass::Beacon))]);
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Delivered { .. })));
    }

    #[test]
    fn throughput_many_beacons_all_complete() {
        // 20 sensors in a cluster, each beaconing 5 times: every beacon
        // transmission completes and the channel never deadlocks.
        let positions: Vec<(f64, f64)> = (0..20)
            .map(|i| ((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
            .collect();
        let mut e = line_engine(&positions, &[NodeClass::Sensor; 20]);
        let mut sends = Vec::new();
        for round in 0..5 {
            for i in 0..20u32 {
                sends.push((round as f64 * 10.0, frame(i, None, TrafficClass::Beacon)));
            }
        }
        let ups = run(&mut e, sends);
        let completes = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::TxComplete { .. }))
            .count();
        assert_eq!(completes, 100);
        assert_eq!(e.stats().data_tx(TrafficClass::Beacon), 100);
    }
}
