//! The CSMA/CA MAC engine.
//!
//! # Model
//!
//! - **Carrier sense**: every node tracks `busy_until`, the latest end
//!   time of any transmission it can hear. A node contends only when its
//!   channel is idle.
//! - **Contention**: before each transmission attempt the node waits
//!   DIFS plus a uniform number of backoff slots in `[0, CW]`, with CW
//!   doubling per retry (frame-granular: the whole wait is drawn at once
//!   rather than freezing per-slot counters — at the paper's traffic
//!   loads the difference is statistically invisible, and it keeps event
//!   counts proportional to frames).
//! - **Collisions**: any two frames overlapping in time at a receiver
//!   corrupt each other there (no capture effect). A node that is
//!   transmitting cannot receive (half-duplex).
//! - **Unicast**: a successfully received unicast frame is acknowledged
//!   after SIFS. The ACK occupies the channel around the receiver and is
//!   counted, but is itself delivered reliably — a deliberate
//!   simplification documented in DESIGN.md (the paper's asymmetric
//!   ranges make strict symmetric-link ACKs impossible for
//!   robot-to-sensor hops that the paper itself relies on). Failed
//!   attempts retry up to the 802.11 long-retry limit.
//! - **Broadcast**: transmitted once, never acknowledged, as in 802.11.

use std::collections::HashMap;
use std::collections::VecDeque;

use robonet_des::rng::{Rng, Xoshiro256};
use robonet_des::{NodeId, SimTime};

use crate::frame::Frame;
use crate::medium::Medium;
use crate::params::MacParams;
use crate::stats::TxStats;

/// Events the engine asks the simulation driver to schedule and feed
/// back via [`RadioEngine::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioEvent {
    /// A node's contention wait elapsed; it will transmit if the channel
    /// is still idle.
    TryAccess {
        /// The contending node.
        node: NodeId,
    },
    /// A transmission's air time ended.
    TxEnd {
        /// Transmission id.
        tx: u64,
    },
    /// The abstract ACK for transmission `tx` finished; the sender may
    /// proceed.
    AckDone {
        /// Transmission id being acknowledged.
        tx: u64,
    },
    /// The sender of a unicast frame gave up waiting for an ACK.
    AckTimeout {
        /// The waiting sender.
        node: NodeId,
        /// Generation token guarding against stale timeouts.
        token: u64,
    },
}

/// What the radio layer reports up to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum Upcall<P> {
    /// A frame arrived intact at `to` (for broadcast: one upcall per
    /// receiver).
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The received frame.
        frame: Frame<P>,
    },
    /// The sender finished with a frame: `ok` is `true` on success
    /// (broadcast frames always complete "ok" once sent).
    TxComplete {
        /// The sending node.
        src: NodeId,
        /// The frame that completed.
        frame: Frame<P>,
        /// Whether the frame was delivered (unicast) or sent (broadcast).
        ok: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MacState {
    Idle,
    WaitingAccess,
    Transmitting,
    AwaitAck,
}

#[derive(Debug)]
struct MacNode<P> {
    queue: VecDeque<Frame<P>>,
    state: MacState,
    busy_until: SimTime,
    /// Active transmissions currently arriving at this node.
    incoming: Vec<u64>,
    /// Attempt number (0-based) for the head-of-queue frame.
    attempt: u32,
    /// Generation token for AckTimeout staleness checks.
    token: u64,
}

impl<P> Default for MacNode<P> {
    fn default() -> Self {
        MacNode {
            queue: VecDeque::new(),
            state: MacState::Idle,
            busy_until: SimTime::ZERO,
            incoming: Vec::new(),
            attempt: 0,
            token: 0,
        }
    }
}

struct ActiveTx {
    src: NodeId,
    /// `(receiver, corrupted)` pairs.
    receivers: Vec<(NodeId, bool)>,
}

/// The MAC engine for all nodes sharing one [`Medium`].
///
/// The engine is driven by the simulation loop: [`RadioEngine::send`]
/// enqueues application frames, and every [`RadioEvent`] the engine
/// schedules (through the `sched` callback) must be fed back to
/// [`RadioEngine::handle`] at its due time. Deliveries and completions
/// come out through the `out` buffer.
pub struct RadioEngine<P> {
    params: MacParams,
    medium: Medium,
    nodes: Vec<MacNode<P>>,
    active: HashMap<u64, ActiveTx>,
    /// Sender of each in-flight abstract ACK, keyed by data tx id.
    pending_acks: HashMap<u64, NodeId>,
    rng: Xoshiro256,
    stats: TxStats,
    next_tx: u64,
}

impl<P: Clone> RadioEngine<P> {
    /// Creates an engine over `medium` with `params`, drawing backoff
    /// (and fading, if the medium has a grey zone) randomness from
    /// `rng`.
    pub fn new(medium: Medium, params: MacParams, rng: Xoshiro256) -> Self {
        let n = medium.len();
        RadioEngine {
            params,
            medium,
            nodes: (0..n).map(|_| MacNode::default()).collect(),
            active: HashMap::new(),
            pending_acks: HashMap::new(),
            rng,
            stats: TxStats::new(),
            next_tx: 0,
        }
    }

    /// Immutable access to the medium (positions, classes, liveness).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Moves a node (robots, while travelling).
    pub fn set_position(&mut self, node: NodeId, pos: robonet_geom::Point) {
        self.medium.set_position(node, pos);
    }

    /// Marks a node failed or repaired. Failing a node flushes its MAC
    /// queue and detaches it from any in-flight receptions.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.medium.set_alive(node, alive);
        if !alive {
            let st = &mut self.nodes[node.index()];
            st.queue.clear();
            st.state = MacState::Idle;
            st.attempt = 0;
            st.token += 1;
            // Frames in flight toward this node can no longer be
            // delivered; mark its receiver entries corrupted.
            for tx in std::mem::take(&mut st.incoming) {
                if let Some(active) = self.active.get_mut(&tx) {
                    for r in active.receivers.iter_mut().filter(|r| r.0 == node) {
                        r.1 = true;
                    }
                }
            }
        }
    }

    /// Transmission statistics so far.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// Returns `true` if `node` has nothing queued or in flight.
    pub fn is_idle(&self, node: NodeId) -> bool {
        let st = &self.nodes[node.index()];
        st.state == MacState::Idle && st.queue.is_empty()
    }

    /// Enqueues `frame` for transmission from `frame.src`.
    ///
    /// Silently ignores sends from dead nodes (the application may race
    /// a failure event with a scheduled send).
    pub fn send(
        &mut self,
        now: SimTime,
        frame: Frame<P>,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let src = frame.src;
        if !self.medium.is_alive(src) {
            return;
        }
        self.nodes[src.index()].queue.push_back(frame);
        if self.nodes[src.index()].state == MacState::Idle {
            self.begin_access(now, src, sched);
        }
    }

    /// Processes a radio event previously scheduled through `sched`,
    /// pushing deliveries and completions into `out`.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: RadioEvent,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut Vec<Upcall<P>>,
    ) {
        match event {
            RadioEvent::TryAccess { node } => self.on_try_access(now, node, sched),
            RadioEvent::TxEnd { tx } => self.on_tx_end(now, tx, sched, out),
            RadioEvent::AckDone { tx } => self.on_ack_done(now, tx, sched, out),
            RadioEvent::AckTimeout { node, token } => {
                self.on_ack_timeout(now, node, token, sched, out)
            }
        }
    }

    fn begin_access(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let cw = self
            .params
            .contention_window(self.nodes[node.index()].attempt);
        let slots = self.rng.gen_range(0..=cw);
        let st = &mut self.nodes[node.index()];
        st.state = MacState::WaitingAccess;
        let idle_at = st.busy_until.max(now);
        let at = idle_at + self.params.difs + self.params.slot * u64::from(slots);
        sched(at, RadioEvent::TryAccess { node });
    }

    fn on_try_access(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let st = &self.nodes[node.index()];
        if st.state != MacState::WaitingAccess || !self.medium.is_alive(node) {
            return; // stale event (node died or was reset)
        }
        if st.busy_until > now {
            // Channel became busy during our backoff; re-contend once it
            // frees up.
            self.begin_access(now, node, sched);
            return;
        }
        self.start_tx(now, node, sched);
    }

    fn start_tx(
        &mut self,
        now: SimTime,
        node: NodeId,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let tx = self.next_tx;
        self.next_tx += 1;
        let frame = self.nodes[node.index()]
            .queue
            .front()
            .expect("start_tx with empty queue")
            .clone();
        let duration = self.params.airtime(frame.bytes);
        let end = now + duration;
        self.stats.class_mut(frame.class).data_tx += 1;

        // The sender cannot receive while transmitting: corrupt anything
        // currently arriving at it.
        let incoming = std::mem::take(&mut self.nodes[node.index()].incoming);
        for other in &incoming {
            self.corrupt_at(*other, node);
        }
        self.nodes[node.index()].incoming = incoming;

        let mut receivers: Vec<(NodeId, bool)> = Vec::new();
        let hearers = self.medium.hearers(node);
        for h in hearers {
            // Edge-of-range fading: a weak frame still occupies the
            // channel (carrier sense) but may fail to lock the receiver.
            let p_rx = self.medium.reception_prob(node, h);
            let faded = p_rx < 1.0 && self.rng.next_f64() >= p_rx;
            let hst = &mut self.nodes[h.index()];
            hst.busy_until = hst.busy_until.max(end);
            if faded {
                continue;
            }
            if hst.state == MacState::Transmitting {
                continue; // half-duplex: cannot receive at all
            }
            let collided = !hst.incoming.is_empty();
            if collided {
                self.stats.class_mut(frame.class).collisions += 1;
                let overlapping = hst.incoming.clone();
                for other in overlapping {
                    self.corrupt_at(other, h);
                }
            }
            self.nodes[h.index()].incoming.push(tx);
            receivers.push((h, collided));
        }

        let st = &mut self.nodes[node.index()];
        st.state = MacState::Transmitting;
        st.busy_until = st.busy_until.max(end);
        self.active.insert(
            tx,
            ActiveTx {
                src: node,
                receivers,
            },
        );
        sched(end, RadioEvent::TxEnd { tx });
    }

    fn corrupt_at(&mut self, tx: u64, receiver: NodeId) {
        if let Some(active) = self.active.get_mut(&tx) {
            for r in active.receivers.iter_mut().filter(|r| r.0 == receiver) {
                r.1 = true;
            }
        }
    }

    fn on_tx_end(
        &mut self,
        now: SimTime,
        tx: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut Vec<Upcall<P>>,
    ) {
        let active = self.active.remove(&tx).expect("unknown transmission");
        let src = active.src;
        // Detach from receivers and deliver intact copies.
        let frame = match self.nodes[src.index()].queue.front() {
            Some(f) => f.clone(),
            None => {
                // Sender died mid-transmission and its queue was flushed;
                // nothing to deliver or complete.
                for (h, _) in &active.receivers {
                    self.nodes[h.index()].incoming.retain(|&t| t != tx);
                }
                return;
            }
        };

        let mut dst_received = false;
        let mut any_received = false;
        for &(h, corrupted) in &active.receivers {
            self.nodes[h.index()].incoming.retain(|&t| t != tx);
            if corrupted || !self.medium.is_alive(h) {
                continue;
            }
            any_received = true;
            if frame.dst == Some(h) {
                dst_received = true;
            }
            if frame.dst.is_none() || frame.dst == Some(h) {
                out.push(Upcall::Delivered {
                    to: h,
                    frame: frame.clone(),
                });
            }
        }

        if !self.medium.is_alive(src) {
            // Sender died exactly at tx end; drop silently.
            let st = &mut self.nodes[src.index()];
            st.state = MacState::Idle;
            return;
        }

        match frame.dst {
            None => {
                // Broadcast: done.
                if any_received {
                    self.stats.class_mut(frame.class).delivered += 1;
                }
                self.complete_head(now, src, true, out, sched);
            }
            Some(_) if dst_received => {
                // Abstract ACK: occupies the channel around the receiver
                // for SIFS + ACK air time, then the sender completes.
                let dst = frame.dst.expect("checked above");
                self.stats.class_mut(frame.class).ack_tx += 1;
                let ack_end = now + self.params.sifs + self.params.ack_airtime();
                let dst_hearers = self.medium.hearers(dst);
                for h in dst_hearers {
                    let hst = &mut self.nodes[h.index()];
                    hst.busy_until = hst.busy_until.max(ack_end);
                }
                let sst = &mut self.nodes[src.index()];
                sst.state = MacState::AwaitAck;
                sst.busy_until = sst.busy_until.max(ack_end);
                self.pending_acks.insert(tx, src);
                sched(ack_end, RadioEvent::AckDone { tx });
            }
            Some(_) => {
                // Destination missed the frame (collision, death, or out
                // of range): wait out the ACK timeout, then retry.
                let st = &mut self.nodes[src.index()];
                st.state = MacState::AwaitAck;
                st.token += 1;
                let token = st.token;
                sched(
                    now + self.params.ack_timeout(),
                    RadioEvent::AckTimeout { node: src, token },
                );
            }
        }
    }

    fn on_ack_done(
        &mut self,
        now: SimTime,
        tx: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut Vec<Upcall<P>>,
    ) {
        let Some(src) = self.pending_acks.remove(&tx) else {
            return; // sender died and was flushed
        };
        if !self.medium.is_alive(src) || self.nodes[src.index()].state != MacState::AwaitAck {
            return;
        }
        if let Some(frame) = self.nodes[src.index()].queue.front() {
            self.stats.class_mut(frame.class).delivered += 1;
        }
        self.complete_head(now, src, true, out, sched);
    }

    fn on_ack_timeout(
        &mut self,
        now: SimTime,
        node: NodeId,
        token: u64,
        sched: &mut impl FnMut(SimTime, RadioEvent),
        out: &mut Vec<Upcall<P>>,
    ) {
        let st = &self.nodes[node.index()];
        if st.state != MacState::AwaitAck || st.token != token || !self.medium.is_alive(node) {
            return; // stale timeout
        }
        let attempt = st.attempt + 1;
        if attempt >= self.params.max_attempts {
            if let Some(frame) = self.nodes[node.index()].queue.front() {
                self.stats.class_mut(frame.class).dropped += 1;
            }
            self.complete_head(now, node, false, out, sched);
        } else {
            let st = &mut self.nodes[node.index()];
            st.attempt = attempt;
            self.begin_access(now, node, sched);
        }
    }

    fn complete_head(
        &mut self,
        now: SimTime,
        node: NodeId,
        ok: bool,
        out: &mut Vec<Upcall<P>>,
        sched: &mut impl FnMut(SimTime, RadioEvent),
    ) {
        let st = &mut self.nodes[node.index()];
        let frame = st
            .queue
            .pop_front()
            .expect("complete_head with empty queue");
        st.attempt = 0;
        st.state = MacState::Idle;
        st.token += 1;
        out.push(Upcall::TxComplete {
            src: node,
            frame,
            ok,
        });
        if !self.nodes[node.index()].queue.is_empty() {
            self.begin_access(now, node, sched);
        }
    }
}

impl<P> std::fmt::Debug for RadioEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioEngine")
            .field("nodes", &self.nodes.len())
            .field("active_txs", &self.active.len())
            .field("total_tx", &self.stats.total_tx())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::TrafficClass;
    use crate::medium::{NodeClass, RangeTable};
    use robonet_des::Scheduler;
    use robonet_geom::{Bounds, Point};

    /// Drives the engine until its event queue drains, collecting upcalls.
    fn run(
        engine: &mut RadioEngine<&'static str>,
        sends: Vec<(f64, Frame<&'static str>)>,
    ) -> Vec<(SimTime, Upcall<&'static str>)> {
        #[derive(Debug)]
        enum Ev {
            Send(Frame<&'static str>),
            Radio(RadioEvent),
        }
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for (t, f) in sends {
            sched.schedule_at(SimTime::from_secs(t), Ev::Send(f));
        }
        let mut upcalls = Vec::new();
        let mut buffer = Vec::new();
        while let Some(ev) = sched.next_event() {
            let now = sched.now();
            let mut pending: Vec<(SimTime, RadioEvent)> = Vec::new();
            {
                let mut cb = |at: SimTime, e: RadioEvent| pending.push((at, e));
                match ev {
                    Ev::Send(f) => engine.send(now, f, &mut cb),
                    Ev::Radio(r) => engine.handle(now, r, &mut cb, &mut buffer),
                }
            }
            for (at, e) in pending {
                sched.schedule_at(at, Ev::Radio(e));
            }
            for u in buffer.drain(..) {
                upcalls.push((now, u));
            }
        }
        upcalls
    }

    fn line_engine(positions: &[(f64, f64)], classes: &[NodeClass]) -> RadioEngine<&'static str> {
        line_engine_seeded(positions, classes, 7)
    }

    fn line_engine_seeded(
        positions: &[(f64, f64)],
        classes: &[NodeClass],
        seed: u64,
    ) -> RadioEngine<&'static str> {
        let pts: Vec<Point> = positions.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let medium = Medium::new(Bounds::square(2000.0), RangeTable::default(), &pts, classes);
        RadioEngine::new(
            medium,
            MacParams::default(),
            Xoshiro256::seed_from_u64(seed),
        )
    }

    /// Finds a seed for which the two hidden-terminal senders' backoff
    /// draws overlap (used by the collision tests so they stay
    /// meaningful under any PRNG implementation).
    fn colliding_seed() -> u64 {
        for seed in 0..256 {
            let mut e = line_engine_seeded(
                &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
                &[NodeClass::Sensor; 3],
                seed,
            );
            run(
                &mut e,
                vec![
                    (0.0, frame(0, None, TrafficClass::Beacon)),
                    (0.0, frame(1, None, TrafficClass::Beacon)),
                ],
            );
            if e.stats().class(TrafficClass::Beacon).collisions > 0 {
                return seed;
            }
        }
        panic!("no colliding seed in 0..256 — backoff model changed?");
    }

    fn frame(src: u32, dst: Option<u32>, class: TrafficClass) -> Frame<&'static str> {
        Frame {
            src: NodeId::new(src),
            dst: dst.map(NodeId::new),
            bytes: 64,
            class,
            payload: "p",
        }
    }

    #[test]
    fn broadcast_reaches_all_in_range() {
        let mut e = line_engine(
            &[(0.0, 0.0), (50.0, 0.0), (60.0, 0.0), (500.0, 0.0)],
            &[NodeClass::Sensor; 4],
        );
        let ups = run(&mut e, vec![(0.0, frame(0, None, TrafficClass::Beacon))]);
        let delivered: Vec<u32> = ups
            .iter()
            .filter_map(|(_, u)| match u {
                Upcall::Delivered { to, .. } => Some(to.as_u32()),
                _ => None,
            })
            .collect();
        assert_eq!(
            delivered,
            vec![1, 2],
            "nodes within 63 m hear, 500 m does not"
        );
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
        assert_eq!(e.stats().data_tx(TrafficClass::Beacon), 1);
        assert_eq!(
            e.stats().class(TrafficClass::Beacon).ack_tx,
            0,
            "no ACK for broadcast"
        );
    }

    #[test]
    fn unicast_delivers_and_acks() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::FailureReport))],
        );
        assert!(ups.iter().any(|(_, u)| matches!(
            u,
            Upcall::Delivered { to, .. } if to.as_u32() == 1
        )));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.data_tx, 1);
        assert_eq!(s.ack_tx, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn unicast_out_of_range_retries_then_drops() {
        let mut e = line_engine(&[(0.0, 0.0), (200.0, 0.0)], &[NodeClass::Sensor; 2]);
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::FailureReport))],
        );
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: false, .. })));
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.data_tx, u64::from(MacParams::default().max_attempts));
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivered, 0);
    }

    #[test]
    fn asymmetric_range_robot_reaches_far_sensor() {
        let mut e = line_engine(
            &[(0.0, 0.0), (200.0, 0.0)],
            &[NodeClass::Robot, NodeClass::Sensor],
        );
        // Robot → sensor at 200 m succeeds (250 m range) even though the
        // sensor could not reply with data at that distance.
        let ups = run(
            &mut e,
            vec![(0.0, frame(0, Some(1), TrafficClass::RepairRequest))],
        );
        assert!(ups.iter().any(|(_, u)| matches!(
            u,
            Upcall::Delivered { to, .. } if to.as_u32() == 1
        )));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. })));
    }

    #[test]
    fn queue_drains_in_order() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        let mut f1 = frame(0, Some(1), TrafficClass::FailureReport);
        f1.payload = "first";
        let mut f2 = frame(0, Some(1), TrafficClass::FailureReport);
        f2.payload = "second";
        let ups = run(&mut e, vec![(0.0, f1), (0.0, f2)]);
        let delivered: Vec<&str> = ups
            .iter()
            .filter_map(|(_, u)| match u {
                Upcall::Delivered { frame, .. } => Some(frame.payload),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec!["first", "second"]);
        assert_eq!(e.stats().class(TrafficClass::FailureReport).delivered, 2);
    }

    #[test]
    fn simultaneous_senders_defer_not_collide() {
        // Two senders in range of each other contend; the second hears
        // the first and defers, so both broadcasts deliver.
        let mut e = line_engine(
            &[(0.0, 0.0), (30.0, 0.0), (15.0, 10.0)],
            &[NodeClass::Sensor; 3],
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, None, TrafficClass::Beacon)),
                (0.0, frame(1, None, TrafficClass::Beacon)),
            ],
        );
        let delivered_to_2 = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::Delivered { to, .. } if to.as_u32() == 2))
            .count();
        // Node 2 hears both beacons (senders deferred to each other, with
        // high probability under different backoff draws).
        assert_eq!(delivered_to_2, 2);
        assert_eq!(e.stats().class(TrafficClass::Beacon).collisions, 0);
    }

    #[test]
    fn hidden_terminals_collide_at_receiver() {
        // Senders at 0 and 120 cannot hear each other (63 m range) but
        // both reach the middle node at 60: a classic hidden-terminal
        // collision corrupting both frames.
        let mut e = line_engine_seeded(
            &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
            &[NodeClass::Sensor; 3],
            colliding_seed(),
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, None, TrafficClass::Beacon)),
                (0.0, frame(1, None, TrafficClass::Beacon)),
            ],
        );
        let delivered_to_2 = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::Delivered { to, .. } if to.as_u32() == 2))
            .count();
        // Both senders draw their backoff independently; the frames can
        // only avoid collision if their airtimes do not overlap at all.
        // With identical send times, same CW and 238 µs airtime over a
        // 620 µs contention spread, overlap is likely but not certain —
        // assert the *accounting* is consistent rather than the outcome.
        let collisions = e.stats().class(TrafficClass::Beacon).collisions;
        assert_eq!(
            delivered_to_2 == 2,
            collisions == 0,
            "either both delivered cleanly or a collision was recorded"
        );
        // With this seed the backoffs do overlap.
        assert!(collisions > 0, "seed chosen to exhibit the collision");
        assert_eq!(delivered_to_2, 0, "corrupted frames are not delivered");
    }

    #[test]
    fn unicast_retry_succeeds_after_collision() {
        // Hidden terminals with unicast: the data frames collide at the
        // receiver, but retransmissions (new backoff draws) eventually
        // get through — delivery ratio stays 100% as the paper observes.
        let mut e = line_engine_seeded(
            &[(0.0, 0.0), (120.0, 0.0), (60.0, 0.0)],
            &[NodeClass::Sensor; 3],
            colliding_seed(),
        );
        let ups = run(
            &mut e,
            vec![
                (0.0, frame(0, Some(2), TrafficClass::FailureReport)),
                (0.0, frame(1, Some(2), TrafficClass::FailureReport)),
            ],
        );
        let ok = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::TxComplete { ok: true, .. }))
            .count();
        assert_eq!(ok, 2, "both unicasts eventually delivered");
        let s = e.stats().class(TrafficClass::FailureReport);
        assert_eq!(s.delivered, 2);
        assert!(s.data_tx > 2, "retransmissions happened");
    }

    #[test]
    fn dead_receiver_gets_nothing() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(1), false);
        let ups = run(&mut e, vec![(0.0, frame(0, Some(1), TrafficClass::Beacon))]);
        assert!(!ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Delivered { .. })));
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::TxComplete { ok: false, .. })));
    }

    #[test]
    fn dead_sender_send_ignored() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(0), false);
        let ups = run(&mut e, vec![(0.0, frame(0, None, TrafficClass::Beacon))]);
        assert!(ups.is_empty());
        assert_eq!(e.stats().total_tx(), 0);
        assert!(e.is_idle(NodeId::new(0)));
    }

    #[test]
    fn revived_node_participates_again() {
        let mut e = line_engine(&[(0.0, 0.0), (40.0, 0.0)], &[NodeClass::Sensor; 2]);
        e.set_alive(NodeId::new(1), false);
        e.set_alive(NodeId::new(1), true);
        let ups = run(&mut e, vec![(0.0, frame(0, Some(1), TrafficClass::Beacon))]);
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Delivered { .. })));
    }

    #[test]
    fn throughput_many_beacons_all_complete() {
        // 20 sensors in a cluster, each beaconing 5 times: every beacon
        // transmission completes and the channel never deadlocks.
        let positions: Vec<(f64, f64)> = (0..20)
            .map(|i| ((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
            .collect();
        let mut e = line_engine(&positions, &[NodeClass::Sensor; 20]);
        let mut sends = Vec::new();
        for round in 0..5 {
            for i in 0..20u32 {
                sends.push((round as f64 * 10.0, frame(i, None, TrafficClass::Beacon)));
            }
        }
        let ups = run(&mut e, sends);
        let completes = ups
            .iter()
            .filter(|(_, u)| matches!(u, Upcall::TxComplete { .. }))
            .count();
        assert_eq!(completes, 100);
        assert_eq!(e.stats().data_tx(TrafficClass::Beacon), 100);
    }
}
