//! MAC and PHY timing parameters.

use robonet_des::SimDuration;

/// IEEE 802.11(b)-style MAC parameters.
///
/// Defaults follow the paper's setup (§4.1: "the link layer uses IEEE
/// 802.11, and the radio model has a nominal bit-rate of 11 Mbps") with
/// standard 802.11b DSSS timing constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParams {
    /// Nominal channel bit-rate in bits per second (11 Mbps).
    pub bitrate_bps: u64,
    /// Backoff slot time (20 µs for 802.11b).
    pub slot: SimDuration,
    /// Short inter-frame space, data→ACK gap (10 µs).
    pub sifs: SimDuration,
    /// Distributed inter-frame space before contention (50 µs).
    pub difs: SimDuration,
    /// PHY preamble + PLCP header time prepended to every frame (192 µs
    /// long preamble).
    pub phy_overhead: SimDuration,
    /// Minimum contention window (slots); backoff is uniform in
    /// `[0, cw]`.
    pub cw_min: u32,
    /// Maximum contention window (slots) after exponential growth.
    pub cw_max: u32,
    /// Maximum transmission attempts for a unicast frame before it is
    /// dropped (7, the 802.11 long-retry limit).
    pub max_attempts: u32,
    /// ACK frame size in bytes (14).
    pub ack_bytes: u32,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            bitrate_bps: 11_000_000,
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            phy_overhead: SimDuration::from_micros(192),
            cw_min: 31,
            cw_max: 1023,
            max_attempts: 7,
            ack_bytes: 14,
        }
    }
}

impl MacParams {
    /// Air time of a frame of `bytes` payload-plus-header bytes,
    /// including PHY overhead.
    ///
    /// ```
    /// use robonet_radio::MacParams;
    /// let p = MacParams::default();
    /// // 1375 bytes = 11000 bits = 1 ms of payload at 11 Mbps, plus the
    /// // 192 µs preamble.
    /// assert_eq!(p.airtime(1375).as_nanos(), 1_192_000);
    /// ```
    pub fn airtime(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        // Round up to whole nanoseconds.
        let nanos = (bits * 1_000_000_000).div_ceil(self.bitrate_bps);
        self.phy_overhead + SimDuration::from_nanos(nanos)
    }

    /// Air time of an ACK frame.
    pub fn ack_airtime(&self) -> SimDuration {
        self.airtime(self.ack_bytes)
    }

    /// Contention window for the given (0-based) attempt number:
    /// `cw_min` doubling per retry, capped at `cw_max`.
    pub fn contention_window(&self, attempt: u32) -> u32 {
        let mut cw = self.cw_min;
        for _ in 0..attempt {
            cw = ((cw + 1) * 2 - 1).min(self.cw_max);
            if cw == self.cw_max {
                break;
            }
        }
        cw
    }

    /// How long a sender waits for an ACK before declaring the attempt
    /// failed: SIFS + ACK air time + one slot of margin.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_scales_with_bytes() {
        let p = MacParams::default();
        // 1375 bytes = 11000 bits = exactly 1 ms at 11 Mbps.
        let t = p.airtime(1375);
        assert_eq!(
            t.as_nanos(),
            p.phy_overhead.as_nanos() + 1_000_000,
            "1375 B should be 1 ms of payload time"
        );
        assert!(p.airtime(100) < p.airtime(200));
        assert_eq!(
            p.airtime(0),
            p.phy_overhead,
            "zero payload still costs preamble"
        );
    }

    #[test]
    fn contention_window_doubles_and_caps() {
        let p = MacParams::default();
        assert_eq!(p.contention_window(0), 31);
        assert_eq!(p.contention_window(1), 63);
        assert_eq!(p.contention_window(2), 127);
        assert_eq!(p.contention_window(5), 1023);
        assert_eq!(p.contention_window(50), 1023, "capped");
    }

    #[test]
    fn ack_timeout_covers_ack() {
        let p = MacParams::default();
        assert!(p.ack_timeout() > p.sifs + p.ack_airtime());
    }

    #[test]
    fn defaults_match_80211b() {
        let p = MacParams::default();
        assert_eq!(p.bitrate_bps, 11_000_000);
        assert_eq!(p.slot, SimDuration::from_micros(20));
        assert_eq!(p.max_attempts, 7);
    }
}
