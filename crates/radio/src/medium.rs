//! The shared wireless medium: node positions, classes and reachability.

use robonet_des::NodeId;
use robonet_geom::spatial::GridIndex;
use robonet_geom::{Bounds, Point};

/// The hardware class of a node, which fixes its transmission range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A static sensor (63 m range in the paper, to save power).
    Sensor,
    /// A mobile maintenance robot (250 m range).
    Robot,
    /// The static central manager of the centralized algorithm (250 m
    /// range, same radio as a robot).
    Manager,
}

/// Per-class transmission ranges in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeTable {
    /// Sensor transmission range (paper: 63 m).
    pub sensor: f64,
    /// Robot transmission range (paper: 250 m).
    pub robot: f64,
    /// Manager transmission range (paper: 250 m).
    pub manager: f64,
}

impl Default for RangeTable {
    fn default() -> Self {
        RangeTable {
            sensor: 63.0,
            robot: 250.0,
            manager: 250.0,
        }
    }
}

impl RangeTable {
    /// Range for a node class.
    pub fn range(&self, class: NodeClass) -> f64 {
        match class {
            NodeClass::Sensor => self.sensor,
            NodeClass::Robot => self.robot,
            NodeClass::Manager => self.manager,
        }
    }

    /// The largest range in the table (used to size spatial-index cells).
    pub fn max_range(&self) -> f64 {
        self.sensor.max(self.robot).max(self.manager)
    }
}

/// Reception model at the edge of the transmission range.
///
/// The paper's Glomosim setup is effectively a fixed-range disk; real
/// radios have a probabilistic grey zone. Both are supported so the
/// sensitivity of the results to the disk idealisation can be measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// Deterministic unit disk (the default; matches the paper).
    None,
    /// Reception is certain within `inner × range` and falls off
    /// linearly to zero probability at the full range.
    SmoothEdge {
        /// Fraction of the range that is perfectly reliable, in
        /// `[0, 1]`.
        inner: f64,
    },
}

impl Fading {
    /// Probability that a frame sent over `distance` with the given
    /// `range` is received (interference aside).
    pub fn reception_prob(self, distance: f64, range: f64) -> f64 {
        if distance > range {
            return 0.0;
        }
        match self {
            Fading::None => 1.0,
            Fading::SmoothEdge { inner } => {
                let reliable = inner.clamp(0.0, 1.0) * range;
                if distance <= reliable {
                    1.0
                } else {
                    ((range - distance) / (range - reliable)).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// The unit-disk medium: every node within the *sender's* range hears a
/// transmission. Ranges are asymmetric between classes exactly as in the
/// paper (a sensor hears a robot at 250 m, the robot hears that sensor
/// only within 63 m).
#[derive(Debug)]
pub struct Medium {
    index: GridIndex,
    classes: Vec<NodeClass>,
    alive: Vec<bool>,
    ranges: RangeTable,
    fading: Fading,
}

impl Medium {
    /// Creates a medium for nodes at `positions` with matching `classes`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or any point lies
    /// outside `bounds`.
    pub fn new(
        bounds: Bounds,
        ranges: RangeTable,
        positions: &[Point],
        classes: &[NodeClass],
    ) -> Self {
        assert_eq!(
            positions.len(),
            classes.len(),
            "positions and classes must pair up"
        );
        // Cell size near the *smallest* interesting radius keeps sensor
        // queries (the overwhelming majority) cheap.
        let cell = ranges.range(NodeClass::Sensor).max(1.0);
        Medium {
            index: GridIndex::build(bounds, cell, positions),
            alive: vec![true; positions.len()],
            classes: classes.to_vec(),
            ranges,
            fading: Fading::None,
        }
    }

    /// Sets the edge-of-range reception model (builder style).
    pub fn with_fading(mut self, fading: Fading) -> Self {
        self.fading = fading;
        self
    }

    /// The configured fading model.
    pub fn fading(&self) -> Fading {
        self.fading
    }

    /// Probability that `dst` receives a frame from `src` at their
    /// current positions (interference aside).
    pub fn reception_prob(&self, src: NodeId, dst: NodeId) -> f64 {
        let d = self.position(src).distance(self.position(dst));
        self.fading.reception_prob(d, self.tx_range(src))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.index.position(node.index())
    }

    /// Moves `node` (robots move while maintaining the network).
    pub fn set_position(&mut self, node: NodeId, pos: Point) {
        self.index.update_position(node.index(), pos);
    }

    /// Class of `node`.
    pub fn class(&self, node: NodeId) -> NodeClass {
        self.classes[node.index()]
    }

    /// Transmission range of `node` in metres.
    pub fn tx_range(&self, node: NodeId) -> f64 {
        self.ranges.range(self.classes[node.index()])
    }

    /// The range table.
    pub fn ranges(&self) -> RangeTable {
        self.ranges
    }

    /// Whether `node` is currently alive. Dead sensors neither transmit
    /// nor receive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Marks `node` failed or repaired.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
    }

    /// Calls `visit` for every *alive* node (other than the sender) that
    /// hears a transmission from `src` at its current position.
    pub fn for_each_hearer(&self, src: NodeId, mut visit: impl FnMut(NodeId)) {
        let pos = self.position(src);
        let range = self.tx_range(src);
        self.index.for_each_within(pos, range, |i| {
            if i != src.index() && self.alive[i] {
                visit(NodeId::new(i as u32));
            }
        });
    }

    /// Collects the alive hearers of `src` (see [`Medium::for_each_hearer`]).
    pub fn hearers(&self, src: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_hearer(src, |n| out.push(n));
        out
    }

    /// Returns `true` if `dst` is within `src`'s transmission range
    /// (ignores liveness).
    pub fn in_range(&self, src: NodeId, dst: NodeId) -> bool {
        self.position(src).distance(self.position(dst)) <= self.tx_range(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        // s0 --- s1 --- r2 laid out on a line; sensor range 63, robot 250.
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(200.0, 0.0),
        ];
        let classes = [NodeClass::Sensor, NodeClass::Sensor, NodeClass::Robot];
        Medium::new(
            Bounds::square(1000.0),
            RangeTable::default(),
            &positions,
            &classes,
        )
    }

    #[test]
    fn asymmetric_ranges() {
        let m = medium();
        let s0 = NodeId::new(0);
        let s1 = NodeId::new(1);
        let r2 = NodeId::new(2);
        // Robot reaches both sensors (250 m), sensors cannot reach it.
        assert!(m.in_range(r2, s0));
        assert!(m.in_range(r2, s1));
        assert!(!m.in_range(s0, r2));
        assert!(!m.in_range(s1, r2), "150 m > 63 m sensor range");
        assert!(m.in_range(s0, s1));
        assert_eq!(m.hearers(r2), vec![s0, s1]);
        assert_eq!(m.hearers(s0), vec![s1]);
    }

    #[test]
    fn dead_nodes_do_not_hear() {
        let mut m = medium();
        m.set_alive(NodeId::new(1), false);
        assert!(m.hearers(NodeId::new(0)).is_empty());
        m.set_alive(NodeId::new(1), true);
        assert_eq!(m.hearers(NodeId::new(0)), vec![NodeId::new(1)]);
    }

    #[test]
    fn moving_a_node_changes_reachability() {
        let mut m = medium();
        let s0 = NodeId::new(0);
        let r2 = NodeId::new(2);
        m.set_position(r2, Point::new(500.0, 0.0));
        assert!(!m.in_range(r2, s0));
        assert_eq!(m.position(r2), Point::new(500.0, 0.0));
        m.set_position(r2, Point::new(40.0, 0.0));
        assert!(m.in_range(s0, r2), "robot moved into sensor range");
    }

    #[test]
    fn fading_models() {
        assert_eq!(Fading::None.reception_prob(62.9, 63.0), 1.0);
        assert_eq!(Fading::None.reception_prob(63.1, 63.0), 0.0);
        let f = Fading::SmoothEdge { inner: 0.5 };
        assert_eq!(f.reception_prob(30.0, 63.0), 1.0, "inside reliable core");
        assert_eq!(f.reception_prob(63.0, 63.0), 0.0, "zero at the edge");
        let mid = f.reception_prob(47.25, 63.0);
        assert!((mid - 0.5).abs() < 1e-9, "linear middle: {mid}");
        assert_eq!(f.reception_prob(100.0, 63.0), 0.0);
    }

    #[test]
    fn medium_reception_prob_uses_positions() {
        let m = medium().with_fading(Fading::SmoothEdge { inner: 0.5 });
        // s0 to s1 at 50 m of 63 m: inside the grey zone.
        let p = m.reception_prob(NodeId::new(0), NodeId::new(1));
        assert!(p > 0.0 && p < 1.0, "grey zone probability {p}");
        assert_eq!(m.fading(), Fading::SmoothEdge { inner: 0.5 });
    }

    #[test]
    fn class_and_range_lookup() {
        let m = medium();
        assert_eq!(m.class(NodeId::new(0)), NodeClass::Sensor);
        assert_eq!(m.class(NodeId::new(2)), NodeClass::Robot);
        assert_eq!(m.tx_range(NodeId::new(0)), 63.0);
        assert_eq!(m.tx_range(NodeId::new(2)), 250.0);
        assert_eq!(m.ranges().max_range(), 250.0);
        assert_eq!(m.len(), 3);
    }
}
