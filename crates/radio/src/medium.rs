//! The shared wireless medium: node positions, classes and reachability.

use robonet_des::NodeId;
use robonet_geom::spatial::GridIndex;
use robonet_geom::{Bounds, Point};

/// The hardware class of a node, which fixes its transmission range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A static sensor (63 m range in the paper, to save power).
    Sensor,
    /// A mobile maintenance robot (250 m range).
    Robot,
    /// The static central manager of the centralized algorithm (250 m
    /// range, same radio as a robot).
    Manager,
}

/// Per-class transmission ranges in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeTable {
    /// Sensor transmission range (paper: 63 m).
    pub sensor: f64,
    /// Robot transmission range (paper: 250 m).
    pub robot: f64,
    /// Manager transmission range (paper: 250 m).
    pub manager: f64,
}

impl Default for RangeTable {
    fn default() -> Self {
        RangeTable {
            sensor: 63.0,
            robot: 250.0,
            manager: 250.0,
        }
    }
}

impl RangeTable {
    /// Range for a node class.
    pub fn range(&self, class: NodeClass) -> f64 {
        match class {
            NodeClass::Sensor => self.sensor,
            NodeClass::Robot => self.robot,
            NodeClass::Manager => self.manager,
        }
    }

    /// The largest range in the table (used to size spatial-index cells).
    pub fn max_range(&self) -> f64 {
        self.sensor.max(self.robot).max(self.manager)
    }
}

/// Reception model at the edge of the transmission range.
///
/// The paper's Glomosim setup is effectively a fixed-range disk; real
/// radios have a probabilistic grey zone. Both are supported so the
/// sensitivity of the results to the disk idealisation can be measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// Deterministic unit disk (the default; matches the paper).
    None,
    /// Reception is certain within `inner × range` and falls off
    /// linearly to zero probability at the full range.
    SmoothEdge {
        /// Fraction of the range that is perfectly reliable, in
        /// `[0, 1]`.
        inner: f64,
    },
}

impl Fading {
    /// Probability that a frame sent over `distance` with the given
    /// `range` is received (interference aside).
    pub fn reception_prob(self, distance: f64, range: f64) -> f64 {
        if distance > range {
            return 0.0;
        }
        match self {
            Fading::None => 1.0,
            Fading::SmoothEdge { inner } => {
                let reliable = inner.clamp(0.0, 1.0) * range;
                if distance <= reliable {
                    1.0
                } else {
                    ((range - distance) / (range - reliable)).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// Precomputed hearer adjacency for static (non-robot) transmitters.
///
/// Sensors and the manager never move, so the static nodes inside each
/// one's transmission disc are fixed at build time; only the robots need
/// distance checks per query. The lists are grouped by grid bucket in
/// the exact scan order of [`GridIndex::for_each_within`], so robots can
/// be merged back at their true scan positions and the visit order —
/// which downstream consumers' RNG draws depend on — is preserved
/// bit-for-bit.
#[derive(Debug, Clone)]
struct StaticHearers {
    /// First node index of the contiguous robot id block.
    robot_lo: usize,
    /// One past the last robot id.
    robot_hi: usize,
    /// Per-source start into `counts` (`len + 1` entries).
    counts_start: Vec<u32>,
    /// Static in-range hearers per visited bucket, in bucket scan order.
    counts: Vec<u16>,
    /// Per-source start into `ids` (`len + 1` entries).
    ids_start: Vec<u32>,
    /// Static in-range hearer ids, grouped by bucket, ascending within
    /// each bucket (matching the grid's resident order).
    ids: Vec<u32>,
}

impl StaticHearers {
    /// Builds the adjacency, or `None` when the robot ids are not one
    /// contiguous block (the tail-of-bucket merge relies on that).
    fn build(
        index: &GridIndex,
        classes: &[NodeClass],
        ranges: &RangeTable,
        positions: &[Point],
    ) -> Option<StaticHearers> {
        let robot_lo = classes
            .iter()
            .position(|&c| c == NodeClass::Robot)
            .unwrap_or(classes.len());
        let robot_hi = classes
            .iter()
            .rposition(|&c| c == NodeClass::Robot)
            .map_or(robot_lo, |i| i + 1);
        if classes[robot_lo..robot_hi]
            .iter()
            .any(|&c| c != NodeClass::Robot)
        {
            return None;
        }
        let mut cache = StaticHearers {
            robot_lo,
            robot_hi,
            counts_start: Vec::with_capacity(classes.len() + 1),
            counts: Vec::new(),
            ids_start: Vec::with_capacity(classes.len() + 1),
            ids: Vec::new(),
        };
        for (i, &class) in classes.iter().enumerate() {
            cache.counts_start.push(cache.counts.len() as u32);
            cache.ids_start.push(cache.ids.len() as u32);
            if class == NodeClass::Robot {
                continue;
            }
            let pos = positions[i];
            let r = ranges.range(class);
            let r_sq = r * r;
            index.for_each_bucket_within(pos, r, |residents, _movers| {
                let mut n = 0u16;
                for &(j, p) in residents {
                    let j = j as usize;
                    if j != i && !(robot_lo..robot_hi).contains(&j) && p.distance_sq(pos) <= r_sq {
                        cache.ids.push(j as u32);
                        n += 1;
                    }
                }
                cache.counts.push(n);
            });
        }
        cache.counts_start.push(cache.counts.len() as u32);
        cache.ids_start.push(cache.ids.len() as u32);
        Some(cache)
    }
}

/// The unit-disk medium: every node within the *sender's* range hears a
/// transmission. Ranges are asymmetric between classes exactly as in the
/// paper (a sensor hears a robot at 250 m, the robot hears that sensor
/// only within 63 m).
#[derive(Debug, Clone)]
pub struct Medium {
    index: GridIndex,
    classes: Vec<NodeClass>,
    alive: Vec<bool>,
    ranges: RangeTable,
    fading: Fading,
    /// Fast path for static transmitters; dropped (fall back to plain
    /// grid queries) if a non-robot node is ever actually moved.
    static_hearers: Option<StaticHearers>,
    /// How many robots currently occupy each grid bucket. Most
    /// transmissions have no robot anywhere in their scan window, and a
    /// zero across the window lets `for_each_hearer` emit the
    /// precomputed static list without touching the grid's buckets.
    robot_buckets: Vec<u32>,
}

impl Medium {
    /// Creates a medium for nodes at `positions` with matching `classes`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or any point lies
    /// outside `bounds`.
    pub fn new(
        bounds: Bounds,
        ranges: RangeTable,
        positions: &[Point],
        classes: &[NodeClass],
    ) -> Self {
        assert_eq!(
            positions.len(),
            classes.len(),
            "positions and classes must pair up"
        );
        // Cell size near the *smallest* interesting radius keeps sensor
        // queries (the overwhelming majority) cheap.
        let cell = ranges.range(NodeClass::Sensor).max(1.0);
        let index = GridIndex::build(bounds, cell, positions);
        let static_hearers = StaticHearers::build(&index, classes, &ranges, positions);
        let mut robot_buckets = vec![0u32; index.bucket_count()];
        for (i, &c) in classes.iter().enumerate() {
            if c == NodeClass::Robot {
                robot_buckets[index.bucket_index(positions[i])] += 1;
            }
        }
        Medium {
            index,
            alive: vec![true; positions.len()],
            classes: classes.to_vec(),
            ranges,
            fading: Fading::None,
            static_hearers,
            robot_buckets,
        }
    }

    /// Sets the edge-of-range reception model (builder style).
    pub fn with_fading(mut self, fading: Fading) -> Self {
        self.fading = fading;
        self
    }

    /// The configured fading model.
    pub fn fading(&self) -> Fading {
        self.fading
    }

    /// Probability that `dst` receives a frame from `src` at their
    /// current positions (interference aside).
    pub fn reception_prob(&self, src: NodeId, dst: NodeId) -> f64 {
        let d = self.position(src).distance(self.position(dst));
        self.fading.reception_prob(d, self.tx_range(src))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.index.position(node.index())
    }

    /// Moves `node` (robots move while maintaining the network).
    pub fn set_position(&mut self, node: NodeId, pos: Point) {
        if self.classes[node.index()] == NodeClass::Robot {
            let from = self.index.bucket_index(self.index.position(node.index()));
            let to = self.index.bucket_index(pos);
            if from != to {
                self.robot_buckets[from] -= 1;
                self.robot_buckets[to] += 1;
            }
        } else if self.static_hearers.is_some() && self.index.position(node.index()) != pos {
            // A supposedly static node moved: the precomputed adjacency
            // no longer describes the topology, so drop it for good.
            self.static_hearers = None;
        }
        self.index.update_position(node.index(), pos);
    }

    /// Class of `node`.
    pub fn class(&self, node: NodeId) -> NodeClass {
        self.classes[node.index()]
    }

    /// Transmission range of `node` in metres.
    pub fn tx_range(&self, node: NodeId) -> f64 {
        self.ranges.range(self.classes[node.index()])
    }

    /// The range table.
    pub fn ranges(&self) -> RangeTable {
        self.ranges
    }

    /// Whether `node` is currently alive. Dead sensors neither transmit
    /// nor receive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Marks `node` failed or repaired.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
    }

    /// Calls `visit` for every *alive* node (other than the sender) that
    /// hears a transmission from `src` at its current position.
    ///
    /// Static transmitters take the precomputed-adjacency fast path:
    /// their static hearers were distance-filtered at build time, so the
    /// scan only touches the candidate ids plus the (few) robots — while
    /// reproducing the plain grid query's visit order exactly.
    pub fn for_each_hearer(&self, src: NodeId, mut visit: impl FnMut(NodeId)) {
        let pos = self.position(src);
        let range = self.tx_range(src);
        let si = src.index();
        if let Some(c) = &self.static_hearers {
            if self.classes[si] != NodeClass::Robot {
                if !self
                    .index
                    .any_bucket_within(pos, range, |b| self.robot_buckets[b] > 0)
                {
                    // No robot anywhere in the scan window: the hearer
                    // set is exactly the precomputed static list, in
                    // scan order, filtered by liveness.
                    let lo = c.ids_start[si] as usize;
                    let hi = c.ids_start[si + 1] as usize;
                    for &id in &c.ids[lo..hi] {
                        if self.alive[id as usize] {
                            visit(NodeId::new(id));
                        }
                    }
                    return;
                }
                let r_sq = range * range;
                let mut ci = c.counts_start[si] as usize;
                let mut gi = c.ids_start[si] as usize;
                self.index
                    .for_each_bucket_within(pos, range, |residents, movers| {
                        let n = c.counts[ci] as usize;
                        ci += 1;
                        let group = &c.ids[gi..gi + n];
                        gi += n;
                        // Bucket residents are sorted ascending by id, so the
                        // true scan order is: static nodes below the robot
                        // block, robot residents, static nodes above it
                        // (the manager), then moved robots in arrival order.
                        let mut g = 0;
                        while g < n && (group[g] as usize) < c.robot_lo {
                            let id = group[g] as usize;
                            g += 1;
                            if self.alive[id] {
                                visit(NodeId::new(id as u32));
                            }
                        }
                        if let Some(&(last, _)) = residents.last() {
                            if (last as usize) >= c.robot_lo {
                                let p0 =
                                    residents.partition_point(|&(j, _)| (j as usize) < c.robot_lo);
                                for &(j, p) in &residents[p0..] {
                                    let j = j as usize;
                                    if j >= c.robot_hi {
                                        break;
                                    }
                                    if self.alive[j] && p.distance_sq(pos) <= r_sq {
                                        visit(NodeId::new(j as u32));
                                    }
                                }
                            }
                        }
                        while g < n {
                            let id = group[g] as usize;
                            g += 1;
                            if self.alive[id] {
                                visit(NodeId::new(id as u32));
                            }
                        }
                        for &(j, p) in movers {
                            let j = j as usize;
                            if self.alive[j] && p.distance_sq(pos) <= r_sq {
                                visit(NodeId::new(j as u32));
                            }
                        }
                    });
                return;
            }
        }
        self.index.for_each_within(pos, range, |i| {
            if i != si && self.alive[i] {
                visit(NodeId::new(i as u32));
            }
        });
    }

    /// Collects the alive hearers of `src` (see [`Medium::for_each_hearer`]).
    pub fn hearers(&self, src: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_hearer(src, |n| out.push(n));
        out
    }

    /// Returns `true` if `dst` is within `src`'s transmission range
    /// (ignores liveness).
    pub fn in_range(&self, src: NodeId, dst: NodeId) -> bool {
        self.position(src).distance(self.position(dst)) <= self.tx_range(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        // s0 --- s1 --- r2 laid out on a line; sensor range 63, robot 250.
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(200.0, 0.0),
        ];
        let classes = [NodeClass::Sensor, NodeClass::Sensor, NodeClass::Robot];
        Medium::new(
            Bounds::square(1000.0),
            RangeTable::default(),
            &positions,
            &classes,
        )
    }

    #[test]
    fn asymmetric_ranges() {
        let m = medium();
        let s0 = NodeId::new(0);
        let s1 = NodeId::new(1);
        let r2 = NodeId::new(2);
        // Robot reaches both sensors (250 m), sensors cannot reach it.
        assert!(m.in_range(r2, s0));
        assert!(m.in_range(r2, s1));
        assert!(!m.in_range(s0, r2));
        assert!(!m.in_range(s1, r2), "150 m > 63 m sensor range");
        assert!(m.in_range(s0, s1));
        assert_eq!(m.hearers(r2), vec![s0, s1]);
        assert_eq!(m.hearers(s0), vec![s1]);
    }

    #[test]
    fn dead_nodes_do_not_hear() {
        let mut m = medium();
        m.set_alive(NodeId::new(1), false);
        assert!(m.hearers(NodeId::new(0)).is_empty());
        m.set_alive(NodeId::new(1), true);
        assert_eq!(m.hearers(NodeId::new(0)), vec![NodeId::new(1)]);
    }

    #[test]
    fn moving_a_node_changes_reachability() {
        let mut m = medium();
        let s0 = NodeId::new(0);
        let r2 = NodeId::new(2);
        m.set_position(r2, Point::new(500.0, 0.0));
        assert!(!m.in_range(r2, s0));
        assert_eq!(m.position(r2), Point::new(500.0, 0.0));
        m.set_position(r2, Point::new(40.0, 0.0));
        assert!(m.in_range(s0, r2), "robot moved into sensor range");
    }

    #[test]
    fn fading_models() {
        assert_eq!(Fading::None.reception_prob(62.9, 63.0), 1.0);
        assert_eq!(Fading::None.reception_prob(63.1, 63.0), 0.0);
        let f = Fading::SmoothEdge { inner: 0.5 };
        assert_eq!(f.reception_prob(30.0, 63.0), 1.0, "inside reliable core");
        assert_eq!(f.reception_prob(63.0, 63.0), 0.0, "zero at the edge");
        let mid = f.reception_prob(47.25, 63.0);
        assert!((mid - 0.5).abs() < 1e-9, "linear middle: {mid}");
        assert_eq!(f.reception_prob(100.0, 63.0), 0.0);
    }

    #[test]
    fn medium_reception_prob_uses_positions() {
        let m = medium().with_fading(Fading::SmoothEdge { inner: 0.5 });
        // s0 to s1 at 50 m of 63 m: inside the grey zone.
        let p = m.reception_prob(NodeId::new(0), NodeId::new(1));
        assert!(p > 0.0 && p < 1.0, "grey zone probability {p}");
        assert_eq!(m.fading(), Fading::SmoothEdge { inner: 0.5 });
    }

    /// Builds a field of `n_sensors` pseudo-randomly placed sensors, a
    /// k×k robot grid, and a manager, mirroring the harness's id layout
    /// (sensors, then robots, then manager).
    fn field(n_sensors: usize, k: usize, side: f64) -> Medium {
        let mut positions = Vec::new();
        let mut classes = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..n_sensors {
            positions.push(Point::new(next() * side, next() * side));
            classes.push(NodeClass::Sensor);
        }
        for i in 0..k {
            for j in 0..k {
                let cell = side / k as f64;
                positions.push(Point::new((i as f64 + 0.5) * cell, (j as f64 + 0.5) * cell));
                classes.push(NodeClass::Robot);
            }
        }
        positions.push(Point::new(side / 2.0, side / 2.0));
        classes.push(NodeClass::Manager);
        Medium::new(
            Bounds::square(side),
            RangeTable::default(),
            &positions,
            &classes,
        )
    }

    /// Drops the static-hearer cache by nudging a static node and
    /// moving it straight back: topology is unchanged, but every query
    /// now takes the generic grid path.
    fn uncached(mut m: Medium) -> Medium {
        let s0 = NodeId::new(0);
        let p = m.position(s0);
        m.set_position(s0, Point::new(p.x + 0.25, p.y));
        m.set_position(s0, p);
        assert!(m.static_hearers.is_none(), "cache should be dropped");
        m
    }

    #[test]
    fn static_hearer_cache_matches_grid_queries() {
        let m = field(400, 3, 800.0);
        assert!(m.static_hearers.is_some(), "contiguous robots cache");
        let plain = uncached(m.clone());
        for i in 0..m.len() {
            let src = NodeId::new(i as u32);
            assert_eq!(m.hearers(src), plain.hearers(src), "src {i}");
        }
    }

    #[test]
    fn static_hearer_cache_tracks_robot_motion_and_death() {
        let mut m = field(300, 2, 600.0);
        let mut plain = uncached(m.clone());
        let n = m.len();
        let robots: Vec<NodeId> = (300..n - 1).map(|i| NodeId::new(i as u32)).collect();
        // March the robots across bucket boundaries (and one off a
        // sensor's window entirely), killing and reviving nodes along
        // the way; the cached and generic paths must agree at every
        // step, in content *and* visit order.
        let mut state = 1u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..40 {
            let r = robots[step % robots.len()];
            let to = Point::new(next() * 600.0, next() * 600.0);
            m.set_position(r, to);
            plain.set_position(r, to);
            let victim = NodeId::new((step * 37 % 300) as u32);
            let alive = step % 3 != 0;
            m.set_alive(victim, alive);
            plain.set_alive(victim, alive);
            for i in (0..m.len()).step_by(17) {
                let src = NodeId::new(i as u32);
                assert_eq!(m.hearers(src), plain.hearers(src), "step {step} src {i}");
            }
        }
        assert!(
            m.static_hearers.is_some(),
            "robot motion must not drop the cache"
        );
    }

    #[test]
    fn moving_a_static_node_drops_the_cache_for_good() {
        let mut m = field(50, 2, 400.0);
        assert!(m.static_hearers.is_some());
        // A same-position "move" (the centralized manager re-announces
        // in place every tick) must keep the cache.
        let mgr = NodeId::new(m.len() as u32 - 1);
        let at = m.position(mgr);
        m.set_position(mgr, at);
        assert!(m.static_hearers.is_some(), "no-op move keeps the cache");
        m.set_position(mgr, Point::new(at.x + 1.0, at.y));
        assert!(m.static_hearers.is_none(), "real move drops it");
    }

    #[test]
    fn class_and_range_lookup() {
        let m = medium();
        assert_eq!(m.class(NodeId::new(0)), NodeClass::Sensor);
        assert_eq!(m.class(NodeId::new(2)), NodeClass::Robot);
        assert_eq!(m.tx_range(NodeId::new(0)), 63.0);
        assert_eq!(m.tx_range(NodeId::new(2)), 250.0);
        assert_eq!(m.ranges().max_range(), 250.0);
        assert_eq!(m.len(), 3);
    }
}
