//! Frames and traffic classification.

use robonet_des::NodeId;

/// The purpose of a transmission, used for the paper's messaging-overhead
/// accounting.
///
/// The paper splits messaging overhead into "initialization, failure
/// detection, failure report and robot location update" (§4.3.2) and
/// reports failure reports / repair requests in Figure 3 and location
/// updates in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Initialization-phase messages (manager/robot/sensor location
    /// broadcasts, guardian confirmation).
    Init,
    /// Periodic one-hop beacons for failure detection and neighbour
    /// maintenance.
    Beacon,
    /// A failure report travelling from the detecting guardian to a
    /// manager.
    FailureReport,
    /// A replacement request forwarded from the central manager to a
    /// maintenance robot (centralized algorithm only).
    RepairRequest,
    /// A robot location update (unicast to the manager and/or flooded to
    /// sensors, depending on the algorithm).
    LocationUpdate,
    /// Announcements of a freshly installed replacement node.
    Replacement,
    /// Anything else.
    Other,
}

impl TrafficClass {
    /// All classes, for iterating statistics tables.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::Init,
        TrafficClass::Beacon,
        TrafficClass::FailureReport,
        TrafficClass::RepairRequest,
        TrafficClass::LocationUpdate,
        TrafficClass::Replacement,
        TrafficClass::Other,
    ];

    /// Dense index for array-backed counters.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Init => 0,
            TrafficClass::Beacon => 1,
            TrafficClass::FailureReport => 2,
            TrafficClass::RepairRequest => 3,
            TrafficClass::LocationUpdate => 4,
            TrafficClass::Replacement => 5,
            TrafficClass::Other => 6,
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficClass::Init => "init",
            TrafficClass::Beacon => "beacon",
            TrafficClass::FailureReport => "failure-report",
            TrafficClass::RepairRequest => "repair-request",
            TrafficClass::LocationUpdate => "location-update",
            TrafficClass::Replacement => "replacement",
            TrafficClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// A MAC-layer frame carrying an application payload `P`.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<P> {
    /// Transmitting node.
    pub src: NodeId,
    /// Unicast destination, or `None` for a local broadcast.
    pub dst: Option<NodeId>,
    /// Frame size in bytes (headers included), determines air time.
    pub bytes: u32,
    /// Accounting class.
    pub class: TrafficClass,
    /// Application payload, delivered opaquely to the receiver.
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; TrafficClass::ALL.len()];
        for c in TrafficClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_names() {
        assert_eq!(TrafficClass::Beacon.to_string(), "beacon");
        assert_eq!(TrafficClass::LocationUpdate.to_string(), "location-update");
    }

    #[test]
    fn frame_is_plain_data() {
        let f = Frame {
            src: NodeId::new(1),
            dst: Some(NodeId::new(2)),
            bytes: 64,
            class: TrafficClass::FailureReport,
            payload: "report",
        };
        let g = f.clone();
        assert_eq!(f, g);
    }
}
