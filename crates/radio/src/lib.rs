//! Packet-level wireless PHY/MAC simulation for the `robonet` workspace.
//!
//! This crate replaces Glomosim \[14\] in the reproduction of *Replacing
//! Failed Sensor Nodes by Mobile Robots* (Mei et al., ICDCS 2006). It
//! models:
//!
//! - a unit-disk physical layer with per-class transmission ranges
//!   (sensors 63 m, robots and the manager 250 m — paper §4.1),
//! - an IEEE 802.11-style CSMA/CA MAC at 11 Mbps: carrier sense,
//!   DIFS + uniform slotted backoff, frame airtime, SIFS-delayed ACKs for
//!   unicast with exponential-backoff retransmission, and a collision
//!   model where overlapping frames corrupt each other at a receiver,
//! - transmission accounting by traffic class — the paper's messaging-
//!   overhead metric (Figures 3 and 4) is literally a count of these
//!   transmissions.
//!
//! The MAC is *frame-granular*: the whole contention wait for a frame is
//! drawn as one interval rather than simulating each backoff slot, which
//! keeps event counts proportional to frames and lets the paper's
//! full-scale runs (64000 simulated seconds, 800 sensors) finish in
//! minutes. Fidelity notes and deliberate simplifications are documented
//! on [`engine::RadioEngine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod medium;
pub mod params;
pub mod stats;

pub use engine::{RadioEngine, RadioEvent, Upcall, UpcallBuf, UpcallEntry};
pub use frame::{Frame, TrafficClass};
pub use medium::{Fading, Medium, NodeClass};
pub use params::MacParams;
pub use stats::TxStats;
