//! Coordination parity between the packet-level harness and the
//! flow-level model.
//!
//! Both simulators build their worlds from the same named RNG streams
//! (`"deploy"`, `"robots"`) and drive the same `dyn Coordinator`, so
//! for every registered algorithm the *coordination decisions* must
//! agree: the initial `myrobot`/manager assignment installed at world
//! construction, and the robot that ends up handling a scripted
//! failure. These tests reconstruct the shared world with the public
//! primitives and cross-check the packet-level hooks
//! (`seed_initial_role`, `report_target`, `choose_dispatch_robot`)
//! against the flow-level hook (`flow_report`). A drift in either
//! simulator's construction recipe or either hook family fails here.

use robonet_core::coord::{self, CoordCtx, Coordinator, FleetView, FlowCtx};
use robonet_core::fastsim::GREEDY_PROGRESS;
use robonet_core::{DispatchPolicy, ScenarioConfig};
use robonet_des::{rng, NodeId};
use robonet_geom::partition::Partition;
use robonet_geom::{deploy, Point};
use robonet_wsn::SensorState;

/// The shared world both simulators construct for `cfg`.
struct World {
    sensor_pos: Vec<Point>,
    partition: Option<Box<dyn Partition>>,
    robot_pos: Vec<Point>,
    /// `u32::MAX` when the algorithm has no partition (harness
    /// convention; the flow model uses 0 — both mean "unused").
    sensor_subarea: Vec<u32>,
    manager_node: NodeId,
    manager_loc: Point,
}

fn build_world(coordinator: &dyn Coordinator, cfg: &ScenarioConfig) -> World {
    let bounds = cfg.bounds();
    let n_sensors = cfg.n_sensors();
    let n_robots = cfg.n_robots();
    let mut deploy_rng = rng::stream(cfg.seed, "deploy");
    let sensor_pos = deploy::uniform(&mut deploy_rng, &bounds, n_sensors);
    let partition = coordinator.build_partition(bounds, cfg.k);
    let mut robot_rng = rng::stream(cfg.seed, "robots");
    let robot_pos = coordinator.initial_robot_positions(
        partition.as_deref(),
        &bounds,
        n_robots,
        &mut robot_rng,
    );
    let sensor_subarea: Vec<u32> = match &partition {
        Some(p) => sensor_pos.iter().map(|&s| p.subarea_of(s) as u32).collect(),
        None => vec![u32::MAX; n_sensors],
    };
    World {
        sensor_pos,
        partition,
        robot_pos,
        sensor_subarea,
        manager_node: NodeId::new((n_sensors + n_robots) as u32),
        manager_loc: bounds.center(),
    }
}

/// Seeds post-initialization role knowledge exactly as the harness
/// does in `Simulation::new`.
fn seed_sensors(
    coordinator: &dyn Coordinator,
    cfg: &ScenarioConfig,
    w: &World,
) -> Vec<SensorState> {
    let ctx = CoordCtx {
        partition: w.partition.as_deref(),
        n_sensors: cfg.n_sensors(),
        n_robots: cfg.n_robots(),
        manager: coordinator
            .uses_manager()
            .then_some((w.manager_node, w.manager_loc)),
        update_threshold: cfg.update_threshold,
    };
    let mut sensors: Vec<SensorState> = w
        .sensor_pos
        .iter()
        .enumerate()
        .map(|(i, &loc)| SensorState::new(NodeId::new(i as u32), loc))
        .collect();
    for (i, s) in sensors.iter_mut().enumerate() {
        coordinator.seed_initial_role(s, w.sensor_subarea[i], &w.robot_pos, &ctx);
    }
    sensors
}

/// Builds the flow-level geometry context exactly as `fastsim::run`
/// does.
fn flow_ctx<'a>(cfg: &ScenarioConfig, w: &World, subarea_population: &'a [f64]) -> FlowCtx<'a> {
    let bounds = cfg.bounds();
    FlowCtx {
        manager_loc: w.manager_loc,
        manager_range: cfg.ranges.manager,
        hop_unit: GREEDY_PROGRESS * cfg.ranges.sensor,
        n_sensors: cfg.n_sensors(),
        n_robots: cfg.n_robots(),
        area: bounds.area(),
        density: cfg.n_sensors() as f64 / bounds.area(),
        update_threshold: cfg.update_threshold,
        subarea_population,
    }
}

fn subarea_population(w: &World) -> Vec<f64> {
    match &w.partition {
        Some(p) => {
            let mut counts = vec![0f64; p.len()];
            for &sub in &w.sensor_subarea {
                counts[sub as usize] += 1.0;
            }
            counts
        }
        None => Vec::new(),
    }
}

/// A handful of scripted failure victims spread across the id space.
fn scripted_failures(n_sensors: usize) -> [usize; 5] {
    [
        0,
        n_sensors / 3,
        n_sensors / 2,
        2 * n_sensors / 3,
        n_sensors - 1,
    ]
}

#[test]
fn initial_role_assignment_matches_between_simulators() {
    for entry in coord::registry() {
        let coordinator = entry.coordinator;
        let cfg = ScenarioConfig::paper(2, entry.algorithm).with_seed(9);
        let w = build_world(coordinator, &cfg);
        let sensors = seed_sensors(coordinator, &cfg, &w);

        for (i, s) in sensors.iter().enumerate() {
            if coordinator.uses_manager() {
                assert_eq!(
                    s.manager,
                    Some((w.manager_node, w.manager_loc)),
                    "{}: sensor {i} must know the manager after initialization",
                    entry.name
                );
            }
            let truth =
                coordinator.myrobot_truth(w.sensor_pos[i], w.sensor_subarea[i], &w.robot_pos);
            match truth {
                Some(r) => {
                    let (id, loc) = s.myrobot.unwrap_or_else(|| {
                        panic!("{}: sensor {i} must have a myrobot", entry.name)
                    });
                    assert_eq!(
                        id.index() - cfg.n_sensors(),
                        r,
                        "{}: sensor {i} seeded with a robot the truth hook disagrees with",
                        entry.name
                    );
                    assert_eq!(
                        loc, w.robot_pos[r],
                        "{}: sensor {i} knows a stale robot location at t=0",
                        entry.name
                    );
                }
                None => {
                    assert!(
                        !coordinator.uses_myrobot(),
                        "{}: truth hook returned None for a myrobot algorithm",
                        entry.name
                    );
                }
            }
        }
    }
}

#[test]
fn scripted_failure_dispatches_to_the_same_robot_in_both_simulators() {
    for entry in coord::registry() {
        let coordinator = entry.coordinator;
        let cfg = ScenarioConfig::paper(2, entry.algorithm).with_seed(9);
        let w = build_world(coordinator, &cfg);
        let sensors = seed_sensors(coordinator, &cfg, &w);
        let pop = subarea_population(&w);
        let flow = flow_ctx(&cfg, &w, &pop);
        // All robots idle at their initial positions, as at t=0.
        let fleet = FleetView {
            robot_locs: &w.robot_pos,
            robot_queues: &vec![0u32; cfg.n_robots()],
            suspect: None,
        };

        for s in scripted_failures(cfg.n_sensors()) {
            let failed_loc = w.sensor_pos[s];
            // Packet level: the report goes to `report_target`; manager
            // algorithms then pick the maintainer via
            // `choose_dispatch_robot`, distributed ones enqueue at the
            // targeted robot directly.
            let packet_robot = if coordinator.dispatch_via_manager() {
                let (target, target_loc) = coordinator.report_target(&sensors[s]);
                assert_eq!(
                    target, w.manager_node,
                    "{}: report goes to the manager",
                    entry.name
                );
                assert_eq!(
                    target_loc, w.manager_loc,
                    "{}: manager location",
                    entry.name
                );
                coordinator
                    .choose_dispatch_robot(&fleet, failed_loc, DispatchPolicy::Nearest)
                    .expect("manager algorithms choose a robot")
            } else {
                let (target, _) = coordinator.report_target(&sensors[s]);
                target.index() - cfg.n_sensors()
            };

            // Flow level: one call prices the report and picks the robot
            // (`fastsim` passes subarea 0 when there is no partition).
            let flow_subarea = if w.partition.is_some() {
                w.sensor_subarea[s] as usize
            } else {
                0
            };
            let fd = coordinator.flow_report(&flow, failed_loc, flow_subarea, &w.robot_pos);

            assert_eq!(
                fd.robot, packet_robot,
                "{}: sensor {s} dispatches to different robots in the two simulators",
                entry.name
            );
            assert_eq!(
                fd.request_hops.is_some(),
                coordinator.uses_manager(),
                "{}: a separate repair-request leg exists iff there is a manager",
                entry.name
            );
            assert!(
                fd.report_hops >= 1.0,
                "{}: reports cost at least one hop",
                entry.name
            );
        }
    }
}
