//! Fault-layer invariants of the packet simulator.
//!
//! Three guarantees anchor the fault-injection design and are enforced
//! here end to end:
//!
//! 1. **Inert plans are free.** A `FaultPlan` whose knobs are all zero
//!    normalizes away at construction, so passing one reproduces the
//!    fault-free run bit for bit — summary, recovery counters, spans.
//! 2. **No silent loss.** Under partial message loss with the retry
//!    protocol armed, every failure is accounted for: replaced, an
//!    explicit orphan (report budget exhausted or repair still in
//!    flight at the horizon), never quietly forgotten.
//! 3. **Reproducibility.** The same seed and the same plan give the
//!    same run, down to every counter — faults draw from dedicated
//!    named PRNG streams, so nothing about the injection depends on
//!    scheduler innards.

use robonet_core::fault::FaultPlan;
use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};
use robonet_des::SimDuration;

/// A small scenario every test can afford at packet level.
fn small(alg: Algorithm) -> ScenarioConfig {
    ScenarioConfig::paper(2, alg).with_seed(11).scaled(16.0)
}

/// Observability on, so `Outcome::spans` is assembled.
fn observed(mut cfg: ScenarioConfig) -> ScenarioConfig {
    cfg.trace_capacity = 16;
    cfg
}

const ALL: [Algorithm; 3] = [
    Algorithm::Centralized,
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
];

#[test]
fn inert_plan_reproduces_fault_free_run_bit_exactly() {
    for alg in ALL {
        let free = Simulation::run(observed(small(alg)));
        let mut cfg = observed(small(alg));
        cfg.faults = Some(FaultPlan::default());
        let inert = Simulation::run(cfg);

        assert_eq!(
            free.metrics.summary(),
            inert.metrics.summary(),
            "{alg:?}: inert plan must not perturb the summary"
        );
        assert_eq!(
            free.metrics.faults, inert.metrics.faults,
            "{alg:?}: inert plan must not trip any fault counter"
        );
        let (a, b) = (free.spans.unwrap(), inert.spans.unwrap());
        assert_eq!(a.failures, b.failures, "{alg:?}");
        assert_eq!(a.spans.len(), b.spans.len(), "{alg:?}");
        assert_eq!(a.orphans.len(), b.orphans.len(), "{alg:?}");
    }
}

#[test]
fn partial_loss_with_retries_loses_nothing_silently() {
    for alg in ALL {
        let mut cfg = observed(small(alg));
        cfg.faults = Some(FaultPlan::message_loss(0.10));
        let out = Simulation::run(cfg);
        let report = out.spans.as_ref().unwrap();

        // Conservation: every observed failure either closed as a
        // replacement span or is an explicit orphan at the horizon.
        assert_eq!(
            report.failures,
            report.spans.len() as u64 + report.orphans.len() as u64,
            "{alg:?}: failures must split into replacements + orphans"
        );
        // The loss actually bit, and the retry machinery actually ran.
        assert!(
            out.metrics.faults.report_drops > 0,
            "{alg:?}: 10% loss must drop some reports"
        );
        assert!(
            out.metrics.faults.report_retries > 0,
            "{alg:?}: dropped reports must be retried"
        );
        // Recovery keeps the repair ratio near the fault-free level.
        // (A guardian may still exhaust its budget when a *delivered*
        // report's repair outlasts the whole backoff schedule, so a few
        // abandonments are legitimate — what matters is throughput.)
        let mut free_cfg = observed(small(alg));
        free_cfg.faults = None;
        let free = Simulation::run(free_cfg);
        let ratio = |o: &robonet_core::Outcome| {
            let s = o.metrics.summary();
            s.replacements as f64 / s.failures_occurred as f64
        };
        assert!(
            ratio(&out) >= 0.90 * ratio(&free),
            "{alg:?}: retries must hold the repair ratio: {:.3} vs {:.3}",
            ratio(&out),
            ratio(&free)
        );
    }
}

#[test]
fn same_seed_and_plan_reproduce_the_run_exactly() {
    let mut plan = FaultPlan::message_loss(0.05);
    plan.breakdown_mean = Some(SimDuration::from_secs(1500.0));
    plan.breakdown_repair = Some(SimDuration::from_secs(300.0));
    plan.slow_prob = 0.3;
    for alg in ALL {
        let mut cfg = observed(small(alg));
        cfg.faults = Some(plan.clone());
        let a = Simulation::run(cfg.clone());
        let b = Simulation::run(cfg);
        assert_eq!(a.metrics.summary(), b.metrics.summary(), "{alg:?}");
        assert_eq!(a.metrics.faults, b.metrics.faults, "{alg:?}");
        let (ra, rb) = (a.spans.unwrap(), b.spans.unwrap());
        assert_eq!(ra.failures, rb.failures, "{alg:?}");
        assert_eq!(ra.redispatches, rb.redispatches, "{alg:?}");
        assert_eq!(ra.orphans, rb.orphans, "{alg:?}");
    }
}

#[test]
fn span_accounting_survives_redispatch() {
    // Heavy dispatch loss against the centralized manager forces the
    // watchdog: timeouts, re-dispatches to the next-closest non-suspect
    // robot, and eventually abandoned dispatches. The span assembler
    // must keep its books balanced through all of it.
    // Short watchdog so even *delivered* dispatches stuck behind a
    // backlog get re-dispatched — the span assembler only sees a
    // re-dispatch when two dispatch messages both reach a robot.
    let plan = FaultPlan {
        dispatch_loss: 0.5,
        dispatch_timeout: SimDuration::from_secs(60.0),
        max_dispatch_attempts: 6,
        ..FaultPlan::default()
    };
    let mut cfg = observed(small(Algorithm::Centralized));
    cfg.faults = Some(plan);
    let out = Simulation::run(cfg);
    let report = out.spans.as_ref().unwrap();

    assert!(
        out.metrics.faults.dispatch_timeouts > 0,
        "50% dispatch loss must trip the watchdog"
    );
    assert!(
        out.metrics.faults.redispatches > 0,
        "timeouts must re-dispatch"
    );
    assert!(
        report.redispatches > 0,
        "re-dispatches must be visible to the span assembler"
    );
    assert_eq!(
        report.failures,
        report.spans.len() as u64 + report.orphans.len() as u64,
        "conservation must hold under re-dispatch"
    );
    // Re-dispatch keeps repairs flowing despite the loss.
    assert!(
        out.metrics.summary().replacements > 0,
        "the fleet must still repair under dispatch loss"
    );
}

#[test]
fn breakdowns_with_repair_keep_the_fleet_alive() {
    // Frequent breakdowns, quick repairs: every death must be matched
    // by a repair (or be pending at the horizon), and the run must
    // still make repair progress.
    let plan = FaultPlan {
        breakdown_mean: Some(SimDuration::from_secs(1000.0)),
        breakdown_repair: Some(SimDuration::from_secs(200.0)),
        ..FaultPlan::default()
    };
    for alg in ALL {
        let mut cfg = small(alg);
        cfg.faults = Some(plan.clone());
        let out = Simulation::run(cfg);
        let f = &out.metrics.faults;
        let deaths = f.robot_breakdowns - f.robot_slowdowns;
        assert!(
            f.robot_repairs <= deaths,
            "{alg:?}: repairs ({}) cannot exceed deaths ({deaths})",
            f.robot_repairs
        );
        assert!(
            deaths - f.robot_repairs <= out.config.n_robots() as u64,
            "{alg:?}: at most one unrepaired death pending per robot"
        );
        assert!(
            out.metrics.summary().replacements > 0,
            "{alg:?}: repaired robots must keep replacing sensors"
        );
    }
}
