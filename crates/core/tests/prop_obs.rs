//! Property tests for the observability layer: the streaming quantile
//! sketch against exact order statistics, the quickselect percentile
//! against a sort-based reference, and the span assembler's accounting
//! invariants over randomized well-formed repair workloads.

use robonet_core::metrics::percentile;
use robonet_core::obs::{QuantileSketch, SpanAssembler, RELATIVE_ERROR, ZERO_THRESHOLD};
use robonet_core::trace::TraceEvent;
use robonet_des::check::{self, Outcome};
use robonet_des::NodeId;
use robonet_geom::Point;

/// Sketch quantiles stay within the advertised relative rank-error
/// bound of the exact order statistic at the same rank, for any sample
/// above the zero threshold.
#[test]
fn sketch_tracks_exact_order_statistics() {
    check::forall(
        "sketch_tracks_exact_order_statistics",
        &check::pair(
            check::vec_of(check::f64s(1e-4..1e5), 1..200),
            check::f64s(0.0..1.0),
        ),
        |(values, q)| {
            let mut sketch = QuantileSketch::new();
            for &v in values {
                sketch.observe(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            // Same rank convention as `metrics::percentile`'s lower
            // order statistic.
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let exact = sorted[rank];
            let approx = sketch.quantile(*q).expect("non-empty sketch");
            assert!(exact > ZERO_THRESHOLD, "generator stays above threshold");
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= RELATIVE_ERROR,
                "q={q}: exact {exact}, sketch {approx}, rel {rel}"
            );
            assert_eq!(sketch.count(), values.len() as u64);
            assert_eq!(sketch.min(), sorted.first().copied());
            assert_eq!(sketch.max(), sorted.last().copied());
            Outcome::Pass
        },
    );
}

/// The quickselect percentile is bit-identical to the full-sort
/// reference implementation it replaced (the `Summary` determinism
/// guarantee rests on this).
#[test]
fn quickselect_percentile_matches_sorted_reference() {
    check::forall(
        "quickselect_percentile_matches_sorted_reference",
        &check::pair(
            check::vec_of(check::f64s(0.0..1e6), 1..150),
            check::f64s(0.0..1.0),
        ),
        |(values, p)| {
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let rank = p * (sorted.len() - 1) as f64;
            let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
            let frac = rank - lo as f64;
            let reference = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            let fast = percentile(values, *p).expect("non-empty");
            assert!(
                fast.to_bits() == reference.to_bits(),
                "p={p}: reference {reference}, quickselect {fast}"
            );
            Outcome::Pass
        },
    );
}

/// One randomized repair lifecycle: stage delays plus whether the
/// repair completes before the horizon.
type Lifecycle = (f64, f64, f64, f64, bool);

fn lifecycles() -> check::Gen<Vec<Lifecycle>> {
    let one = check::pair(
        check::quad(
            check::f64s(0.0..5000.0), // failed_at
            check::f64s(0.1..60.0),   // detection delay
            check::f64s(0.1..30.0),   // report + dispatch delay
            check::f64s(1.0..600.0),  // travel duration
        ),
        check::bools(),
    )
    .map(|&((f, d, r, t), repaired)| (f, d, r, t, repaired));
    check::vec_of(one, 1..40)
}

/// Span-assembly accounting invariant: on a well-formed trace every
/// `Replaced` closes exactly one open span, orphan count equals
/// failures minus replacements, nothing is unmatched or out of order,
/// and each span's stages sum to its end-to-end dead time.
#[test]
fn assembler_conserves_failures() {
    check::forall("assembler_conserves_failures", &lifecycles(), |cycles| {
        let mut asm = SpanAssembler::new();
        let mut expected_repairs = 0u64;
        for (i, &(failed_at, detect, report, travel, repaired)) in cycles.iter().enumerate() {
            let sensor = NodeId::new(i as u32);
            let robot = NodeId::new(10_000 + i as u32);
            asm.ingest(&TraceEvent::Failure {
                t: failed_at,
                sensor,
            });
            asm.ingest(&TraceEvent::Detected {
                t: failed_at + detect,
                guardian: NodeId::new(20_000 + i as u32),
                failed: sensor,
            });
            asm.ingest(&TraceEvent::ReportDelivered {
                t: failed_at + detect + report,
                manager: NodeId::new(30_000 + i as u32),
                failed: sensor,
                hops: 3,
            });
            asm.ingest(&TraceEvent::Dispatched {
                t: failed_at + detect + report,
                robot,
                failed: sensor,
                departed: true,
            });
            if repaired {
                let done = failed_at + detect + report + travel;
                asm.ingest(&TraceEvent::RobotLegEnded {
                    t: done,
                    robot,
                    travel,
                });
                asm.ingest(&TraceEvent::Replaced {
                    t: done,
                    robot,
                    sensor,
                    travel,
                    loc: Point::new(0.0, 0.0),
                });
                expected_repairs += 1;
            }
        }
        let report = asm.finish();
        assert_eq!(report.failures, cycles.len() as u64);
        assert_eq!(report.replacements(), expected_repairs);
        assert_eq!(
            report.orphans.len() as u64,
            report.failures - expected_repairs,
            "orphans account for every unrepaired failure"
        );
        assert_eq!(report.unmatched_events, 0, "well-formed trace");
        assert_eq!(report.out_of_order, 0, "timestamps are causal");
        for span in &report.spans {
            let stage_sum: f64 = [
                span.detection,
                span.report_transit,
                span.dispatch_decision,
                span.travel,
                span.install,
            ]
            .iter()
            .flatten()
            .sum();
            let total = span.replaced_at - span.failed_at;
            assert!(
                (stage_sum - total).abs() < 1e-9,
                "stages sum to dead time: {stage_sum} vs {total}"
            );
            assert!((span.total() - total).abs() < 1e-9);
        }
        Outcome::Pass
    });
}
