//! Property tests for the observability layer: the streaming quantile
//! sketch against exact order statistics, the quickselect percentile
//! against a sort-based reference, and the span assembler's accounting
//! invariants over randomized well-formed repair workloads.

use robonet_core::metrics::percentile;
use robonet_core::obs::{QuantileSketch, SpanAssembler, RELATIVE_ERROR, ZERO_THRESHOLD};
use robonet_core::trace::TraceEvent;
use robonet_des::check::{self, Outcome};
use robonet_des::NodeId;
use robonet_geom::Point;

/// Sketch quantiles stay within the advertised relative rank-error
/// bound of the exact order statistic at the same rank, for any sample
/// above the zero threshold.
#[test]
fn sketch_tracks_exact_order_statistics() {
    check::forall(
        "sketch_tracks_exact_order_statistics",
        &check::pair(
            check::vec_of(check::f64s(1e-4..1e5), 1..200),
            check::f64s(0.0..1.0),
        ),
        |(values, q)| {
            let mut sketch = QuantileSketch::new();
            for &v in values {
                sketch.observe(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            // Same rank convention as `metrics::percentile`'s lower
            // order statistic.
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let exact = sorted[rank];
            let approx = sketch.quantile(*q).expect("non-empty sketch");
            assert!(exact > ZERO_THRESHOLD, "generator stays above threshold");
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= RELATIVE_ERROR,
                "q={q}: exact {exact}, sketch {approx}, rel {rel}"
            );
            assert_eq!(sketch.count(), values.len() as u64);
            assert_eq!(sketch.min(), sorted.first().copied());
            assert_eq!(sketch.max(), sorted.last().copied());
            Outcome::Pass
        },
    );
}

/// The quickselect percentile is bit-identical to the full-sort
/// reference implementation it replaced (the `Summary` determinism
/// guarantee rests on this).
#[test]
fn quickselect_percentile_matches_sorted_reference() {
    check::forall(
        "quickselect_percentile_matches_sorted_reference",
        &check::pair(
            check::vec_of(check::f64s(0.0..1e6), 1..150),
            check::f64s(0.0..1.0),
        ),
        |(values, p)| {
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let rank = p * (sorted.len() - 1) as f64;
            let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
            let frac = rank - lo as f64;
            let reference = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            let fast = percentile(values, *p).expect("non-empty");
            assert!(
                fast.to_bits() == reference.to_bits(),
                "p={p}: reference {reference}, quickselect {fast}"
            );
            Outcome::Pass
        },
    );
}

/// One randomized repair lifecycle: stage delays plus whether the
/// repair completes before the horizon.
type Lifecycle = (f64, f64, f64, f64, bool);

fn lifecycles() -> check::Gen<Vec<Lifecycle>> {
    let one = check::pair(
        check::quad(
            check::f64s(0.0..5000.0), // failed_at
            check::f64s(0.1..60.0),   // detection delay
            check::f64s(0.1..30.0),   // report + dispatch delay
            check::f64s(1.0..600.0),  // travel duration
        ),
        check::bools(),
    )
    .map(|&((f, d, r, t), repaired)| (f, d, r, t, repaired));
    check::vec_of(one, 1..40)
}

/// Span-assembly accounting invariant: on a well-formed trace every
/// `Replaced` closes exactly one open span, orphan count equals
/// failures minus replacements, nothing is unmatched or out of order,
/// and each span's stages sum to its end-to-end dead time.
#[test]
fn assembler_conserves_failures() {
    check::forall("assembler_conserves_failures", &lifecycles(), |cycles| {
        let mut asm = SpanAssembler::new();
        let mut expected_repairs = 0u64;
        for (i, &(failed_at, detect, report, travel, repaired)) in cycles.iter().enumerate() {
            let sensor = NodeId::new(i as u32);
            let robot = NodeId::new(10_000 + i as u32);
            asm.ingest(&TraceEvent::Failure {
                t: failed_at,
                sensor,
            });
            asm.ingest(&TraceEvent::Detected {
                t: failed_at + detect,
                guardian: NodeId::new(20_000 + i as u32),
                failed: sensor,
            });
            asm.ingest(&TraceEvent::ReportDelivered {
                t: failed_at + detect + report,
                manager: NodeId::new(30_000 + i as u32),
                failed: sensor,
                hops: 3,
            });
            asm.ingest(&TraceEvent::Dispatched {
                t: failed_at + detect + report,
                robot,
                failed: sensor,
                departed: true,
            });
            if repaired {
                let done = failed_at + detect + report + travel;
                asm.ingest(&TraceEvent::RobotLegEnded {
                    t: done,
                    robot,
                    travel,
                });
                asm.ingest(&TraceEvent::Replaced {
                    t: done,
                    robot,
                    sensor,
                    travel,
                    loc: Point::new(0.0, 0.0),
                });
                expected_repairs += 1;
            }
        }
        let report = asm.finish();
        assert_eq!(report.failures, cycles.len() as u64);
        assert_eq!(report.replacements(), expected_repairs);
        assert_eq!(
            report.orphans.len() as u64,
            report.failures - expected_repairs,
            "orphans account for every unrepaired failure"
        );
        assert_eq!(report.unmatched_events, 0, "well-formed trace");
        assert_eq!(report.out_of_order, 0, "timestamps are causal");
        for span in &report.spans {
            let stage_sum: f64 = [
                span.detection,
                span.report_transit,
                span.dispatch_decision,
                span.travel,
                span.install,
            ]
            .iter()
            .flatten()
            .sum();
            let total = span.replaced_at - span.failed_at;
            assert!(
                (stage_sum - total).abs() < 1e-9,
                "stages sum to dead time: {stage_sum} vs {total}"
            );
            assert!((span.total() - total).abs() < 1e-9);
        }
        Outcome::Pass
    });
}

/// Splitting any observation stream across any number of per-cell
/// sketches and folding them back in a random order is bit-identical to
/// observing everything in one sketch: bucket counts, count, min, max —
/// and the sum, which is fixed-point accumulated precisely so this
/// holds despite f64 addition being non-associative.
#[test]
fn sketch_merge_is_order_independent_bitwise() {
    check::forall(
        "sketch_merge_is_order_independent_bitwise",
        &check::triple(
            check::vec_of(check::f64s(1e-4..1e6), 1..120),
            check::usizes(2..6),
            check::u64_any(),
        ),
        |(values, cells, shuffle_seed)| {
            let mut whole = QuantileSketch::new();
            let mut parts: Vec<QuantileSketch> =
                (0..*cells).map(|_| QuantileSketch::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                whole.observe(v);
                parts[i % cells].observe(v);
            }
            // Fold the parts in a seed-derived pseudo-random order.
            let mut order: Vec<usize> = (0..*cells).collect();
            for i in (1..order.len()).rev() {
                let j = (shuffle_seed.wrapping_mul(i as u64 + 1) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut folded = QuantileSketch::new();
            for &i in &order {
                folded.merge(&parts[i]);
            }
            assert_eq!(folded, whole, "merge must equal direct observation");
            assert_eq!(
                folded.sum().to_bits(),
                whole.sum().to_bits(),
                "sums are bit-identical, not merely close"
            );
            for q in [0.0, 0.5, 0.95, 1.0] {
                assert_eq!(folded.quantile(q), whole.quantile(q), "q = {q}");
            }
            Outcome::Pass
        },
    );
}

/// Folding per-cell metrics registries (counters + histograms) in any
/// order produces the same snapshot: counters add, histogram buckets
/// add elementwise, histogram sums are fixed-point. Gauges are per-run
/// derived statistics and must vanish from any merged snapshot.
#[test]
fn registry_merge_is_order_independent_bitwise() {
    use robonet_core::obs::MetricsRegistry;

    check::forall(
        "registry_merge_is_order_independent_bitwise",
        &check::pair(
            check::vec_of(
                check::triple(
                    check::usizes(0..3),
                    check::u64s(0..1000),
                    check::f64s(1e-3..1e4),
                ),
                1..60,
            ),
            check::bools(),
        ),
        |(entries, reverse)| {
            const NAMES: [(&str, &str); 3] = [
                ("radio.mac", "tx"),
                ("net.routing", "hops"),
                ("des.scheduler", "pops"),
            ];
            // Deal entries round-robin into 3 per-cell registries and
            // also into one direct registry.
            let mut direct = MetricsRegistry::new();
            let mut parts: Vec<MetricsRegistry> = (0..3).map(|_| MetricsRegistry::new()).collect();
            for (i, (which, count, value)) in entries.iter().enumerate() {
                let (subsystem, name) = NAMES[*which];
                direct.add(subsystem, name, *count);
                direct.observe(subsystem, name, *value);
                parts[i % 3].add(subsystem, name, *count);
                parts[i % 3].observe(subsystem, name, *value);
            }
            // Gauges must be dropped by the merge no matter where they live.
            parts[0].set_gauge("span.total", "p95_s", 12.5);
            let mut folded = MetricsRegistry::new();
            folded.set_gauge("span.total", "p50_s", 3.5);
            if *reverse {
                for p in parts.iter().rev() {
                    folded.merge(p);
                }
            } else {
                for p in parts.iter() {
                    folded.merge(p);
                }
            }
            for (subsystem, name) in NAMES {
                assert_eq!(
                    folded.counter(subsystem, name),
                    direct.counter(subsystem, name),
                    "{subsystem}.{name} counter"
                );
                match (
                    folded.histogram(subsystem, name),
                    direct.histogram(subsystem, name),
                ) {
                    (None, None) => {}
                    (Some(f), Some(d)) => {
                        assert_eq!(f.buckets(), d.buckets(), "{subsystem}.{name} buckets");
                        assert_eq!(f.count(), d.count());
                        assert_eq!(
                            f.sum().to_bits(),
                            d.sum().to_bits(),
                            "{subsystem}.{name} sum is bit-identical"
                        );
                        assert_eq!(f.max(), d.max());
                    }
                    (f, d) => panic!("{subsystem}.{name}: presence differs: {f:?} vs {d:?}"),
                }
            }
            assert_eq!(folded.gauges().count(), 0, "merge drops every gauge");
            Outcome::Pass
        },
    );
}
