//! Property tests for the scenario compiler's error reporting: every
//! malformed-input class must be rejected with the right typed error
//! and a position pointing at the offending token — not at byte 0, and
//! never with a panic.

use robonet_core::scenario::{compile, Overrides, ScenarioErrorKind};
use robonet_des::check::{self, Outcome};

fn compile_err(src: &str) -> robonet_core::ScenarioError {
    compile(src, &Overrides::default()).expect_err("malformed scenario must be rejected")
}

/// Root-schema keys (must be discarded when generated as "unknown").
const ROOT_KEYS: &[&str] = &[
    "name",
    "algorithm",
    "k",
    "seed",
    "scale",
    "sensors",
    "field",
    "regions",
    "faults",
    "timeline",
];

#[test]
fn unknown_keys_are_rejected_at_their_line() {
    check::forall(
        "unknown root key -> UnknownKey at its line",
        &check::pair(check::lowercase_strings(1..12), check::usizes(0..5)),
        |(key, blank_lines)| {
            if ROOT_KEYS.contains(&key.as_str()) {
                return Outcome::Discard;
            }
            let padding = "\n".repeat(*blank_lines);
            let src = format!("{{\n  \"name\": \"x\",{padding}\n  \"{key}\": 1,\n}}");
            let e = compile_err(&src);
            assert_eq!(e.kind, ScenarioErrorKind::UnknownKey, "{e}");
            assert_eq!(e.line as usize, 3 + blank_lines, "{e}");
            assert!(e.message.contains(key.as_str()), "{e}");
            Outcome::Pass
        },
    );
}

#[test]
fn negative_rates_are_rejected_wherever_they_appear() {
    // Each slot embeds the negative number on source line 3.
    let slots: &[fn(f64) -> String] = &[
        |v| format!("{{\n  \"name\": \"x\",\n  \"faults\": {{ \"report_loss\": {v} }},\n}}"),
        |v| format!("{{\n  \"name\": \"x\",\n  \"faults\": {{ \"dispatch_loss\": {v} }},\n}}"),
        |v| format!("{{\n  \"name\": \"x\",\n  \"faults\": {{ \"breakdown_mean_s\": {v} }},\n}}"),
        |v| {
            format!(
                "{{\n  \"name\": \"x\",\n  \"regions\": [ {{ \"rect\": [0,0,9,9], \"density\": {v} }} ],\n}}"
            )
        },
        |v| {
            format!(
                "{{\n  \"name\": \"x\",\n  \"timeline\": [ {{ \"at_s\": {v}, \"attrition\": 1 }} ],\n}}"
            )
        },
        |v| {
            format!(
                "{{\n  \"name\": \"x\",\n  \"timeline\": [ {{ \"at_s\": 5, \"loss\": {{ \"report\": {v} }} }} ],\n}}"
            )
        },
    ];
    check::forall(
        "negative value in any rate slot -> NegativeRate on its line",
        &check::pair(check::f64s(-1e9..-1e-3), check::usizes(0..slots.len())),
        |&(v, slot)| {
            let e = compile_err(&slots[slot](v));
            assert_eq!(e.kind, ScenarioErrorKind::NegativeRate, "slot {slot}: {e}");
            assert_eq!(e.line, 3, "slot {slot}: {e}");
            Outcome::Pass
        },
    );
}

#[test]
fn timeline_events_after_sim_end_are_rejected() {
    check::forall(
        "event beyond sim_time_s -> EventAfterSimEnd",
        &check::pair(check::f64s(1000.0..50000.0), check::f64s(1.0..1e6)),
        |&(sim_end, excess)| {
            let at = sim_end + excess;
            let src = format!(
                "{{\n  \"name\": \"x\",\n  \"field\": {{ \"sim_time_s\": {sim_end} }},\n  \"timeline\": [\n    {{ \"at_s\": {at}, \"attrition\": 1 }},\n  ],\n}}"
            );
            let e = compile_err(&src);
            assert_eq!(e.kind, ScenarioErrorKind::EventAfterSimEnd, "{e}");
            assert_eq!(e.line, 5, "{e}");
            // And the same time *within* the horizon is accepted.
            let fine = at.min(sim_end);
            let src = format!(
                "{{\n  \"name\": \"x\",\n  \"field\": {{ \"sim_time_s\": {sim_end} }},\n  \"timeline\": [\n    {{ \"at_s\": {fine}, \"attrition\": 1 }},\n  ],\n}}"
            );
            compile(&src, &Overrides::default()).expect("in-horizon event compiles");
            Outcome::Pass
        },
    );
}

#[test]
fn wrong_json_types_are_rejected_as_bad_type() {
    // Each slot puts a wrongly-typed value on source line 3.
    let slots: &[&str] = &[
        "{\n  \"name\": \"x\",\n  \"k\": \"two\",\n}",
        "{\n  \"name\": \"x\",\n  \"scale\": [16],\n}",
        "{\n  \"name\": \"x\",\n  \"algorithm\": 3,\n}",
        "{\n  \"name\": \"x\",\n  \"field\": 7,\n}",
        "{\n  \"name\": \"x\",\n  \"regions\": {},\n}",
        "{\n  \"name\": \"x\",\n  \"timeline\": true,\n}",
        "{\n  \"name\": \"x\",\n  \"faults\": null,\n}",
        "{\n  \"name\": 4,\n  \"k\": 2,\n}",
    ];
    check::forall(
        "wrongly-typed value -> BadType at its line",
        &check::usizes(0..slots.len()),
        |&slot| {
            let e = compile_err(slots[slot]);
            assert_eq!(e.kind, ScenarioErrorKind::BadType, "slot {slot}: {e}");
            let expected_line = if slot == slots.len() - 1 { 2 } else { 3 };
            assert_eq!(e.line, expected_line, "slot {slot}: {e}");
            Outcome::Pass
        },
    );
}

#[test]
fn overlapping_regions_are_always_caught() {
    check::forall(
        "two rects sharing area -> OverlappingRegions",
        &check::quad(
            check::f64s(0.0..100.0),
            check::f64s(0.0..100.0),
            check::f64s(10.0..50.0),
            check::f64s(0.0..0.9),
        ),
        |&(x, y, side, shift)| {
            // The second rect is offset by less than one side length, so
            // the two always share interior area.
            let (x2, y2) = (x + side * shift, y + side * shift);
            let src = format!(
                "{{\n  \"name\": \"x\",\n  \"regions\": [\n    {{ \"rect\": [{x}, {y}, {}, {}], \"density\": 2.0 }},\n    {{ \"rect\": [{x2}, {y2}, {}, {}], \"density\": 3.0 }},\n  ],\n}}",
                x + side,
                y + side,
                x2 + side,
                y2 + side,
            );
            let e = compile_err(&src);
            assert_eq!(e.kind, ScenarioErrorKind::OverlappingRegions, "{e}");
            assert_eq!(e.line, 5, "points at the second region: {e}");
            Outcome::Pass
        },
    );
}

#[test]
fn arbitrary_garbage_never_panics_the_compiler() {
    check::forall(
        "arbitrary bytes -> Err or Ok, never a panic",
        &check::lowercase_strings(0..60),
        |junk| {
            let _ = compile(junk, &Overrides::default());
            let braced = format!("{{{junk}}}");
            let _ = compile(&braced, &Overrides::default());
            Outcome::Pass
        },
    );
}

#[test]
fn errors_always_point_inside_the_source() {
    // Syntax errors from truncation land on a real line/col of the
    // truncated text (never 0, never past the end).
    let full =
        "{\n  \"name\": \"x\",\n  \"timeline\": [\n    { \"at_s\": 5, \"attrition\": 1 },\n  ],\n}";
    check::forall(
        "truncated source -> position within bounds",
        &check::usizes(0..full.len()),
        |&cut| {
            if !full.is_char_boundary(cut) {
                return Outcome::Discard;
            }
            let src = &full[..cut];
            if let Err(e) = compile(src, &Overrides::default()) {
                assert!(e.line >= 1, "{e}");
                assert!(e.col >= 1, "{e}");
                let lines: Vec<&str> = src.split('\n').collect();
                assert!(
                    (e.line as usize) <= lines.len().max(1),
                    "line {} beyond {} lines",
                    e.line,
                    lines.len()
                );
            }
            Outcome::Pass
        },
    );
}
