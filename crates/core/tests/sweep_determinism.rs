//! The sweep engine's contract, tested end to end over real packet-level
//! simulations:
//!
//! 1. **Worker-count equivalence** — for worker counts {2, 3, 8}, every
//!    per-cell result (metrics, registry snapshot, spans) and the merged
//!    aggregate (sketch buckets and fixed-point sums included) are
//!    *equal* to the single-worker sequential reference — not close,
//!    equal, down to `f64` bit patterns.
//! 2. **Fold-order independence** — merging the per-cell metrics in
//!    reversed order, or via partial aggregates merged in either order,
//!    reproduces the engine's own merge bit-for-bit.
//! 3. **Panic robustness** — a cell whose simulation panics becomes a
//!    `FailedCell`; every other cell completes and the engine
//!    terminates (a watchdog catches a hang instead of letting the
//!    whole test suite time out).
//!
//! Cells use k=1 at 64× time compression so the whole battery stays in
//! the seconds range.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use robonet_core::sweep::{MergedSweep, SweepGrid, SweepResult};
use robonet_core::{Algorithm, FaultPlan, PartitionKind, ScenarioConfig};
use robonet_des::check::{self, Outcome};

const SCALE: f64 = 64.0;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
    Algorithm::Centralized,
];

fn cell(alg: Algorithm, seed: u64, loss: Option<f64>) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(1, alg).with_seed(seed).scaled(SCALE);
    if let Some(p) = loss {
        cfg.faults = Some(FaultPlan::message_loss(p).scaled(SCALE));
    }
    cfg
}

/// The reference grid: every algorithm × two seeds, plus one
/// fault-injected cell so the merge covers `FaultRecoveryStats` too.
fn reference_grid() -> SweepGrid {
    let mut grid = SweepGrid::new();
    for alg in ALGORITHMS {
        for seed in [1, 2] {
            grid.push(cell(alg, seed, None));
        }
    }
    grid.push(cell(Algorithm::Dynamic, 3, Some(0.05)));
    grid
}

#[test]
fn worker_counts_are_bitwise_equivalent_to_sequential() {
    let grid = reference_grid();
    let reference = grid.run(1);
    assert!(
        reference.failed.is_empty(),
        "reference cells must not panic"
    );
    assert_eq!(reference.cells.len(), grid.len());
    for jobs in [2usize, 3, 8] {
        let result = grid.run(jobs);
        assert!(result.failed.is_empty(), "jobs={jobs}: no cell may panic");
        assert_eq!(result.cells.len(), reference.cells.len());
        for (got, want) in result.cells.iter().zip(&reference.cells) {
            // Covers Metrics (sample vectors, TxStats, DropBreakdown,
            // FaultRecoveryStats and the registry snapshot with its
            // histogram buckets) plus the span report.
            assert_eq!(got, want, "cell {} differs at jobs={jobs}", want.index);
        }
        assert_eq!(
            result.merged, reference.merged,
            "merged aggregate differs at jobs={jobs}"
        );
        // Spot-check the parts of the merge where f64 could hide drift:
        // the sketch sums must match down to the bit pattern.
        for (label, got, want) in [
            (
                "travel_m",
                &result.merged.travel_m,
                &reference.merged.travel_m,
            ),
            (
                "repair_delay_s",
                &result.merged.repair_delay_s,
                &reference.merged.repair_delay_s,
            ),
        ] {
            assert_eq!(
                got.sum().to_bits(),
                want.sum().to_bits(),
                "{label} sum drifts at jobs={jobs}"
            );
        }
        assert_eq!(
            result.merged.report(),
            reference.merged.report(),
            "rendered aggregate differs at jobs={jobs}"
        );
    }
}

#[test]
fn merged_aggregate_is_fold_order_independent() {
    let grid = reference_grid();
    let reference = grid.run(1);

    // Reversed fold.
    let mut reversed = MergedSweep::new();
    for c in reference.cells.iter().rev() {
        reversed.absorb_metrics(&c.metrics, c.events_processed);
    }
    assert_eq!(reversed, reference.merged, "reversed fold must match");

    // Partitioned fold, partial aggregates merged both ways.
    let (mut odd, mut even) = (MergedSweep::new(), MergedSweep::new());
    for c in &reference.cells {
        if c.index % 2 == 0 {
            even.absorb_metrics(&c.metrics, c.events_processed);
        } else {
            odd.absorb_metrics(&c.metrics, c.events_processed);
        }
    }
    let mut eo = even.clone();
    eo.merge(&odd);
    let mut oe = odd.clone();
    oe.merge(&even);
    assert_eq!(eo, oe, "partial-aggregate merge must commute");
    assert_eq!(eo, reference.merged, "partitioned fold must match");
}

/// Randomized grids: any seed set over any algorithm, with or without a
/// fault-injected extra cell, runs identically at 1 and 3 workers. Few
/// cases (each runs 2×(2–4) packet-level simulations), but every case
/// checks full structural equality.
#[test]
fn random_grids_run_identically_on_any_worker_count() {
    check::forall_cases(
        "random_grids_run_identically_on_any_worker_count",
        4,
        &check::triple(
            check::vec_of(check::u64s(1..100), 1..4),
            check::usizes(0..3),
            check::bools(),
        ),
        |(seeds, alg_index, with_faults)| {
            let mut grid = SweepGrid::new();
            for &seed in seeds {
                grid.push(cell(ALGORITHMS[*alg_index], seed, None));
            }
            if *with_faults {
                grid.push(cell(ALGORITHMS[*alg_index], 7, Some(0.1)));
            }
            let sequential = grid.run(1);
            let parallel = grid.run(3);
            assert_eq!(sequential.cells, parallel.cells);
            assert_eq!(sequential.merged, parallel.merged);
            Outcome::Pass
        },
    );
}

#[test]
fn panicking_cell_is_isolated_and_engine_terminates() {
    let done: Arc<(Mutex<Option<SweepResult>>, Condvar)> =
        Arc::new((Mutex::new(None), Condvar::new()));
    let worker_done = Arc::clone(&done);
    std::thread::spawn(move || {
        let mut bad = cell(Algorithm::Dynamic, 1, None);
        bad.robot_speed = -1.0; // validate() rejects it → Simulation::run panics
        let grid = SweepGrid::from_configs(vec![
            cell(Algorithm::Dynamic, 1, None),
            bad,
            cell(Algorithm::Centralized, 2, None),
        ]);
        let result = grid.run(4);
        let (lock, cvar) = &*worker_done;
        *lock.lock().expect("result lock") = Some(result);
        cvar.notify_all();
    });

    let (lock, cvar) = &*done;
    let mut guard = lock.lock().expect("result lock");
    while guard.is_none() {
        let (g, timeout) = cvar
            .wait_timeout(guard, Duration::from_secs(120))
            .expect("watchdog wait");
        guard = g;
        assert!(
            guard.is_some() || !timeout.timed_out(),
            "sweep engine hung on a panicking cell"
        );
    }
    let result = guard.take().expect("result present");

    assert_eq!(result.failed.len(), 1, "exactly the rigged cell fails");
    assert_eq!(result.failed[0].index, 1);
    assert!(
        result.failed[0].panic.message.contains("invalid scenario"),
        "panic message is preserved: {}",
        result.failed[0].panic.message
    );
    assert_eq!(result.cells.len(), 2, "the other cells complete");
    assert_eq!(result.cells[0].index, 0);
    assert_eq!(result.cells[1].index, 2);
    assert_eq!(result.merged.cells, 2, "failed cell stays out of the merge");
}
