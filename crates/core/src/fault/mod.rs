//! Deterministic fault injection for the maintenance system itself.
//!
//! The paper assumes the only thing that ever fails is a sensor: failure
//! reports always arrive, robots never break, and a dispatched repair
//! always completes (§6 defers robot failure and message loss to future
//! work). This module injects exactly those faults — application-level
//! message loss and robot breakdowns — so the three coordination
//! algorithms can be compared under an unreliable maintenance system.
//!
//! Determinism contract: all fault decisions draw from two dedicated
//! named RNG streams (`"fault.msg"` and `"fault.breakdown"`, split from
//! the scenario seed exactly like every other stochastic component).
//! When no faults are configured ([`FaultPlan::is_inert`]) the harness
//! carries no injector at all, makes zero extra draws and schedules zero
//! extra events, so fault-free runs stay bit-identical to a build
//! without this module.

use robonet_des::rng::{self, Rng, Xoshiro256};
use robonet_des::SimDuration;
use robonet_geom::ConvexPolygon;

/// Which injected fault fired — the label carried by
/// [`TraceEvent::FaultInjected`](crate::trace::TraceEvent::FaultInjected)
/// and the `fault.*` registry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A guardian's failure report was dropped before entering the
    /// network.
    ReportLoss,
    /// A manager's repair request to a robot was dropped before entering
    /// the network.
    DispatchLoss,
    /// A robot's location update (unicast or flood origin) was dropped
    /// before entering the network.
    UpdateLoss,
    /// A robot broke down and stopped (permanently, or until an
    /// in-place repair completes).
    Breakdown,
    /// A robot broke down into degraded mode: it keeps working at
    /// reduced speed.
    Slowdown,
}

impl FaultKind {
    /// Stable snake_case label for traces and counters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ReportLoss => "report_loss",
            FaultKind::DispatchLoss => "dispatch_loss",
            FaultKind::UpdateLoss => "update_loss",
            FaultKind::Breakdown => "breakdown",
            FaultKind::Slowdown => "slowdown",
        }
    }

    /// Parses a label produced by [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "report_loss" => FaultKind::ReportLoss,
            "dispatch_loss" => FaultKind::DispatchLoss,
            "update_loss" => FaultKind::UpdateLoss,
            "breakdown" => FaultKind::Breakdown,
            "slowdown" => FaultKind::Slowdown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One scheduled fault event, pinned to a simulated time.
///
/// Timeline events generalize the probabilistic [`FaultPlan`] knobs to
/// deterministic occurrences: instead of "each report is lost with
/// probability p", a scenario can say "at t = 4000 s the north-east
/// quadrant goes dark". Times are offsets from simulation start in the
/// same clock as every other duration, and are divided by
/// [`FaultPlan::scaled`] along with the rest of the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum TimedFault {
    /// Every sensor alive inside `region` at time `at` fails
    /// simultaneously (a regional power loss). Failures reuse the
    /// ordinary sensor-death path, so detection and replacement proceed
    /// exactly as for lifetime expiries.
    Blackout {
        /// When the blackout strikes.
        at: SimDuration,
        /// The affected area (convex, CCW).
        region: ConvexPolygon,
    },
    /// Between `from` and `until`, any frame whose transmitter is inside
    /// region `a` and receiver inside region `b` (or vice versa) is
    /// dropped at the receiver. Purely deterministic — no RNG draws —
    /// and transparent to traffic within either region.
    Partition {
        /// When the partition opens.
        from: SimDuration,
        /// When the partition heals (exclusive).
        until: SimDuration,
        /// One side of the cut.
        a: ConvexPolygon,
        /// The other side of the cut.
        b: ConvexPolygon,
    },
    /// At time `at`, `robots` robots still in service break down
    /// permanently (an attrition wave). Victims are drawn from the
    /// `"fault.breakdown"` stream; deaths reuse the ordinary breakdown
    /// path but ignore `breakdown_repair`.
    Attrition {
        /// When the wave strikes.
        at: SimDuration,
        /// How many robots are lost (capped at the fleet still alive).
        robots: u32,
    },
    /// At time `at`, the plan's message-loss probabilities change to the
    /// given values (a time-varying loss schedule).
    LossRate {
        /// When the new rates take effect.
        at: SimDuration,
        /// New report-loss probability.
        report: f64,
        /// New dispatch-loss probability.
        dispatch: f64,
        /// New update-loss probability.
        update: f64,
    },
}

impl TimedFault {
    /// The simulated time at which the event first takes effect.
    pub fn at(&self) -> SimDuration {
        match self {
            TimedFault::Blackout { at, .. }
            | TimedFault::Attrition { at, .. }
            | TimedFault::LossRate { at, .. } => *at,
            TimedFault::Partition { from, .. } => *from,
        }
    }

    /// Stable snake_case label for traces and counters.
    pub fn label(&self) -> &'static str {
        match self {
            TimedFault::Blackout { .. } => "blackout",
            TimedFault::Partition { .. } => "partition",
            TimedFault::Attrition { .. } => "attrition",
            TimedFault::LossRate { .. } => "loss_rate",
        }
    }

    /// Divides every time in the event by `factor`, mirroring
    /// [`FaultPlan::scaled`]. Geometry is left untouched — the field
    /// does not shrink when the clock compresses.
    pub fn scaled(self, factor: f64) -> Self {
        let div = |d: SimDuration| SimDuration::from_secs(d.as_secs_f64() / factor);
        match self {
            TimedFault::Blackout { at, region } => TimedFault::Blackout {
                at: div(at),
                region,
            },
            TimedFault::Partition { from, until, a, b } => TimedFault::Partition {
                from: div(from),
                until: div(until),
                a,
                b,
            },
            TimedFault::Attrition { at, robots } => TimedFault::Attrition {
                at: div(at),
                robots,
            },
            TimedFault::LossRate {
                at,
                report,
                dispatch,
                update,
            } => TimedFault::LossRate {
                at: div(at),
                report,
                dispatch,
                update,
            },
        }
    }

    /// Checks internal consistency of one event.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            // Times are `SimDuration`s, non-negative by construction;
            // the scenario parser rejects negative literals upstream.
            TimedFault::Blackout { .. } => Ok(()),
            TimedFault::Partition { from, until, .. } => {
                if until.as_secs_f64() <= from.as_secs_f64() {
                    return Err(format!(
                        "partition must end after it starts ({} <= {})",
                        until.as_secs_f64(),
                        from.as_secs_f64()
                    ));
                }
                Ok(())
            }
            TimedFault::Attrition { robots, .. } => {
                if *robots == 0 {
                    return Err("attrition wave must claim at least one robot".into());
                }
                Ok(())
            }
            TimedFault::LossRate {
                report,
                dispatch,
                update,
                ..
            } => {
                for (name, p) in [
                    ("report loss", *report),
                    ("dispatch loss", *dispatch),
                    ("update loss", *update),
                ] {
                    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                        return Err(format!("{name} probability {p} must be in [0, 1]"));
                    }
                }
                Ok(())
            }
        }
    }
}

/// What faults to inject and how hard the protocol fights back.
///
/// Probabilities apply per logical message at its origin (loss inside
/// the network is already modelled by the radio substrate; this models
/// end-system faults: a crashed reporting task, a corrupted queue entry,
/// a robot that silently dropped an order). Durations are wall-clock
/// simulated seconds and are divided by
/// [`ScenarioConfig::scaled`](crate::ScenarioConfig::scaled) along with
/// every other duration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a guardian's failure report is dropped at origin.
    pub report_loss: f64,
    /// Probability a manager→robot repair request is dropped at origin.
    pub dispatch_loss: f64,
    /// Probability a robot location update is dropped at origin.
    pub update_loss: f64,
    /// Mean time between breakdowns per robot (exponential); `None`
    /// disables breakdowns.
    pub breakdown_mean: Option<SimDuration>,
    /// In-place repair time after a breakdown; `None` means breakdowns
    /// are permanent.
    pub breakdown_repair: Option<SimDuration>,
    /// Probability a breakdown manifests as a slowdown (degraded speed)
    /// instead of a full stop.
    pub slow_prob: f64,
    /// Speed multiplier while degraded (`0 < slow_factor < 1`).
    pub slow_factor: f64,
    /// Maximum report attempts a guardian makes per failed guardee
    /// before giving up and counting the failure as an explicit orphan.
    pub max_report_attempts: u32,
    /// How long the centralized manager waits for evidence a dispatched
    /// robot took the job before re-dispatching.
    pub dispatch_timeout: SimDuration,
    /// Maximum dispatch attempts the manager makes per failure.
    pub max_dispatch_attempts: u32,
    /// Beacon-silence multiple after which a robot presumes a peer dead
    /// and takes over its subarea (distributed algorithms).
    pub peer_timeout_periods: u32,
    /// Scheduled fault events, sorted by [`TimedFault::at`] when built
    /// from a scenario file. Empty for probabilistic-only plans.
    pub timeline: Vec<TimedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            report_loss: 0.0,
            dispatch_loss: 0.0,
            update_loss: 0.0,
            breakdown_mean: None,
            breakdown_repair: None,
            slow_prob: 0.0,
            slow_factor: 0.25,
            max_report_attempts: 6,
            dispatch_timeout: SimDuration::from_secs(600.0),
            max_dispatch_attempts: 4,
            peer_timeout_periods: 30,
            timeline: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Uniform message-loss plan: the same probability on reports,
    /// dispatches and location updates.
    pub fn message_loss(p: f64) -> Self {
        FaultPlan {
            report_loss: p,
            dispatch_loss: p,
            update_loss: p,
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan injects nothing at all. The harness
    /// normalises inert plans to "no faults", which is what makes a
    /// loss-rate-0.0 plan bit-identical to a fault-free run.
    pub fn is_inert(&self) -> bool {
        self.report_loss == 0.0
            && self.dispatch_loss == 0.0
            && self.update_loss == 0.0
            && self.breakdown_mean.is_none()
            && self.timeline.is_empty()
    }

    /// `true` when the plan can take robots out of service — either
    /// probabilistic breakdowns or a scheduled attrition wave. The
    /// harness arms peer-liveness tracking exactly when this holds.
    pub fn has_robot_faults(&self) -> bool {
        self.breakdown_mean.is_some()
            || self
                .timeline
                .iter()
                .any(|e| matches!(e, TimedFault::Attrition { .. }))
    }

    /// Divides every duration by `factor`, mirroring
    /// [`ScenarioConfig::scaled`](crate::ScenarioConfig::scaled).
    pub fn scaled(mut self, factor: f64) -> Self {
        if let Some(m) = self.breakdown_mean {
            self.breakdown_mean = Some(SimDuration::from_secs(m.as_secs_f64() / factor));
        }
        if let Some(r) = self.breakdown_repair {
            self.breakdown_repair = Some(SimDuration::from_secs(r.as_secs_f64() / factor));
        }
        self.dispatch_timeout =
            SimDuration::from_secs(self.dispatch_timeout.as_secs_f64() / factor);
        self.timeline = self
            .timeline
            .into_iter()
            .map(|e| e.scaled(factor))
            .collect();
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("report loss", self.report_loss),
            ("dispatch loss", self.dispatch_loss),
            ("update loss", self.update_loss),
            ("slow probability", self.slow_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} probability {p} must be in [0, 1]"));
            }
        }
        if let Some(m) = self.breakdown_mean {
            if m.as_secs_f64() <= 0.0 {
                return Err("breakdown mean must be positive".into());
            }
        }
        if let Some(r) = self.breakdown_repair {
            if r.as_secs_f64() <= 0.0 {
                return Err("breakdown repair time must be positive".into());
            }
        }
        if self.slow_prob > 0.0 && !(0.0..1.0).contains(&self.slow_factor) {
            return Err(format!(
                "slow factor {} must be in (0, 1) when slowdowns are enabled",
                self.slow_factor
            ));
        }
        if self.slow_prob > 0.0 && self.slow_factor <= 0.0 {
            return Err("slow factor must be positive".into());
        }
        if self.max_report_attempts == 0 {
            return Err("max report attempts must be at least 1".into());
        }
        if self.max_dispatch_attempts == 0 {
            return Err("max dispatch attempts must be at least 1".into());
        }
        if self.dispatch_timeout.as_secs_f64() <= 0.0 {
            return Err("dispatch timeout must be positive".into());
        }
        if self.peer_timeout_periods == 0 {
            return Err("peer timeout must be at least one beacon period".into());
        }
        for event in &self.timeline {
            event.validate()?;
        }
        Ok(())
    }
}

/// Per-run fault-decision state: the two dedicated RNG streams plus the
/// plan. Constructed by the harness only when the plan is not inert.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The active plan (never inert).
    pub plan: FaultPlan,
    msg_rng: Xoshiro256,
    breakdown_rng: Xoshiro256,
}

impl FaultInjector {
    /// Builds the injector for `plan` under the scenario's root seed.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            msg_rng: rng::stream(seed, "fault.msg"),
            breakdown_rng: rng::stream(seed, "fault.breakdown"),
        }
    }

    /// Bernoulli loss draw for one logical message of the given kind.
    /// Draws only when the configured probability is positive, so
    /// enabling breakdowns alone perturbs no message outcomes.
    pub fn drop_message(&mut self, kind: FaultKind) -> bool {
        let p = match kind {
            FaultKind::ReportLoss => self.plan.report_loss,
            FaultKind::DispatchLoss => self.plan.dispatch_loss,
            FaultKind::UpdateLoss => self.plan.update_loss,
            _ => 0.0,
        };
        p > 0.0 && self.msg_rng.gen_bool(p)
    }

    /// Samples the time from now to a robot's next breakdown
    /// (exponential with the configured mean); `None` when breakdowns
    /// are disabled.
    pub fn next_breakdown_delay(&mut self) -> Option<SimDuration> {
        let mean = self.plan.breakdown_mean?.as_secs_f64();
        let u = self.breakdown_rng.next_f64();
        // Inverse-CDF sampling; (1 - u) keeps the argument in (0, 1].
        Some(SimDuration::from_secs(-mean * (1.0 - u).ln()))
    }

    /// Draws whether a breakdown manifests as a slowdown (degraded
    /// speed) rather than a full stop.
    pub fn breakdown_is_slowdown(&mut self) -> bool {
        self.plan.slow_prob > 0.0 && self.breakdown_rng.gen_bool(self.plan.slow_prob)
    }

    /// Picks `count` distinct victims (without replacement) from
    /// `candidates` for an attrition wave, drawing from the breakdown
    /// stream. Returns fewer when the pool is smaller than `count`.
    pub fn attrition_victims<T: Copy>(&mut self, candidates: &[T], count: usize) -> Vec<T> {
        let mut pool: Vec<T> = candidates.to_vec();
        let n = count.min(pool.len());
        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.breakdown_rng.gen_index(pool.len());
            victims.push(pool.swap_remove(i));
        }
        victims
    }

    /// Applies a [`TimedFault::LossRate`] change: swaps the plan's
    /// message-loss probabilities in place.
    pub fn set_loss_rates(&mut self, report: f64, dispatch: f64, update: f64) {
        self.plan.report_loss = report;
        self.plan.dispatch_loss = dispatch;
        self.plan.update_loss = update;
    }

    /// Exponential-backoff retry window for report attempt `attempt`
    /// (1-based): `base × 2^(attempt-1)`, capped at 8× base so retries
    /// keep fitting inside a scaled run.
    pub fn report_backoff(base: SimDuration, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(3);
        SimDuration::from_secs(base.as_secs_f64() * f64::from(1u32 << exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        assert!(p.validate().is_ok());
        assert!(FaultPlan::message_loss(0.0).is_inert());
        assert!(!FaultPlan::message_loss(0.05).is_inert());
        let breakdowns = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(1000.0)),
            ..FaultPlan::default()
        };
        assert!(!breakdowns.is_inert());
    }

    #[test]
    fn validation_catches_bad_plans() {
        let mut p = FaultPlan::message_loss(1.5);
        assert!(p.validate().unwrap_err().contains("report loss"));
        p = FaultPlan {
            slow_prob: 0.5,
            slow_factor: 1.0,
            ..FaultPlan::default()
        };
        assert!(p.validate().unwrap_err().contains("slow factor"));
        p = FaultPlan {
            max_report_attempts: 0,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        p = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(0.0)),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        p = FaultPlan {
            dispatch_timeout: SimDuration::from_secs(0.0),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn scaling_divides_durations() {
        let p = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(8000.0)),
            breakdown_repair: Some(SimDuration::from_secs(400.0)),
            ..FaultPlan::default()
        }
        .scaled(8.0);
        assert_eq!(p.breakdown_mean, Some(SimDuration::from_secs(1000.0)));
        assert_eq!(p.breakdown_repair, Some(SimDuration::from_secs(50.0)));
        assert_eq!(
            p.dispatch_timeout,
            SimDuration::from_secs(600.0 / 8.0),
            "timeout scales with the rest of the clock"
        );
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = FaultPlan::message_loss(0.3);
        let mut a = FaultInjector::new(7, plan.clone());
        let mut b = FaultInjector::new(7, plan.clone());
        for _ in 0..64 {
            assert_eq!(
                a.drop_message(FaultKind::ReportLoss),
                b.drop_message(FaultKind::ReportLoss)
            );
        }
        let mut c = FaultInjector::new(8, plan);
        let diverged = (0..64).any(|_| {
            a.drop_message(FaultKind::ReportLoss) != c.drop_message(FaultKind::ReportLoss)
        });
        assert!(diverged, "different seeds must produce different outcomes");
    }

    #[test]
    fn loss_rate_matches_probability() {
        let mut inj = FaultInjector::new(42, FaultPlan::message_loss(0.1));
        let dropped = (0..20_000)
            .filter(|_| inj.drop_message(FaultKind::ReportLoss))
            .count();
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn zero_probability_draws_nothing() {
        let plan = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(100.0)),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(3, plan);
        let before = inj.msg_rng.clone();
        for kind in [
            FaultKind::ReportLoss,
            FaultKind::DispatchLoss,
            FaultKind::UpdateLoss,
        ] {
            assert!(!inj.drop_message(kind));
        }
        assert_eq!(
            inj.msg_rng, before,
            "p = 0 must not advance the message stream"
        );
    }

    #[test]
    fn breakdown_delays_follow_configured_mean() {
        let plan = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(500.0)),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(11, plan);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| inj.next_breakdown_delay().unwrap().as_secs_f64())
            .sum();
        let mean = total / f64::from(n);
        assert!((mean - 500.0).abs() < 15.0, "sample mean {mean}");
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let base = SimDuration::from_secs(100.0);
        assert_eq!(FaultInjector::report_backoff(base, 1).as_secs_f64(), 100.0);
        assert_eq!(FaultInjector::report_backoff(base, 2).as_secs_f64(), 200.0);
        assert_eq!(FaultInjector::report_backoff(base, 3).as_secs_f64(), 400.0);
        assert_eq!(FaultInjector::report_backoff(base, 4).as_secs_f64(), 800.0);
        assert_eq!(
            FaultInjector::report_backoff(base, 9).as_secs_f64(),
            800.0,
            "cap at 8x"
        );
    }

    fn unit_square() -> ConvexPolygon {
        use robonet_geom::{Bounds, Point};
        ConvexPolygon::from_bounds(&Bounds::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
    }

    #[test]
    fn timeline_breaks_inertness_and_scales() {
        let plan = FaultPlan {
            timeline: vec![TimedFault::Blackout {
                at: SimDuration::from_secs(800.0),
                region: unit_square(),
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_inert(), "a scheduled event is not inert");
        assert!(plan.validate().is_ok());
        let scaled = plan.scaled(8.0);
        assert_eq!(scaled.timeline[0].at(), SimDuration::from_secs(100.0));
    }

    #[test]
    fn timeline_validation_catches_bad_events() {
        let mk = |e: TimedFault| FaultPlan {
            timeline: vec![e],
            ..FaultPlan::default()
        };
        let backwards = mk(TimedFault::Partition {
            from: SimDuration::from_secs(100.0),
            until: SimDuration::from_secs(100.0),
            a: unit_square(),
            b: unit_square(),
        });
        assert!(backwards.validate().unwrap_err().contains("end after"));
        let empty_wave = mk(TimedFault::Attrition {
            at: SimDuration::from_secs(10.0),
            robots: 0,
        });
        assert!(empty_wave.validate().is_err());
        let bad_rate = mk(TimedFault::LossRate {
            at: SimDuration::from_secs(10.0),
            report: 1.5,
            dispatch: 0.0,
            update: 0.0,
        });
        assert!(bad_rate.validate().unwrap_err().contains("report loss"));
    }

    #[test]
    fn has_robot_faults_tracks_breakdowns_and_attrition() {
        assert!(!FaultPlan::default().has_robot_faults());
        assert!(!FaultPlan::message_loss(0.1).has_robot_faults());
        let breakdowns = FaultPlan {
            breakdown_mean: Some(SimDuration::from_secs(100.0)),
            ..FaultPlan::default()
        };
        assert!(breakdowns.has_robot_faults());
        let wave = FaultPlan {
            timeline: vec![TimedFault::Attrition {
                at: SimDuration::from_secs(50.0),
                robots: 2,
            }],
            ..FaultPlan::default()
        };
        assert!(wave.has_robot_faults());
        let blackout_only = FaultPlan {
            timeline: vec![TimedFault::Blackout {
                at: SimDuration::from_secs(50.0),
                region: unit_square(),
            }],
            ..FaultPlan::default()
        };
        assert!(!blackout_only.has_robot_faults());
    }

    #[test]
    fn attrition_victims_are_distinct_and_deterministic() {
        let plan = FaultPlan::default();
        let candidates: Vec<u64> = (0..10).collect();
        let mut a = FaultInjector::new(5, plan.clone());
        let mut b = FaultInjector::new(5, plan);
        let va = a.attrition_victims(&candidates, 4);
        let vb = b.attrition_victims(&candidates, 4);
        assert_eq!(va, vb, "same seed, same victims");
        assert_eq!(va.len(), 4);
        let mut sorted = va.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "victims are distinct");
        let all = a.attrition_victims(&candidates, 25);
        assert_eq!(all.len(), 10, "capped at the pool size");
    }

    #[test]
    fn loss_rate_swap_changes_drop_behaviour() {
        let mut inj = FaultInjector::new(9, FaultPlan::default());
        let before = inj.msg_rng.clone();
        assert!(!inj.drop_message(FaultKind::ReportLoss));
        assert_eq!(inj.msg_rng, before, "zero rate makes no draw");
        inj.set_loss_rates(1.0, 0.0, 0.0);
        assert!(inj.drop_message(FaultKind::ReportLoss));
        assert!(!inj.drop_message(FaultKind::DispatchLoss));
    }

    #[test]
    fn fault_kind_labels_round_trip() {
        for kind in [
            FaultKind::ReportLoss,
            FaultKind::DispatchLoss,
            FaultKind::UpdateLoss,
            FaultKind::Breakdown,
            FaultKind::Slowdown,
        ] {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("nope"), None);
    }
}
