//! Deterministic parallel sweep engine.
//!
//! A sweep is a batch of independent simulation *cells* — one
//! [`ScenarioConfig`] each, typically the cross product of a scenario
//! axis (robot count, algorithm), a seed list, and an optional fault
//! plan. [`SweepGrid`] fans the batch across an in-tree work-stealing
//! pool ([`robonet_des::pool`]) and assembles a [`SweepResult`] whose
//! contents are **bit-identical regardless of worker count or
//! completion order**:
//!
//! - every cell is a pure function of its configuration (the simulator
//!   derives all randomness from named seed streams), so what a cell
//!   produces never depends on which thread ran it or when;
//! - per-cell outputs come back slot-indexed and are folded in index
//!   order, so the per-cell vectors are order-stable;
//! - the cross-cell aggregate ([`MergedSweep`]) is built exclusively
//!   from order-independent operations — integer adds, elementwise
//!   bucket adds, f64 min/max, and fixed-point [`DetSum`] sums — so
//!   even an arbitrary fold order would produce the same bits.
//!
//! A panicking cell does not poison the batch: the pool isolates it,
//! the other cells complete, and the failure is reported as a
//! [`FailedCell`] carrying the panic message.
//!
//! ```
//! use robonet_core::sweep::SweepGrid;
//! use robonet_core::{Algorithm, ScenarioConfig};
//!
//! let grid = SweepGrid::from_configs(vec![
//!     ScenarioConfig::paper(2, Algorithm::Centralized).with_seed(1).scaled(64.0),
//!     ScenarioConfig::paper(2, Algorithm::Dynamic).with_seed(1).scaled(64.0),
//! ]);
//! let sequential = grid.run(1);
//! let parallel = grid.run(4);
//! assert_eq!(sequential.cells, parallel.cells);
//! assert_eq!(sequential.merged, parallel.merged);
//! ```
//!
//! [`DetSum`]: crate::obs::DetSum

mod merge;

pub use merge::MergedSweep;

use robonet_des::pool::{scatter_map, CellPanic};

use crate::config::{Algorithm, ScenarioConfig};
use crate::harness::Simulation;
use crate::metrics::Metrics;
use crate::obs::SpanReport;
use crate::report::Row;

/// An ordered batch of simulation cells.
///
/// Cell order is part of the contract: results, rows and failure
/// reports all come back in the order cells were pushed, independent of
/// how the pool scheduled them.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    cells: Vec<ScenarioConfig>,
}

impl SweepGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Wraps an explicit cell list.
    pub fn from_configs(cells: Vec<ScenarioConfig>) -> Self {
        SweepGrid { cells }
    }

    /// The paper's experiment design: every `(k, algorithm, seed)`
    /// combination at time-compression `scale`, in k-major order (the
    /// order the figure tables list their rows).
    pub fn paper(ks: &[usize], algorithms: &[Algorithm], seeds: &[u64], scale: f64) -> Self {
        let mut grid = SweepGrid::new();
        for &k in ks {
            for &alg in algorithms {
                for &seed in seeds {
                    grid.push(ScenarioConfig::paper(k, alg).with_seed(seed).scaled(scale));
                }
            }
        }
        grid
    }

    /// Appends one cell.
    pub fn push(&mut self, cfg: ScenarioConfig) {
        self.cells.push(cfg);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the grid holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell configurations, in push order.
    pub fn cells(&self) -> &[ScenarioConfig] {
        &self.cells
    }

    /// Runs every cell on `jobs` workers and assembles the result.
    ///
    /// `jobs == 1` runs sequentially on the calling thread — the
    /// reference the determinism tests compare against. Any other value
    /// fans cells across a work-stealing pool; the result is
    /// bit-identical either way. Panicking cells become
    /// [`FailedCell`]s; the rest of the batch completes.
    pub fn run(&self, jobs: usize) -> SweepResult {
        let outputs = scatter_map(&self.cells, jobs, |_, cfg| {
            let out = Simulation::run(cfg.clone());
            CellOutput {
                metrics: out.metrics,
                spans: out.spans,
                events_processed: out.events_processed,
            }
        });
        SweepResult::assemble(&self.cells, outputs)
    }
}

/// What one cell's simulation hands back to the engine. The event
/// trace and the wall-clock scheduler profile are deliberately
/// excluded: the trace is bounded-capacity noise at sweep scale and
/// the profile varies run to run, which would break the bit-identity
/// contract.
struct CellOutput {
    metrics: Metrics,
    spans: Option<SpanReport>,
    events_processed: u64,
}

/// One completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Position of this cell in the grid.
    pub index: usize,
    /// The configuration that ran.
    pub config: ScenarioConfig,
    /// The run's metrics.
    pub metrics: Metrics,
    /// Per-failure latency decomposition (`None` for unobserved runs).
    pub spans: Option<SpanReport>,
    /// Events the kernel delivered for this cell.
    pub events_processed: u64,
}

impl CellResult {
    /// The figure-table row for this cell.
    pub fn row(&self) -> Row {
        Row::new(&self.config, self.metrics.summary())
    }
}

/// One cell whose simulation panicked.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// Position of this cell in the grid.
    pub index: usize,
    /// The configuration that panicked.
    pub config: ScenarioConfig,
    /// The captured panic.
    pub panic: CellPanic,
}

impl std::fmt::Display for FailedCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} ({} k={} seed={}): {}",
            self.index,
            self.config.algorithm.name(),
            self.config.k,
            self.config.seed,
            self.panic.message
        )
    }
}

/// Everything a sweep produced: per-cell results in grid order, the
/// cells that panicked, and the order-independent cross-cell merge.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Completed cells, ordered by grid index.
    pub cells: Vec<CellResult>,
    /// Panicked cells, ordered by grid index.
    pub failed: Vec<FailedCell>,
    /// The cross-cell aggregate over all completed cells.
    pub merged: MergedSweep,
}

impl SweepResult {
    fn assemble(configs: &[ScenarioConfig], outputs: Vec<Result<CellOutput, CellPanic>>) -> Self {
        let mut cells = Vec::with_capacity(outputs.len());
        let mut failed = Vec::new();
        let mut merged = MergedSweep::new();
        for (index, output) in outputs.into_iter().enumerate() {
            match output {
                Ok(out) => {
                    merged.absorb_metrics(&out.metrics, out.events_processed);
                    cells.push(CellResult {
                        index,
                        config: configs[index].clone(),
                        metrics: out.metrics,
                        spans: out.spans,
                        events_processed: out.events_processed,
                    });
                }
                Err(panic) => failed.push(FailedCell {
                    index,
                    config: configs[index].clone(),
                    panic,
                }),
            }
        }
        SweepResult {
            cells,
            failed,
            merged,
        }
    }

    /// Figure-table rows for the completed cells, in grid order.
    pub fn rows(&self) -> Vec<Row> {
        self.cells.iter().map(CellResult::row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::config::PartitionKind;

    const FIXED: Algorithm = Algorithm::Fixed(PartitionKind::Square);

    fn tiny(algorithm: Algorithm, seed: u64) -> ScenarioConfig {
        ScenarioConfig::paper(1, algorithm)
            .with_seed(seed)
            .scaled(64.0)
    }

    #[test]
    fn paper_grid_is_k_major() {
        let grid = SweepGrid::paper(&[2, 3], &[FIXED, Algorithm::Dynamic], &[1, 2], 64.0);
        assert_eq!(grid.len(), 8);
        let c = grid.cells();
        assert_eq!((c[0].k, c[0].algorithm, c[0].seed), (2, FIXED, 1));
        assert_eq!((c[1].k, c[1].algorithm, c[1].seed), (2, FIXED, 2));
        assert_eq!(
            (c[2].k, c[2].algorithm, c[2].seed),
            (2, Algorithm::Dynamic, 1)
        );
        assert_eq!((c[4].k, c[4].algorithm, c[4].seed), (3, FIXED, 1));
    }

    #[test]
    fn run_produces_indexed_cells_and_rows() {
        let grid = SweepGrid::from_configs(vec![tiny(FIXED, 1), tiny(Algorithm::Dynamic, 1)]);
        let result = grid.run(1);
        assert!(result.failed.is_empty());
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.cells[0].index, 0);
        assert_eq!(result.cells[1].index, 1);
        let rows = result.rows();
        assert_eq!(rows[0].algorithm, "fixed");
        assert_eq!(rows[1].algorithm, "dynamic");
        assert_eq!(result.merged.cells, 2);
        assert!(result.merged.events_processed > 0);
    }

    #[test]
    fn panicking_cell_becomes_failed_cell() {
        let mut bad = tiny(FIXED, 1);
        bad.robot_speed = -1.0; // validate() rejects it → Simulation::run panics
        let grid = SweepGrid::from_configs(vec![tiny(FIXED, 1), bad]);
        let result = grid.run(2);
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.cells[0].index, 0);
        assert_eq!(result.failed.len(), 1);
        assert_eq!(result.failed[0].index, 1);
        assert!(result.failed[0].to_string().contains("cell 1"));
        assert_eq!(result.merged.cells, 1, "failed cell is not merged");
    }
}
