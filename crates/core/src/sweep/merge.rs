//! Order-independent cross-cell aggregation.
//!
//! [`MergedSweep`] is the sweep engine's answer to "what did the whole
//! batch do?". Every field is maintained with operations that are
//! associative and commutative at the bit level — `u64` adds,
//! elementwise histogram-bucket adds, `f64` min/max, and fixed-point
//! [`DetSum`](crate::obs::DetSum) sums inside the sketches — so folding
//! cells in *any* order, or merging partial aggregates built on
//! different workers, produces byte-identical results. Per-run derived
//! gauges are the one thing that cannot satisfy that contract, so the
//! registry merge drops them (see
//! [`MetricsRegistry::merge`](crate::obs::MetricsRegistry::merge)).

use robonet_radio::TxStats;

use crate::metrics::{DropBreakdown, FaultRecoveryStats, Metrics};
use crate::obs::{MetricsRegistry, QuantileSketch};

/// Order-independent aggregate over every completed cell of a sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergedSweep {
    /// Cells folded into this aggregate.
    pub cells: u64,
    /// Total sensor failures across cells.
    pub failures_occurred: u64,
    /// Total failure reports originated.
    pub reports_sent: u64,
    /// Total failure reports delivered.
    pub reports_delivered: u64,
    /// Total repair requests sent (centralized only).
    pub requests_sent: u64,
    /// Total repair requests delivered.
    pub requests_delivered: u64,
    /// Total replacements completed.
    pub replacements: u64,
    /// Total robot arrivals at still-alive nodes.
    pub spurious_replacements: u64,
    /// Packet drops, summed by reason.
    pub packets_dropped: DropBreakdown,
    /// Fault-injection and recovery counters, summed.
    pub faults: FaultRecoveryStats,
    /// MAC transmission counters, summed per traffic class.
    pub tx: TxStats,
    /// Per-subsystem counters and histograms merged across cells
    /// (gauges dropped — they are per-run derived statistics).
    pub registry: MetricsRegistry,
    /// Distribution of per-replacement travel legs (m) — Figure 2's
    /// samples, pooled across every cell.
    pub travel_m: QuantileSketch,
    /// Distribution of dispatch→installation delays (s).
    pub repair_delay_s: QuantileSketch,
    /// Distribution of failure-report hop counts — Figure 3.
    pub report_hops: QuantileSketch,
    /// Distribution of repair-request hop counts (centralized only).
    pub request_hops: QuantileSketch,
    /// Total events the kernel delivered across cells.
    pub events_processed: u64,
}

impl MergedSweep {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        MergedSweep::default()
    }

    /// Folds one cell's metrics into the aggregate.
    ///
    /// Observation order within a cell is fixed by the cell itself (the
    /// sample vectors are deterministic), and every accumulator here is
    /// order-independent across cells, so absorbing cells in any order
    /// gives the same bits.
    pub fn absorb_metrics(&mut self, m: &Metrics, events_processed: u64) {
        self.cells += 1;
        self.failures_occurred += m.failures_occurred;
        self.reports_sent += m.reports_sent;
        self.reports_delivered += m.reports_delivered;
        self.requests_sent += m.requests_sent;
        self.requests_delivered += m.requests_delivered;
        self.replacements += m.replacements;
        self.spurious_replacements += m.spurious_replacements;
        self.packets_dropped.merge(&m.packets_dropped);
        self.faults.merge(&m.faults);
        self.tx.merge(&m.tx);
        self.registry.merge(&m.counters);
        for &v in &m.travel_per_task {
            self.travel_m.observe(v);
        }
        for &v in &m.repair_delay {
            self.repair_delay_s.observe(v);
        }
        for &h in &m.report_hops {
            self.report_hops.observe(f64::from(h));
        }
        for &h in &m.request_hops {
            self.request_hops.observe(f64::from(h));
        }
        self.events_processed += events_processed;
    }

    /// Folds another aggregate into this one. Bit-identical under any
    /// fold order or grouping: `merge(a, merge(b, c))` equals
    /// `merge(merge(a, b), c)` equals any permutation thereof.
    pub fn merge(&mut self, other: &MergedSweep) {
        self.cells += other.cells;
        self.failures_occurred += other.failures_occurred;
        self.reports_sent += other.reports_sent;
        self.reports_delivered += other.reports_delivered;
        self.requests_sent += other.requests_sent;
        self.requests_delivered += other.requests_delivered;
        self.replacements += other.replacements;
        self.spurious_replacements += other.spurious_replacements;
        self.packets_dropped.merge(&other.packets_dropped);
        self.faults.merge(&other.faults);
        self.tx.merge(&other.tx);
        self.registry.merge(&other.registry);
        self.travel_m.merge(&other.travel_m);
        self.repair_delay_s.merge(&other.repair_delay_s);
        self.report_hops.merge(&other.report_hops);
        self.request_hops.merge(&other.request_hops);
        self.events_processed += other.events_processed;
    }

    /// A deterministic plain-text summary of the aggregate — identical
    /// bytes for identical sweeps regardless of worker count, which is
    /// what the CI `--jobs 1` vs `--jobs 4` byte-diff gate compares.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("cells               {}\n", self.cells));
        out.push_str(&format!("failures            {}\n", self.failures_occurred));
        out.push_str(&format!("replacements        {}\n", self.replacements));
        out.push_str(&format!(
            "reports             {}/{} delivered\n",
            self.reports_delivered, self.reports_sent
        ));
        if self.requests_sent > 0 {
            out.push_str(&format!(
                "requests            {}/{} delivered\n",
                self.requests_delivered, self.requests_sent
            ));
        }
        out.push_str(&format!("packets dropped     {}\n", self.packets_dropped));
        out.push_str(&format!("transmissions       {}\n", self.tx.total_tx()));
        if !self.faults.is_empty() {
            out.push_str(&format!("faults              {}\n", self.faults));
        }
        for (label, sketch) in [
            ("travel_m", &self.travel_m),
            ("repair_delay_s", &self.repair_delay_s),
            ("report_hops", &self.report_hops),
            ("request_hops", &self.request_hops),
        ] {
            if sketch.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{label:<19} n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}\n",
                sketch.count(),
                sketch.mean().unwrap_or(0.0),
                sketch.quantile(0.50).unwrap_or(0.0),
                sketch.quantile(0.95).unwrap_or(0.0),
                sketch.max().unwrap_or(0.0),
            ));
        }
        out.push_str(&format!("events processed    {}\n", self.events_processed));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_radio::TrafficClass;

    fn sample_metrics(offset: u64) -> Metrics {
        let mut m = Metrics {
            failures_occurred: 5 + offset,
            reports_sent: 4,
            reports_delivered: 4,
            replacements: 3,
            travel_per_task: vec![10.5 + offset as f64, 22.25],
            repair_delay: vec![100.0, 250.0 + offset as f64],
            report_hops: vec![2, 3, 4],
            request_hops: vec![5],
            ..Metrics::default()
        };
        m.packets_dropped.ttl_expired = offset;
        m.tx.class_mut(TrafficClass::Beacon).data_tx = 100 + offset;
        m.counters.add("radio.mac", "tx", 100 + offset);
        m.counters
            .observe("net.routing", "hops", 2.0 + offset as f64);
        m.counters
            .set_gauge("span.total", "p95_s", 1.0 + offset as f64);
        m
    }

    #[test]
    fn absorb_accumulates_counters_and_samples() {
        let mut agg = MergedSweep::new();
        agg.absorb_metrics(&sample_metrics(0), 1000);
        agg.absorb_metrics(&sample_metrics(1), 500);
        assert_eq!(agg.cells, 2);
        assert_eq!(agg.failures_occurred, 11);
        assert_eq!(agg.replacements, 6);
        assert_eq!(agg.packets_dropped.ttl_expired, 1);
        assert_eq!(agg.tx.class(TrafficClass::Beacon).data_tx, 201);
        assert_eq!(agg.registry.counter("radio.mac", "tx"), 201);
        assert_eq!(agg.travel_m.count(), 4);
        assert_eq!(agg.report_hops.count(), 6);
        assert_eq!(agg.request_hops.count(), 2);
        assert_eq!(agg.events_processed, 1500);
        assert_eq!(
            agg.registry.gauge("span.total", "p95_s"),
            None,
            "gauges dropped"
        );
    }

    #[test]
    fn merge_matches_direct_absorption_bitwise() {
        let cells: Vec<Metrics> = (0..6).map(sample_metrics).collect();
        let mut direct = MergedSweep::new();
        for m in &cells {
            direct.absorb_metrics(m, 10);
        }
        // Partition into two partial aggregates and merge both ways.
        let (mut left, mut right) = (MergedSweep::new(), MergedSweep::new());
        for (i, m) in cells.iter().enumerate() {
            if i % 2 == 0 {
                left.absorb_metrics(m, 10);
            } else {
                right.absorb_metrics(m, 10);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl, "merge is commutative");
        assert_eq!(lr, direct, "merge equals direct absorption");
        assert_eq!(
            lr.travel_m.sum().to_bits(),
            direct.travel_m.sum().to_bits(),
            "sketch sums are bit-identical, not merely close"
        );
        assert_eq!(lr.report(), direct.report(), "reports render identically");
    }

    #[test]
    fn report_is_deterministic_text() {
        let mut agg = MergedSweep::new();
        agg.absorb_metrics(&sample_metrics(0), 42);
        let text = agg.report();
        assert!(text.contains("cells               1"));
        assert!(text.contains("travel_m"));
        assert!(text.contains("events processed    42"));
        assert_eq!(text, agg.report());
    }
}
