//! Observability: event sinks, metrics registry, and run artifacts.
//!
//! This module is the one place the simulation's three observation
//! channels meet:
//!
//! - **Events** — protocol-level [`TraceEvent`](crate::trace::TraceEvent)s
//!   flow into an [`EventSink`]. [`NullSink`] keeps disabled runs
//!   zero-cost, [`RingSink`] is the classic bounded in-memory trace,
//!   [`JsonlSink`] streams line-delimited JSON to a writer (the
//!   `robonet run --trace-out` artifact), and [`TeeSink`] fans out to
//!   several sinks at once.
//! - **Metrics** — a [`MetricsRegistry`] of `subsystem.name` counters
//!   and log2 [`Log2Histogram`]s, snapshotted at the end of a run and
//!   embedded in the run manifest.
//! - **Spans** — a [`SpanAssembler`] correlates the event stream into
//!   causal [`RepairSpan`]s (failure → detection → report → dispatch →
//!   travel → install), online during a run or offline over a JSONL
//!   artifact, with per-stage percentiles from a fixed-memory
//!   [`QuantileSketch`].
//! - **Profiling** — wall-clock phase numbers from
//!   [`robonet_des::SchedulerProfile`], surfaced by the CLI.
//!
//! [`TraceAggregate`] closes the loop: it re-reads a JSONL artifact and
//! reproduces the paper's per-failure overhead table (`robonet stats`)
//! without re-running the simulation; `robonet spans` does the same for
//! the latency decomposition.
//!
//! # Naming convention
//!
//! Counters are `subsystem.name` with lowercase dotted segments; the
//! subsystem is the crate-level component that observed the fact
//! (`des.scheduler`, `radio.mac`, `net.routing`, `coord.<algorithm>`,
//! `robot.fleet`), and the name may itself be dotted for families such
//! as `drops.ttl_expired`.
//!
//! Everything here is hand-rolled (see [`json`]) — no new dependencies.

pub mod detsum;
pub mod json;
pub mod quantile;
pub mod registry;
pub mod replay;
pub mod sink;
pub mod span;
pub mod stats;
pub mod timeline;

pub use detsum::DetSum;
pub use quantile::{QuantileSketch, RELATIVE_ERROR, ZERO_THRESHOLD};
pub use registry::{Log2Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use replay::{Film, LegRecord, OutageRecord, ReplaySetup, ReplayState, Replayer, SensorPhase};
pub use sink::{
    event_from_jsonl, event_to_jsonl, for_each_event_line, trace_header, EventSink, JsonlSink,
    LineCursor, NullSink, RingSink, TeeSink, TruncatedTail, TRACE_SCHEMA_VERSION,
};
pub use span::{OrphanSpan, RepairSpan, SpanAssembler, SpanReport, SpanSink, Stage, StageRow};
pub use stats::{DropCounts, TraceAggregate};
pub use timeline::{Checkpoint, HealthMonitor, Invariant, TelemetrySnapshot, Timeline};

pub use crate::trace::DropReason;
