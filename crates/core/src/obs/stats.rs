//! Offline aggregation of JSONL run artifacts.
//!
//! Rebuilds the paper's per-failure overhead numbers (travel, report
//! hops, repair delay) from a trace written by
//! [`JsonlSink`](super::JsonlSink), without re-running the simulation.
//! Travel and hop averages are computed with the same helpers
//! ([`mean_f64`], [`mean_u32`]) over the same samples in the same order
//! as the in-process [`Summary`](crate::metrics::Summary), so they
//! reproduce it bit-exactly.

use std::collections::HashMap;
use std::collections::VecDeque;

use robonet_des::NodeId;

use crate::metrics::{mean_f64, mean_u32};
use crate::trace::{DropReason, TraceEvent};

use super::sink::{for_each_event_line, TruncatedTail};

/// Per-reason drop tallies reconstructed from `packet_dropped` events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Hop budget exhausted.
    pub ttl_expired: u64,
    /// No usable neighbour on the path.
    pub no_neighbors: u64,
    /// MAC retries exhausted.
    pub mac_give_up: u64,
}

impl DropCounts {
    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.ttl_expired + self.no_neighbors + self.mac_give_up
    }

    /// Increments the tally for `reason`.
    pub fn record(&mut self, reason: DropReason) {
        match reason {
            DropReason::TtlExpired => self.ttl_expired += 1,
            DropReason::NoNeighbors => self.no_neighbors += 1,
            DropReason::MacGiveUp => self.mac_give_up += 1,
        }
    }
}

/// Everything `robonet stats` reconstructs from one JSONL artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    /// Total events parsed.
    pub events: u64,
    /// `failure` events seen.
    pub failures: u64,
    /// `detected` events seen.
    pub detections: u64,
    /// `report_delivered` events seen.
    pub reports_delivered: u64,
    /// `dispatched` events seen.
    pub dispatches: u64,
    /// `replaced` events seen.
    pub replacements: u64,
    /// Travel metres of each replacement, in event order — the same
    /// samples as `Metrics::travel_per_task`.
    pub travel_per_task: Vec<f64>,
    /// Hops of each delivered report, in event order — the same samples
    /// as `Metrics::report_hops`.
    pub report_hops: Vec<u32>,
    /// Dispatch→installation delay per replacement, reconstructed by
    /// pairing each `replaced` event with the earliest unmatched
    /// `dispatched` event for the same failed node. Seconds; an
    /// approximation of the in-process metric (which subtracts
    /// nanosecond timestamps before converting).
    pub repair_delay: Vec<f64>,
    /// Packet drops by reason.
    pub drops: DropCounts,
    /// `loc_update_flooded` events seen.
    pub loc_update_floods: u64,
    /// `robot_leg_started` events seen.
    pub legs_started: u64,
    /// `robot_leg_ended` events seen.
    pub legs_ended: u64,
    /// `fault_injected` events seen.
    pub faults_injected: u64,
    /// `report_retried` events seen.
    pub report_retries: u64,
    /// `dispatch_timed_out` events seen.
    pub dispatch_timeouts: u64,
    /// `robot_died` events seen.
    pub robot_deaths: u64,
    /// `robot_repaired` events seen.
    pub robot_repairs: u64,
    /// `takeover_assumed` events seen.
    pub takeovers: u64,
    /// Present when the artifact ended mid-record (crashed or
    /// still-writing producer); the aggregate covers the complete
    /// prefix.
    pub truncated: Option<TruncatedTail>,
}

impl TraceAggregate {
    /// Parses a whole JSONL document (one event per non-empty line,
    /// with an optional versioned header on the first line).
    ///
    /// Fails on the first malformed line or unsupported schema
    /// version, identifying it by 1-based line number — a truncated or
    /// hand-edited artifact should be loud, not silently half-counted.
    /// The one exception: an unterminated final line (crashed or
    /// still-writing producer) sets [`TraceAggregate::truncated`] and
    /// the complete prefix is aggregated normally.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut agg = TraceAggregate::default();
        let mut pending_dispatch: HashMap<NodeId, VecDeque<f64>> = HashMap::new();
        let tail = for_each_event_line(text, |event| agg.ingest(event, &mut pending_dispatch))?;
        agg.truncated = tail;
        Ok(agg)
    }

    fn ingest(&mut self, event: &TraceEvent, pending: &mut HashMap<NodeId, VecDeque<f64>>) {
        self.events += 1;
        match event {
            TraceEvent::Failure { .. } => self.failures += 1,
            TraceEvent::Detected { .. } => self.detections += 1,
            TraceEvent::ReportDelivered { hops, .. } => {
                self.reports_delivered += 1;
                self.report_hops.push(*hops);
            }
            TraceEvent::Dispatched { t, failed, .. } => {
                self.dispatches += 1;
                pending.entry(*failed).or_default().push_back(*t);
            }
            TraceEvent::Replaced {
                t, sensor, travel, ..
            } => {
                self.replacements += 1;
                self.travel_per_task.push(*travel);
                if let Some(dispatched_at) = pending.get_mut(sensor).and_then(VecDeque::pop_front) {
                    self.repair_delay.push(t - dispatched_at);
                }
            }
            TraceEvent::PacketDropped { reason, .. } => self.drops.record(*reason),
            TraceEvent::LocUpdateFlooded { .. } => self.loc_update_floods += 1,
            TraceEvent::RobotLegStarted { .. } => self.legs_started += 1,
            TraceEvent::RobotLegEnded { .. } => self.legs_ended += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::ReportRetried { .. } => self.report_retries += 1,
            TraceEvent::DispatchTimedOut { .. } => self.dispatch_timeouts += 1,
            TraceEvent::RobotDied { .. } => self.robot_deaths += 1,
            TraceEvent::RobotRepaired { .. } => self.robot_repairs += 1,
            TraceEvent::TakeoverAssumed { .. } => self.takeovers += 1,
            // Telemetry is a view of the run, not part of it — the
            // aggregate counts protocol work, so samples and health
            // verdicts only bump the total event count above.
            TraceEvent::TelemetrySample { .. } | TraceEvent::InvariantViolated { .. } => {}
        }
    }

    /// Figure 2's number: average travel per replaced failure (0.0 when
    /// no replacements) — bit-identical to
    /// `Summary::avg_travel_per_failure` for a complete trace.
    pub fn avg_travel_per_failure(&self) -> f64 {
        mean_f64(&self.travel_per_task).unwrap_or(0.0)
    }

    /// Figure 3's number: average report hops (0.0 when no reports) —
    /// bit-identical to `Summary::avg_report_hops` for a complete
    /// trace.
    pub fn avg_report_hops(&self) -> f64 {
        mean_u32(&self.report_hops).unwrap_or(0.0)
    }

    /// Mean reconstructed dispatch→installation delay (0.0 when no
    /// replacements matched a dispatch).
    pub fn avg_repair_delay(&self) -> f64 {
        mean_f64(&self.repair_delay).unwrap_or(0.0)
    }

    /// Total metres of completed legs.
    pub fn total_travel(&self) -> f64 {
        self.travel_per_task.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::sink::event_to_jsonl;
    use robonet_geom::Point;

    fn jsonl(events: &[TraceEvent]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str(&event_to_jsonl(e));
            out.push('\n');
        }
        out
    }

    #[test]
    fn aggregates_a_repair_story() {
        let events = vec![
            TraceEvent::Failure {
                t: 1.0,
                sensor: NodeId::new(5),
            },
            TraceEvent::Detected {
                t: 2.0,
                guardian: NodeId::new(3),
                failed: NodeId::new(5),
            },
            TraceEvent::ReportDelivered {
                t: 2.5,
                manager: NodeId::new(200),
                failed: NodeId::new(5),
                hops: 3,
            },
            TraceEvent::Dispatched {
                t: 2.5,
                robot: NodeId::new(200),
                failed: NodeId::new(5),
                departed: true,
            },
            TraceEvent::ReportDelivered {
                t: 3.0,
                manager: NodeId::new(200),
                failed: NodeId::new(6),
                hops: 5,
            },
            TraceEvent::Replaced {
                t: 62.5,
                robot: NodeId::new(200),
                sensor: NodeId::new(5),
                travel: 100.0,
                loc: Point::new(1.0, 2.0),
            },
            TraceEvent::PacketDropped {
                t: 70.0,
                at: NodeId::new(9),
                reason: DropReason::MacGiveUp,
            },
            TraceEvent::LocUpdateFlooded {
                t: 71.0,
                robot: NodeId::new(200),
                seq: 1,
            },
        ];
        let agg = TraceAggregate::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(agg.events, 8);
        assert_eq!(agg.failures, 1);
        assert_eq!(agg.detections, 1);
        assert_eq!(agg.reports_delivered, 2);
        assert_eq!(agg.dispatches, 1);
        assert_eq!(agg.replacements, 1);
        assert_eq!(agg.avg_travel_per_failure(), 100.0);
        assert_eq!(agg.avg_report_hops(), 4.0);
        assert_eq!(agg.repair_delay, vec![60.0]);
        assert_eq!(agg.avg_repair_delay(), 60.0);
        assert_eq!(agg.drops.mac_give_up, 1);
        assert_eq!(agg.drops.total(), 1);
        assert_eq!(agg.loc_update_floods, 1);
        assert_eq!(agg.total_travel(), 100.0);
    }

    #[test]
    fn repeated_failures_of_one_node_pair_fifo() {
        // The same sensor id can fail, be replaced, and fail again; the
        // delay pairing must match dispatches to replacements in order.
        let events = vec![
            TraceEvent::Dispatched {
                t: 10.0,
                robot: NodeId::new(200),
                failed: NodeId::new(5),
                departed: true,
            },
            TraceEvent::Replaced {
                t: 15.0,
                robot: NodeId::new(200),
                sensor: NodeId::new(5),
                travel: 10.0,
                loc: Point::new(0.0, 0.0),
            },
            TraceEvent::Dispatched {
                t: 100.0,
                robot: NodeId::new(200),
                failed: NodeId::new(5),
                departed: true,
            },
            TraceEvent::Replaced {
                t: 108.0,
                robot: NodeId::new(200),
                sensor: NodeId::new(5),
                travel: 10.0,
                loc: Point::new(0.0, 0.0),
            },
        ];
        let agg = TraceAggregate::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(agg.repair_delay, vec![5.0, 8.0]);
    }

    #[test]
    fn blank_lines_are_tolerated_bad_lines_are_located() {
        let good = jsonl(&[TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(5),
        }]);
        let text = format!("{good}\n\n{good}");
        let agg = TraceAggregate::from_jsonl(&text).unwrap();
        assert_eq!(agg.failures, 2);

        let broken = format!("{good}{{\"ev\":\"nope\",\"t\":0.0}}\n");
        let err = TraceAggregate::from_jsonl(&broken).unwrap_err();
        assert!(err.starts_with("line 2:"), "error was: {err}");
    }

    #[test]
    fn versioned_header_is_accepted_unknown_versions_rejected() {
        use crate::obs::sink::trace_header;
        let good = jsonl(&[TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(5),
        }]);
        let text = format!("{}\n{good}", trace_header());
        let agg = TraceAggregate::from_jsonl(&text).unwrap();
        assert_eq!(agg.failures, 1);
        assert_eq!(agg.events, 1, "the header is not an event");

        let future = format!("{{\"schema\":\"robonet-trace\",\"schema_version\":2}}\n{good}");
        let err = TraceAggregate::from_jsonl(&future).unwrap_err();
        assert!(err.contains("schema_version 2"), "error was: {err}");
    }

    #[test]
    fn empty_artifact_aggregates_to_zeroes() {
        let agg = TraceAggregate::from_jsonl("").unwrap();
        assert_eq!(agg.events, 0);
        assert_eq!(agg.avg_travel_per_failure(), 0.0);
        assert_eq!(agg.avg_report_hops(), 0.0);
        assert_eq!(agg.avg_repair_delay(), 0.0);
    }
}
