//! Trace replay: reconstructing world state from a JSONL artifact.
//!
//! A trace records *transitions* (failures, dispatches, robot legs,
//! replacements); this module integrates them back into *state* — which
//! sensors are up, where every robot is, which repairs are in flight —
//! at any simulated instant. Three layers:
//!
//! - [`ReplaySetup`] — the static scenario geometry. Positions are
//!   never serialized into the trace; they are re-derived from the run
//!   manifest (`algorithm`, `seed`, `k`, …) through the *same*
//!   [`field_deployment`](crate::harness::field_deployment) call the
//!   simulation itself used, so replayed coordinates are exact, not
//!   approximate.
//! - [`ReplayState`] — the event-by-event state machine. It also works
//!   without a setup (a headerless pipe has no manifest): nodes are
//!   then discovered from the events that mention them, and only the
//!   position-dependent views degrade.
//! - [`Film`] — the full-run timeline (robot legs, sensor outages)
//!   that `viz::anim` turns into an SMIL animation.
//!
//! Everything is deterministic: state is held in `BTreeMap`s keyed by
//! node id, every rendered summary is a pure function of the events
//! applied, and replaying a truncated prefix of a trace yields exactly
//! the state the full replay passed through at the truncation point
//! (property-tested in `tests/replay.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use robonet_des::NodeId;
use robonet_geom::{Bounds, Point};

use crate::config::{Algorithm, ScenarioConfig};
use crate::harness::{field_deployment, FieldDeployment};
use crate::trace::TraceEvent;

use super::json;
use super::sink::{LineCursor, TruncatedTail};

/// Static scenario geometry recovered for a trace: the deployment the
/// producing run started from, plus the constants replay needs
/// (robot speed for leg interpolation, total sim time for progress).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySetup {
    /// Algorithm label (registry name, e.g. `"dynamic"`).
    pub algorithm: String,
    /// The square field.
    pub bounds: Bounds,
    /// Sensor positions; index `i` is node id `i`.
    pub sensor_pos: Vec<Point>,
    /// Initial robot positions; index `r` is node id `n_sensors + r`.
    pub robot_home: Vec<Point>,
    /// The centralized manager's location, when the algorithm uses one.
    pub manager_loc: Option<Point>,
    /// Robot travel speed (m/s) — interpolates in-flight legs.
    pub robot_speed: f64,
    /// Total simulated time of the producing run (s).
    pub sim_time_s: f64,
}

impl ReplaySetup {
    /// Derives the setup from a full scenario configuration by running
    /// the shared deployment (bit-identical to the simulation's own).
    pub fn from_config(cfg: &ScenarioConfig) -> Self {
        let FieldDeployment {
            bounds,
            sensor_pos,
            robot_pos,
            manager,
            ..
        } = field_deployment(cfg);
        ReplaySetup {
            algorithm: cfg.algorithm.name().to_string(),
            bounds,
            sensor_pos,
            robot_home: robot_pos,
            manager_loc: manager.map(|(_, loc)| loc),
            robot_speed: cfg.robot_speed,
            sim_time_s: cfg.sim_time.as_secs_f64(),
        }
    }

    /// Rebuilds the setup from a run manifest (the `.manifest.json`
    /// sibling `robonet run --trace-out` writes).
    ///
    /// Older manifests lack `area_per_robot_side` / `robot_speed`; the
    /// field side then falls back to paper density
    /// (`200·√(spr/50)` metres per robot side, the same rule
    /// `run --sensors` uses) and the speed to the paper's 1 m/s.
    ///
    /// # Errors
    ///
    /// Fails with a description on unparseable JSON, an unknown
    /// algorithm, or inconsistent fleet/sensor counts.
    pub fn from_manifest(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("manifest: {e}"))?;
        let alg_name = v
            .get("algorithm")
            .and_then(|a| a.as_str())
            .ok_or("manifest: missing `algorithm`")?;
        let algorithm = Algorithm::parse(alg_name)
            .ok_or_else(|| format!("manifest: unknown algorithm `{alg_name}`"))?;
        let seed = v
            .get("seed")
            .and_then(|s| s.as_u64())
            .ok_or("manifest: missing `seed`")?;
        let k = v
            .get("k")
            .and_then(|s| s.as_u64())
            .ok_or("manifest: missing `k`")? as usize;
        let robots = v
            .get("robots")
            .and_then(|s| s.as_u64())
            .ok_or("manifest: missing `robots`")? as usize;
        let sensors = v
            .get("sensors")
            .and_then(|s| s.as_u64())
            .ok_or("manifest: missing `sensors`")? as usize;
        if k == 0 || robots != k * k {
            return Err(format!(
                "manifest: fleet of {robots} robots does not match k={k} (expected k²)"
            ));
        }
        if sensors == 0 || !sensors.is_multiple_of(robots) {
            return Err(format!(
                "manifest: {sensors} sensors not evenly divided over {robots} robots"
            ));
        }
        let spr = sensors / robots;
        let mut cfg = ScenarioConfig::paper(k, algorithm);
        cfg.seed = seed;
        cfg.sensors_per_robot = spr;
        cfg.area_per_robot_side = v
            .get("area_per_robot_side")
            .and_then(|s| s.as_f64())
            .unwrap_or_else(|| 200.0 * (spr as f64 / 50.0).sqrt());
        cfg.robot_speed = v.get("robot_speed").and_then(|s| s.as_f64()).unwrap_or(1.0);
        if let Some(t) = v.get("sim_time_s").and_then(|s| s.as_f64()) {
            cfg.sim_time = robonet_des::SimDuration::from_secs(t);
        }
        Ok(ReplaySetup::from_config(&cfg))
    }

    /// Number of sensors in the deployment.
    pub fn n_sensors(&self) -> usize {
        self.sensor_pos.len()
    }

    /// Number of robots in the fleet.
    pub fn n_robots(&self) -> usize {
        self.robot_home.len()
    }
}

/// A sensor's lifecycle phase at the replay instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorPhase {
    /// Up: beaconing, never failed or not currently down.
    Alive,
    /// Down: failed and not yet replaced (a coverage hole).
    Down,
}

/// Everything replay knows about one sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorView {
    /// Position (`None` when replaying without a setup and the trace
    /// has not revealed it via a `replaced` event).
    pub loc: Option<Point>,
    /// Current phase.
    pub phase: SensorPhase,
    /// Total failures so far (a replaced sensor can fail again).
    pub failures: u32,
    /// Total replacements installed at this position.
    pub replacements: u32,
    /// When the current outage began (`None` while alive).
    pub down_since: Option<f64>,
}

impl SensorView {
    fn fresh(loc: Option<Point>) -> Self {
        SensorView {
            loc,
            phase: SensorPhase::Alive,
            failures: 0,
            replacements: 0,
            down_since: None,
        }
    }
}

/// A robot leg in progress: driving from `from` to `to` since
/// `started` to repair `failed`.
#[derive(Debug, Clone, PartialEq)]
pub struct Leg {
    /// Departure point.
    pub from: Point,
    /// Destination (the failed sensor's position).
    pub to: Point,
    /// Departure time (s).
    pub started: f64,
    /// The failure being driven to.
    pub failed: NodeId,
}

/// Everything replay knows about one robot.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotView {
    /// Last settled position: home, or the end of the last completed
    /// leg (`None` when replaying without a setup and no leg has
    /// revealed a position yet).
    pub loc: Option<Point>,
    /// The leg in progress, if the robot is driving.
    pub leg: Option<Leg>,
    /// Completed legs.
    pub legs_done: u32,
    /// Metres of completed legs.
    pub travel: f64,
    /// Replacements installed.
    pub installs: u32,
    /// Repairs dispatched to this robot and not yet completed.
    pub queue: u32,
    /// `false` while broken down (fault injection).
    pub alive: bool,
}

impl RobotView {
    fn fresh(loc: Option<Point>) -> Self {
        RobotView {
            loc,
            leg: None,
            legs_done: 0,
            travel: 0.0,
            installs: 0,
            queue: 0,
            alive: true,
        }
    }

    /// Position at time `t`, interpolating linearly along an in-flight
    /// leg at `speed` m/s (clamped to the destination). Falls back to
    /// the departure point when `speed` is not positive.
    pub fn pos_at(&self, t: f64, speed: f64) -> Option<Point> {
        match &self.leg {
            Some(leg) => {
                let dx = leg.to.x - leg.from.x;
                let dy = leg.to.y - leg.from.y;
                let dist = (dx * dx + dy * dy).sqrt();
                if dist <= 0.0 || speed <= 0.0 {
                    return Some(leg.from);
                }
                let gone = (speed * (t - leg.started)).clamp(0.0, dist);
                Some(Point::new(
                    leg.from.x + dx * gone / dist,
                    leg.from.y + dy * gone / dist,
                ))
            }
            None => self.loc,
        }
    }
}

/// How far an open (unrepaired) failure has progressed through the
/// repair lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRepair {
    /// When the sensor failed.
    pub failed_at: f64,
    /// Furthest lifecycle event reached (`"failure"`, `"detected"`,
    /// `"report_delivered"` or `"dispatched"`).
    pub reached: &'static str,
}

/// Event tallies at the replay instant (mirrors
/// [`TraceAggregate`](super::TraceAggregate) counts, but time-bounded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// `failure` events applied.
    pub failures: u64,
    /// `detected` events applied.
    pub detections: u64,
    /// `report_delivered` events applied.
    pub reports_delivered: u64,
    /// `dispatched` events applied.
    pub dispatches: u64,
    /// `replaced` events applied.
    pub replacements: u64,
    /// `packet_dropped` events applied.
    pub drops: u64,
    /// `loc_update_flooded` events applied.
    pub loc_update_floods: u64,
    /// `robot_died` events applied.
    pub robot_deaths: u64,
    /// `robot_repaired` events applied.
    pub robot_repairs: u64,
    /// `takeover_assumed` events applied.
    pub takeovers: u64,
    /// `telemetry_sample` events applied.
    pub telemetry_samples: u64,
    /// `invariant_violated` events applied.
    pub invariant_violations: u64,
}

/// The replayed world at one instant: feed [`TraceEvent`]s in trace
/// order via [`apply`](Self::apply) and read the views back.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayState {
    /// Timestamp of the last event applied (0 before the first).
    pub time: f64,
    /// Events applied so far.
    pub events: u64,
    /// Robot travel speed used for leg interpolation.
    pub robot_speed: f64,
    sensors: BTreeMap<u32, SensorView>,
    robots: BTreeMap<u32, RobotView>,
    open: BTreeMap<u32, VecDeque<OpenRepair>>,
    counts: ReplayCounts,
}

impl ReplayState {
    /// A world seeded from `setup`: every sensor alive at its deployed
    /// position, every robot idle at home.
    pub fn new(setup: &ReplaySetup) -> Self {
        let sensors = setup
            .sensor_pos
            .iter()
            .enumerate()
            .map(|(i, &loc)| (i as u32, SensorView::fresh(Some(loc))))
            .collect();
        let n = setup.n_sensors() as u32;
        let robots = setup
            .robot_home
            .iter()
            .enumerate()
            .map(|(r, &loc)| (n + r as u32, RobotView::fresh(Some(loc))))
            .collect();
        ReplayState {
            time: 0.0,
            events: 0,
            robot_speed: setup.robot_speed,
            sensors,
            robots,
            open: BTreeMap::new(),
            counts: ReplayCounts::default(),
        }
    }

    /// A world with no geometry: nodes are discovered from the events
    /// that mention them. This is what a manifest-less pipe
    /// (`robonet run --trace-out - | robonet replay --follow -`) gets;
    /// positions stay `None` until the trace reveals them.
    pub fn discovering() -> Self {
        ReplayState {
            time: 0.0,
            events: 0,
            robot_speed: 1.0,
            sensors: BTreeMap::new(),
            robots: BTreeMap::new(),
            open: BTreeMap::new(),
            counts: ReplayCounts::default(),
        }
    }

    fn sensor(&mut self, id: NodeId) -> &mut SensorView {
        self.sensors
            .entry(id.as_u32())
            .or_insert_with(|| SensorView::fresh(None))
    }

    fn robot(&mut self, id: NodeId) -> &mut RobotView {
        self.robots
            .entry(id.as_u32())
            .or_insert_with(|| RobotView::fresh(None))
    }

    fn reach(&mut self, sensor: NodeId, stage: &'static str) {
        if let Some(q) = self.open.get_mut(&sensor.as_u32()) {
            // The earliest open failure that has not yet reached this
            // stage advances (FIFO, like span assembly).
            if let Some(r) = q.iter_mut().find(|r| r.reached != stage) {
                r.reached = stage;
            }
        }
    }

    /// Applies one event. Never panics on malformed streams: events
    /// that reference unknown nodes simply materialise them.
    pub fn apply(&mut self, event: &TraceEvent) {
        self.time = event.time();
        self.events += 1;
        match event {
            TraceEvent::Failure { t, sensor } => {
                self.counts.failures += 1;
                let s = self.sensor(*sensor);
                s.failures += 1;
                s.phase = SensorPhase::Down;
                s.down_since = Some(*t);
                self.open
                    .entry(sensor.as_u32())
                    .or_default()
                    .push_back(OpenRepair {
                        failed_at: *t,
                        reached: "failure",
                    });
            }
            TraceEvent::Detected { failed, .. } => {
                self.counts.detections += 1;
                self.reach(*failed, "detected");
            }
            TraceEvent::ReportDelivered { failed, .. } => {
                self.counts.reports_delivered += 1;
                self.reach(*failed, "report_delivered");
            }
            TraceEvent::Dispatched { robot, failed, .. } => {
                self.counts.dispatches += 1;
                self.reach(*failed, "dispatched");
                self.robot(*robot).queue += 1;
            }
            TraceEvent::RobotLegStarted {
                t,
                robot,
                failed,
                from,
                to,
            } => {
                let r = self.robot(*robot);
                r.loc = Some(*from);
                r.leg = Some(Leg {
                    from: *from,
                    to: *to,
                    started: *t,
                    failed: *failed,
                });
            }
            TraceEvent::RobotLegEnded {
                t: _,
                robot,
                travel,
            } => {
                let r = self.robot(*robot);
                if let Some(leg) = r.leg.take() {
                    r.loc = Some(leg.to);
                }
                r.legs_done += 1;
                r.travel += travel;
            }
            TraceEvent::Replaced {
                t,
                robot,
                sensor,
                loc,
                ..
            } => {
                self.counts.replacements += 1;
                let s = self.sensor(*sensor);
                s.phase = SensorPhase::Alive;
                s.replacements += 1;
                s.down_since = None;
                s.loc = Some(*loc);
                let _ = t;
                if let Some(q) = self.open.get_mut(&sensor.as_u32()) {
                    q.pop_front();
                    if q.is_empty() {
                        self.open.remove(&sensor.as_u32());
                    }
                }
                let r = self.robot(*robot);
                r.installs += 1;
                r.queue = r.queue.saturating_sub(1);
            }
            TraceEvent::PacketDropped { .. } => self.counts.drops += 1,
            TraceEvent::LocUpdateFlooded { .. } => self.counts.loc_update_floods += 1,
            TraceEvent::RobotDied { robot, .. } => {
                self.counts.robot_deaths += 1;
                self.robot(*robot).alive = false;
            }
            TraceEvent::RobotRepaired { robot, .. } => {
                self.counts.robot_repairs += 1;
                self.robot(*robot).alive = true;
            }
            TraceEvent::TakeoverAssumed { .. } => self.counts.takeovers += 1,
            TraceEvent::TelemetrySample { .. } => self.counts.telemetry_samples += 1,
            TraceEvent::InvariantViolated { .. } => self.counts.invariant_violations += 1,
            TraceEvent::FaultInjected { .. }
            | TraceEvent::ReportRetried { .. }
            | TraceEvent::DispatchTimedOut { .. } => {}
        }
    }

    /// Event tallies so far.
    pub fn counts(&self) -> &ReplayCounts {
        &self.counts
    }

    /// Sensor views in node-id order.
    pub fn sensors(&self) -> impl Iterator<Item = (u32, &SensorView)> {
        self.sensors.iter().map(|(&id, v)| (id, v))
    }

    /// Robot views in node-id order.
    pub fn robots(&self) -> impl Iterator<Item = (u32, &RobotView)> {
        self.robots.iter().map(|(&id, v)| (id, v))
    }

    /// Open (failed, unreplaced) repairs in node-id order.
    pub fn open_repairs(&self) -> impl Iterator<Item = (u32, &OpenRepair)> {
        self.open
            .iter()
            .flat_map(|(&id, q)| q.iter().map(move |r| (id, r)))
    }

    /// Sensors currently down.
    pub fn down_count(&self) -> usize {
        self.sensors
            .values()
            .filter(|s| s.phase == SensorPhase::Down)
            .count()
    }

    /// Robots currently driving a leg.
    pub fn en_route_count(&self) -> usize {
        self.robots.values().filter(|r| r.leg.is_some()).count()
    }

    /// Deterministic multi-line state summary at the last applied
    /// event's instant — the output of `replay` without `--at`, and
    /// (identically) the final state a completed `--follow` prints, so
    /// "follow ended where offline replay ends" is checkable with
    /// `diff`.
    pub fn summary(&self) -> String {
        self.summary_at(self.time)
    }

    /// Like [`summary`](Self::summary), but rendered at query instant
    /// `clock` (≥ the last applied event): in-flight robots are
    /// interpolated to `clock` and outage ages measured against it.
    pub fn summary_at(&self, clock: f64) -> String {
        let clock = clock.max(self.time);
        let mut out = String::new();
        let down = self.down_count();
        let _ = writeln!(out, "replay state @ {clock:.3} s");
        let _ = writeln!(out, "events applied:       {}", self.events);
        let _ = writeln!(
            out,
            "sensors:              {} up / {} down / {} total",
            self.sensors.len() - down,
            down,
            self.sensors.len()
        );
        let _ = writeln!(
            out,
            "failures:             {} ({} replaced, {} open)",
            self.counts.failures,
            self.counts.replacements,
            self.open.values().map(VecDeque::len).sum::<usize>()
        );
        for (id, r) in &self.open {
            for o in r {
                let _ = writeln!(
                    out,
                    "  open: sensor {:>4} down {:>9.1} s, reached {}",
                    id,
                    clock - o.failed_at,
                    o.reached
                );
            }
        }
        let _ = writeln!(
            out,
            "robots:               {} idle / {} en-route / {} down",
            self.robots
                .values()
                .filter(|r| r.alive && r.leg.is_none())
                .count(),
            self.en_route_count(),
            self.robots.values().filter(|r| !r.alive).count()
        );
        for (id, r) in &self.robots {
            let pos = match r.pos_at(clock, self.robot_speed) {
                Some(p) => format!("({:7.1}, {:7.1})", p.x, p.y),
                None => "(unknown)".to_string(),
            };
            let doing = match &r.leg {
                Some(leg) => format!("-> sensor {}", leg.failed.as_u32()),
                None if !r.alive => "down".to_string(),
                None => "idle".to_string(),
            };
            let _ = writeln!(
                out,
                "  robot {:>4} {pos}  {:<16} legs {:>3}  travel {:>9.1} m  installs {:>3}",
                id, doing, r.legs_done, r.travel, r.installs
            );
        }
        let c = &self.counts;
        let _ = writeln!(
            out,
            "traffic:              {} reports, {} dispatches, {} drops, {} floods",
            c.reports_delivered, c.dispatches, c.drops, c.loc_update_floods
        );
        if c.robot_deaths + c.takeovers > 0 {
            let _ = writeln!(
                out,
                "faults:               {} robot deaths, {} repairs, {} takeovers",
                c.robot_deaths, c.robot_repairs, c.takeovers
            );
        }
        if c.telemetry_samples > 0 {
            let _ = writeln!(out, "telemetry:            {} samples", c.telemetry_samples);
        }
        if c.invariant_violations > 0 {
            let _ = writeln!(
                out,
                "INVARIANT VIOLATIONS: {} (the producer's counters drifted from its events)",
                c.invariant_violations
            );
        }
        out
    }

    /// One-line rolling dashboard for `--follow` (stderr).
    pub fn dashboard(&self) -> String {
        format!(
            "t={:>9.1}s ev={:>7} | sensors {}/{} up | open {} | robots {} en-route | replaced {}/{}",
            self.time,
            self.events,
            self.sensors.len() - self.down_count(),
            self.sensors.len(),
            self.open.values().map(VecDeque::len).sum::<usize>(),
            self.en_route_count(),
            self.counts.replacements,
            self.counts.failures,
        )
    }
}

/// Replays `events`, applying only those with `time() <= t`, and
/// returns the state at instant `t`.
///
/// This is *exactly* a full replay of the trace truncated at `t` — the
/// state machine is a pure left fold over the event prefix, and
/// `state.time` is the timestamp of the last event applied (render the
/// query instant itself with [`ReplayState::summary_at`]).
pub fn state_at<'a>(
    setup: &ReplaySetup,
    events: impl IntoIterator<Item = &'a TraceEvent>,
    t: f64,
) -> ReplayState {
    let mut state = ReplayState::new(setup);
    for ev in events {
        if ev.time() <= t {
            state.apply(ev);
        }
    }
    state
}

/// An incremental replayer: a [`LineCursor`] feeding a [`ReplayState`],
/// the engine behind `replay --follow`. Bytes can arrive in any
/// chunking (mid-line is fine); a ragged tail is held until the rest of
/// the line shows up.
#[derive(Debug)]
pub struct Replayer {
    cursor: LineCursor,
    state: ReplayState,
}

impl Replayer {
    /// A replayer seeded from `setup`.
    pub fn new(setup: &ReplaySetup) -> Self {
        Replayer {
            cursor: LineCursor::new(),
            state: ReplayState::new(setup),
        }
    }

    /// A replayer with no geometry (manifest-less pipe).
    pub fn discovering() -> Self {
        Replayer {
            cursor: LineCursor::new(),
            state: ReplayState::discovering(),
        }
    }

    /// Consumes a chunk of trace bytes, applying every complete line.
    ///
    /// # Errors
    ///
    /// Propagates the cursor's malformed-record errors (with 1-based
    /// line numbers).
    pub fn feed(&mut self, chunk: &str) -> Result<(), String> {
        let state = &mut self.state;
        self.cursor.feed(chunk, |ev| state.apply(ev))
    }

    /// Closes the stream; an unterminated final record is reported as
    /// a [`TruncatedTail`], not an error.
    ///
    /// # Errors
    ///
    /// Propagates a malformed (terminated) final record.
    pub fn finish(self) -> Result<(ReplayState, Option<TruncatedTail>), String> {
        let mut state = self.state;
        let tail = self.cursor.finish(|ev| state.apply(ev))?;
        Ok((state, tail))
    }

    /// The state replayed so far.
    pub fn state(&self) -> &ReplayState {
        &self.state
    }

    /// Bytes currently buffered as an unterminated line.
    pub fn pending_bytes(&self) -> usize {
        self.cursor.pending_bytes()
    }
}

/// One robot leg on the film timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LegRecord {
    /// Robot node id.
    pub robot: u32,
    /// Departure point.
    pub from: Point,
    /// Destination.
    pub to: Point,
    /// Departure time (s).
    pub start: f64,
    /// Arrival time (s); `None` if the trace ended mid-leg.
    pub end: Option<f64>,
}

/// One sensor outage on the film timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageRecord {
    /// Sensor node id.
    pub sensor: u32,
    /// Failure position (from the deployment, or the eventual
    /// replacement location).
    pub loc: Option<Point>,
    /// Failure time (s).
    pub start: f64,
    /// Replacement time (s); `None` if never repaired on-trace.
    pub end: Option<f64>,
}

/// The full-run timeline `viz::anim` animates: every robot leg and
/// every sensor outage, in trace order, plus the time horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Film {
    /// Last event timestamp (animation duration; at least 1 s).
    pub t_end: f64,
    /// Robot legs in start order.
    pub legs: Vec<LegRecord>,
    /// Sensor outages in failure order.
    pub outages: Vec<OutageRecord>,
}

impl Film {
    /// Builds the timeline from a full event stream.
    ///
    /// `sensor_loc(id)` supplies deployment positions (outages of
    /// sensors the closure cannot place fall back to their replacement
    /// location, or stay position-less).
    pub fn build<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        sensor_loc: impl Fn(u32) -> Option<Point>,
    ) -> Film {
        let mut legs: Vec<LegRecord> = Vec::new();
        let mut open_leg: BTreeMap<u32, usize> = BTreeMap::new();
        let mut outages: Vec<OutageRecord> = Vec::new();
        let mut open_outage: BTreeMap<u32, VecDeque<usize>> = BTreeMap::new();
        let mut t_end = 0.0_f64;
        for ev in events {
            t_end = t_end.max(ev.time());
            match ev {
                TraceEvent::Failure { t, sensor } => {
                    let id = sensor.as_u32();
                    open_outage.entry(id).or_default().push_back(outages.len());
                    outages.push(OutageRecord {
                        sensor: id,
                        loc: sensor_loc(id),
                        start: *t,
                        end: None,
                    });
                }
                TraceEvent::Replaced { t, sensor, loc, .. } => {
                    let id = sensor.as_u32();
                    if let Some(i) = open_outage.get_mut(&id).and_then(VecDeque::pop_front) {
                        outages[i].end = Some(*t);
                        if outages[i].loc.is_none() {
                            outages[i].loc = Some(*loc);
                        }
                    }
                }
                TraceEvent::RobotLegStarted {
                    t, robot, from, to, ..
                } => {
                    let id = robot.as_u32();
                    open_leg.insert(id, legs.len());
                    legs.push(LegRecord {
                        robot: id,
                        from: *from,
                        to: *to,
                        start: *t,
                        end: None,
                    });
                }
                TraceEvent::RobotLegEnded { t, robot, .. } => {
                    if let Some(i) = open_leg.remove(&robot.as_u32()) {
                        legs[i].end = Some(*t);
                    }
                }
                _ => {}
            }
        }
        Film {
            t_end: t_end.max(1.0),
            legs,
            outages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::obs::sink::{event_to_jsonl, trace_header};

    fn story() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Failure {
                t: 10.0,
                sensor: NodeId::new(3),
            },
            TraceEvent::Detected {
                t: 40.0,
                guardian: NodeId::new(4),
                failed: NodeId::new(3),
            },
            TraceEvent::ReportDelivered {
                t: 41.0,
                manager: NodeId::new(200),
                failed: NodeId::new(3),
                hops: 2,
            },
            TraceEvent::Dispatched {
                t: 41.0,
                robot: NodeId::new(200),
                failed: NodeId::new(3),
                departed: true,
            },
            TraceEvent::RobotLegStarted {
                t: 41.0,
                robot: NodeId::new(200),
                failed: NodeId::new(3),
                from: Point::new(0.0, 0.0),
                to: Point::new(30.0, 40.0),
            },
            TraceEvent::RobotLegEnded {
                t: 91.0,
                robot: NodeId::new(200),
                travel: 50.0,
            },
            TraceEvent::Replaced {
                t: 91.0,
                robot: NodeId::new(200),
                sensor: NodeId::new(3),
                travel: 50.0,
                loc: Point::new(30.0, 40.0),
            },
        ]
    }

    #[test]
    fn setup_round_trips_through_a_manifest() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic).with_seed(9);
        let direct = ReplaySetup::from_config(&cfg);
        let manifest = "{\"algorithm\":\"dynamic\",\"seed\":9,\"k\":2,\"robots\":4,\
             \"sensors\":200,\"sim_time_s\":64000.0,\
             \"area_per_robot_side\":200.0,\"robot_speed\":1.0}";
        let recovered = ReplaySetup::from_manifest(manifest).unwrap();
        assert_eq!(direct, recovered, "manifest reconstructs the deployment");
        assert_eq!(recovered.n_sensors(), 200);
        assert_eq!(recovered.n_robots(), 4);
        assert!(recovered.manager_loc.is_none(), "dynamic has no manager");
    }

    #[test]
    fn manifest_defaults_cover_legacy_artifacts() {
        // PR 3-era manifests lack area_per_robot_side/robot_speed.
        let legacy =
            "{\"algorithm\":\"centralized\",\"seed\":1,\"k\":1,\"robots\":1,\"sensors\":50}";
        let setup = ReplaySetup::from_manifest(legacy).unwrap();
        assert_eq!(setup.bounds.width(), 200.0, "paper density fallback");
        assert_eq!(setup.robot_speed, 1.0);
        assert!(setup.manager_loc.is_some());

        let bad = "{\"algorithm\":\"centralized\",\"seed\":1,\"k\":2,\"robots\":3,\"sensors\":50}";
        assert!(ReplaySetup::from_manifest(bad).unwrap_err().contains("k"));
    }

    #[test]
    fn state_machine_tracks_a_repair() {
        let cfg = ScenarioConfig::paper(1, Algorithm::Centralized).with_seed(5);
        let setup = ReplaySetup::from_config(&cfg);
        let events = story();

        let mid = state_at(&setup, &events, 60.0);
        assert_eq!(mid.counts().failures, 1);
        assert_eq!(mid.counts().replacements, 0);
        assert_eq!(mid.down_count(), 1);
        assert_eq!(mid.en_route_count(), 1);
        let (_, open) = mid.open_repairs().next().unwrap();
        assert_eq!(open.reached, "dispatched");
        // In-flight interpolation: 19 s into a 50 m leg at 1 m/s along
        // the 3-4-5 direction.
        let robot = mid.robots().find(|(id, _)| *id == 200).unwrap().1;
        let p = robot.pos_at(60.0, 1.0).unwrap();
        assert!((p.x - 30.0 * 19.0 / 50.0).abs() < 1e-9);
        assert!((p.y - 40.0 * 19.0 / 50.0).abs() < 1e-9);

        let done = state_at(&setup, &events, 1e9);
        assert_eq!(done.counts().replacements, 1);
        assert_eq!(done.down_count(), 0);
        assert_eq!(done.open_repairs().count(), 0);
        let robot = done.robots().find(|(id, _)| *id == 200).unwrap().1;
        assert_eq!(robot.loc, Some(Point::new(30.0, 40.0)));
        assert_eq!(robot.legs_done, 1);
        assert_eq!(robot.installs, 1);
        assert!(done.summary().contains("1 replaced, 0 open"));
    }

    #[test]
    fn replayer_matches_offline_fold_under_any_chunking() {
        let cfg = ScenarioConfig::paper(1, Algorithm::Centralized).with_seed(5);
        let setup = ReplaySetup::from_config(&cfg);
        let events = story();
        let mut text = trace_header().to_string();
        text.push('\n');
        for ev in &events {
            text.push_str(&event_to_jsonl(ev));
            text.push('\n');
        }

        let mut offline = ReplayState::new(&setup);
        for ev in &events {
            offline.apply(ev);
        }

        for chunk in [1usize, 7, text.len()] {
            let mut r = Replayer::new(&setup);
            let mut rest = text.as_str();
            while !rest.is_empty() {
                let n = chunk.min(rest.len());
                r.feed(&rest[..n]).unwrap();
                rest = &rest[n..];
            }
            let (state, tail) = r.finish().unwrap();
            assert_eq!(tail, None);
            assert_eq!(state, offline, "chunk size {chunk}");
            assert_eq!(state.summary(), offline.summary());
        }
    }

    #[test]
    fn discovering_state_handles_a_headerless_pipe() {
        let events = story();
        let mut text = String::new();
        for ev in &events {
            text.push_str(&event_to_jsonl(ev));
            text.push('\n');
        }
        let mut r = Replayer::discovering();
        r.feed(&text).unwrap();
        let (state, _) = r.finish().unwrap();
        assert_eq!(state.counts().replacements, 1);
        // The replacement event revealed the sensor's position.
        let sensor = state.sensors().next().unwrap().1;
        assert_eq!(sensor.loc, Some(Point::new(30.0, 40.0)));
        assert!(state.dashboard().contains("replaced 1/1"));
    }

    #[test]
    fn film_records_legs_and_outages() {
        let events = story();
        let film = Film::build(&events, |_| None);
        assert_eq!(film.t_end, 91.0);
        assert_eq!(film.legs.len(), 1);
        assert_eq!(film.legs[0].end, Some(91.0));
        assert_eq!(film.outages.len(), 1);
        assert_eq!(film.outages[0].start, 10.0);
        assert_eq!(film.outages[0].end, Some(91.0));
        assert_eq!(
            film.outages[0].loc,
            Some(Point::new(30.0, 40.0)),
            "replacement location backfills the outage position"
        );

        // A trace that ends mid-leg leaves the records open.
        let film = Film::build(&events[..6], |_| None);
        assert_eq!(film.legs[0].end, Some(91.0));
        let film = Film::build(&events[..5], |_| None);
        assert_eq!(film.legs[0].end, None);
        assert_eq!(film.outages[0].end, None);
    }
}
