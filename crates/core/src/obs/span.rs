//! Causal repair-lifecycle spans: per-failure latency decomposition.
//!
//! The paper evaluates *overheads* (travel metres, hops); the quantity
//! a maintained network actually feels is **dead time** — how long a
//! coverage hole exists between a sensor's failure and its replacement.
//! This module correlates the loose event stream
//! (`failure` → `detected` → `report_delivered` → `dispatched` →
//! `robot_leg_ended` → `replaced`) into one [`RepairSpan`] per repaired
//! failure, decomposed into causal stages:
//!
//! | stage | interval | meaning |
//! |---|---|---|
//! | `detection` | failure → detected | guardian timeout + probe |
//! | `report_transit` | detected → report_delivered | multi-hop report |
//! | `dispatch_decision` | report_delivered → dispatched | manager decision (incl. centralized's request transit) |
//! | `travel` | dispatched → final leg end | queue wait + robot motion |
//! | `install` | final leg end → replaced | installation (0 in this model) |
//!
//! The stages sum to the end-to-end dead time ([`RepairSpan::total`]).
//! Each stage is an `Option`: the flow-level simulator emits no
//! `detected`/`report_delivered` events, so its spans carry only the
//! stages its event stream supports.
//!
//! The [`SpanAssembler`] is usable **online** (tee the live event
//! stream through a [`SpanSink`], or let the harness feed its internal
//! assembler) and **offline** ([`SpanAssembler::from_jsonl`] over a
//! trace artifact); both paths share one `ingest` and produce
//! byte-identical tables for the same events. Anomalies — failures
//! never repaired, events that match no open span, out-of-order
//! timestamps — are flagged on the [`SpanReport`], never panicked on.

use std::collections::{HashMap, VecDeque};

use robonet_des::NodeId;

use crate::trace::TraceEvent;

use super::quantile::QuantileSketch;
use super::sink::{for_each_event_line, TruncatedTail};

/// One causal stage of a repair lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Failure → guardian detection.
    Detection,
    /// Detection → report reaches a manager.
    ReportTransit,
    /// Report delivery → robot dispatched (for the centralized
    /// algorithm this includes the manager→robot request transit).
    DispatchDecision,
    /// Dispatch → the serving robot's final leg ends (includes queue
    /// wait while the robot finishes earlier tasks).
    Travel,
    /// Final leg end → replacement recorded (0 in the current model;
    /// reserved for a future installation-time model).
    Install,
}

impl Stage {
    /// Every stage, in causal (and report) order.
    pub const ALL: [Stage; 5] = [
        Stage::Detection,
        Stage::ReportTransit,
        Stage::DispatchDecision,
        Stage::Travel,
        Stage::Install,
    ];

    /// Snake_case stage name used in reports and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Detection => "detection",
            Stage::ReportTransit => "report_transit",
            Stage::DispatchDecision => "dispatch_decision",
            Stage::Travel => "travel",
            Stage::Install => "install",
        }
    }

    /// Registry subsystem for this stage's gauges (`span.<stage>`).
    pub fn subsystem(self) -> &'static str {
        match self {
            Stage::Detection => "span.detection",
            Stage::ReportTransit => "span.report_transit",
            Stage::DispatchDecision => "span.dispatch_decision",
            Stage::Travel => "span.travel",
            Stage::Install => "span.install",
        }
    }
}

/// One repaired failure's decomposed latency. All durations in sim
/// seconds; a `None` stage means the trace carried no event for it.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairSpan {
    /// The failed (and replaced) sensor.
    pub sensor: NodeId,
    /// The robot that performed the replacement.
    pub robot: NodeId,
    /// When the sensor failed.
    pub failed_at: f64,
    /// When the replacement completed.
    pub replaced_at: f64,
    /// Failure → detection.
    pub detection: Option<f64>,
    /// Detection → report delivered.
    pub report_transit: Option<f64>,
    /// Report delivered → dispatched.
    pub dispatch_decision: Option<f64>,
    /// Dispatched → final leg end.
    pub travel: Option<f64>,
    /// Final leg end → replaced.
    pub install: Option<f64>,
}

impl RepairSpan {
    /// End-to-end dead time: failure → replacement.
    pub fn total(&self) -> f64 {
        self.replaced_at - self.failed_at
    }

    /// Duration of `stage`, if the trace carried its events.
    pub fn stage(&self, stage: Stage) -> Option<f64> {
        match stage {
            Stage::Detection => self.detection,
            Stage::ReportTransit => self.report_transit,
            Stage::DispatchDecision => self.dispatch_decision,
            Stage::Travel => self.travel,
            Stage::Install => self.install,
        }
    }
}

/// A failure that never closed: no `replaced` event arrived before the
/// trace ended.
#[derive(Debug, Clone, PartialEq)]
pub struct OrphanSpan {
    /// The sensor that failed.
    pub sensor: NodeId,
    /// When it failed.
    pub failed_at: f64,
    /// The furthest lifecycle event the failure reached
    /// (`"failure"`, `"detected"`, `"report_delivered"` or
    /// `"dispatched"`).
    pub reached: &'static str,
}

/// A span mid-assembly: timestamps filled in as events arrive.
#[derive(Debug, Clone)]
struct OpenSpan {
    failed_at: f64,
    detected_at: Option<f64>,
    report_at: Option<f64>,
    dispatched_at: Option<f64>,
}

impl OpenSpan {
    fn reached(&self) -> &'static str {
        if self.dispatched_at.is_some() {
            "dispatched"
        } else if self.report_at.is_some() {
            "report_delivered"
        } else if self.detected_at.is_some() {
            "detected"
        } else {
            "failure"
        }
    }
}

/// Correlates a stream of [`TraceEvent`]s into [`RepairSpan`]s.
///
/// Feed it events in trace order via [`ingest`](Self::ingest) (or use
/// it as an [`EventSink`](super::EventSink) through [`SpanSink`]), then
/// call [`finish`](Self::finish) for the [`SpanReport`]. Every output
/// ordering is deterministic: closed spans appear in replacement
/// order, orphans sorted by `(failed_at, sensor)` — hash-map iteration
/// never reaches the report.
#[derive(Debug, Default)]
pub struct SpanAssembler {
    open: HashMap<NodeId, VecDeque<OpenSpan>>,
    last_leg_end: HashMap<NodeId, f64>,
    closed: Vec<RepairSpan>,
    failures: u64,
    unmatched_events: u64,
    out_of_order: u64,
    redispatches: u64,
    stage_sketches: [QuantileSketch; 5],
    total_sketch: QuantileSketch,
}

impl SpanAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spans still open (failed, not yet replaced).
    pub fn open_count(&self) -> usize {
        self.open.values().map(VecDeque::len).sum()
    }

    /// Number of spans closed so far.
    pub fn closed_count(&self) -> usize {
        self.closed.len()
    }

    /// Consumes one event. Never panics on malformed streams: events
    /// that match no open span bump `unmatched_events`, negative stage
    /// intervals bump `out_of_order` and drop that stage to `None`.
    pub fn ingest(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Failure { t, sensor } => {
                self.failures += 1;
                self.open.entry(*sensor).or_default().push_back(OpenSpan {
                    failed_at: *t,
                    detected_at: None,
                    report_at: None,
                    dispatched_at: None,
                });
            }
            TraceEvent::Detected { t, failed, .. } => {
                let t = *t;
                self.stamp(
                    *failed,
                    |s| s.detected_at.is_none(),
                    |s| s.detected_at = Some(t),
                );
            }
            TraceEvent::ReportDelivered { t, failed, .. } => {
                let t = *t;
                self.stamp(
                    *failed,
                    |s| s.report_at.is_none(),
                    |s| s.report_at = Some(t),
                );
            }
            TraceEvent::Dispatched { t, failed, .. } => {
                let t = *t;
                match self.open.get_mut(failed) {
                    Some(spans) if !spans.is_empty() => {
                        match spans.iter_mut().find(|s| s.dispatched_at.is_none()) {
                            Some(span) => span.dispatched_at = Some(t),
                            // Every open span for this sensor is already
                            // dispatched: the recovery protocol re-dispatched
                            // a stalled repair. The first dispatch keeps the
                            // stage decomposition (the failure's clock
                            // started then); the re-dispatch is counted, not
                            // flagged as an anomaly.
                            None => self.redispatches += 1,
                        }
                    }
                    _ => self.unmatched_events += 1,
                }
            }
            TraceEvent::RobotLegEnded { t, robot, .. } => {
                self.last_leg_end.insert(*robot, *t);
            }
            TraceEvent::Replaced {
                t, robot, sensor, ..
            } => match self.open.get_mut(sensor).and_then(VecDeque::pop_front) {
                Some(span) => self.close(span, *sensor, *t, *robot),
                None => self.unmatched_events += 1,
            },
            _ => {}
        }
    }

    /// Applies `set` to the first open span for `sensor` that still
    /// wants this lifecycle timestamp (FIFO — repeated failures of one
    /// sensor resolve in order). Re-occurrences for an already-stamped
    /// span (report retries, duplicate deliveries) are normal protocol
    /// behaviour and ignored; an event for a sensor with no open span
    /// at all is counted as unmatched.
    fn stamp(
        &mut self,
        sensor: NodeId,
        wants: impl Fn(&OpenSpan) -> bool,
        set: impl FnOnce(&mut OpenSpan),
    ) {
        match self.open.get_mut(&sensor) {
            Some(spans) if !spans.is_empty() => {
                if let Some(span) = spans.iter_mut().find(|s| wants(s)) {
                    set(span);
                }
            }
            _ => self.unmatched_events += 1,
        }
    }

    fn close(&mut self, span: OpenSpan, sensor: NodeId, replaced_at: f64, robot: NodeId) {
        // The serving robot's final leg ends at the replacement instant;
        // accept its recorded leg end only if it falls inside the span
        // (a stale end from an earlier task must not leak in).
        let leg_end = self
            .last_leg_end
            .get(&robot)
            .copied()
            .filter(|&e| e >= span.failed_at && e <= replaced_at)
            .unwrap_or(replaced_at);
        let detection = self.interval(Some(span.failed_at), span.detected_at);
        let report_transit = self.interval(span.detected_at, span.report_at);
        let dispatch_decision = self.interval(span.report_at, span.dispatched_at);
        let travel = self.interval(span.dispatched_at, Some(leg_end));
        let install = self.interval(Some(leg_end), Some(replaced_at));
        let closed = RepairSpan {
            sensor,
            robot,
            failed_at: span.failed_at,
            replaced_at,
            detection,
            report_transit,
            dispatch_decision,
            travel,
            install,
        };
        for (stage, sketch) in Stage::ALL.iter().zip(self.stage_sketches.iter_mut()) {
            if let Some(d) = closed.stage(*stage) {
                sketch.observe(d);
            }
        }
        self.total_sketch.observe(closed.total());
        self.closed.push(closed);
    }

    /// `to - from` when both ends are known and ordered; a negative
    /// interval marks out-of-order events and yields `None`.
    fn interval(&mut self, from: Option<f64>, to: Option<f64>) -> Option<f64> {
        let d = to? - from?;
        if d < 0.0 {
            self.out_of_order += 1;
            None
        } else {
            Some(d)
        }
    }

    /// Closes the books: remaining open spans become orphans (sorted by
    /// `(failed_at, sensor)` for determinism).
    pub fn finish(mut self) -> SpanReport {
        let mut orphans: Vec<OrphanSpan> = self
            .open
            .drain()
            .flat_map(|(sensor, spans)| {
                spans.into_iter().map(move |s| OrphanSpan {
                    sensor,
                    failed_at: s.failed_at,
                    reached: s.reached(),
                })
            })
            .collect();
        orphans.sort_by(|a, b| {
            a.failed_at
                .total_cmp(&b.failed_at)
                .then(a.sensor.as_u32().cmp(&b.sensor.as_u32()))
        });
        SpanReport {
            spans: self.closed,
            orphans,
            failures: self.failures,
            unmatched_events: self.unmatched_events,
            out_of_order: self.out_of_order,
            redispatches: self.redispatches,
            truncated: None,
            stage_sketches: self.stage_sketches,
            total_sketch: self.total_sketch,
        }
    }

    /// Assembles spans offline from a JSONL trace artifact (the
    /// `robonet spans` path). Accepts a versioned header line, skips
    /// blanks, and fails loudly with a 1-based line number on the
    /// first malformed record — exactly like `robonet stats`. An
    /// unterminated final line (crashed or still-writing producer)
    /// sets [`SpanReport::truncated`] instead; the complete prefix is
    /// assembled normally.
    pub fn from_jsonl(text: &str) -> Result<SpanReport, String> {
        let mut assembler = SpanAssembler::new();
        let tail = for_each_event_line(text, |event| assembler.ingest(event))?;
        let mut report = assembler.finish();
        report.truncated = tail;
        Ok(report)
    }
}

/// Everything span assembly learned from one run or trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// Closed spans, in replacement order.
    pub spans: Vec<RepairSpan>,
    /// Failures never repaired, sorted by `(failed_at, sensor)`.
    pub orphans: Vec<OrphanSpan>,
    /// `failure` events seen.
    pub failures: u64,
    /// Events that matched no open span (e.g. a `replaced` with no
    /// preceding `failure`).
    pub unmatched_events: u64,
    /// Stage intervals dropped because their events were out of order.
    pub out_of_order: u64,
    /// Dispatches beyond the first for an already-dispatched failure —
    /// the recovery protocol re-dispatching a stalled repair.
    pub redispatches: u64,
    /// Present when an offline artifact ended mid-record; the report
    /// covers the complete prefix. Always `None` for online assembly.
    pub truncated: Option<TruncatedTail>,
    stage_sketches: [QuantileSketch; 5],
    total_sketch: QuantileSketch,
}

/// One row of the per-stage latency table.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage label (`"detection"` … `"install"`, or `"total"`).
    pub stage: &'static str,
    /// Spans that carried this stage.
    pub count: u64,
    /// Exact mean duration (s).
    pub mean_s: f64,
    /// Median, from the streaming sketch (s).
    pub p50_s: f64,
    /// 95th percentile, from the streaming sketch (s).
    pub p95_s: f64,
    /// 99th percentile, from the streaming sketch (s).
    pub p99_s: f64,
    /// Exact maximum (s).
    pub max_s: f64,
}

impl SpanReport {
    /// Replacements that closed a span.
    pub fn replacements(&self) -> u64 {
        self.spans.len() as u64
    }

    /// The streaming sketch behind one stage's percentiles.
    pub fn stage_sketch(&self, stage: Stage) -> &QuantileSketch {
        let i = Stage::ALL.iter().position(|s| *s == stage).unwrap();
        &self.stage_sketches[i]
    }

    /// The streaming sketch over end-to-end dead time.
    pub fn total_sketch(&self) -> &QuantileSketch {
        &self.total_sketch
    }

    /// Publishes the decomposition into a [`MetricsRegistry`]:
    /// assembly counters under `span.assembler.*` and per-stage
    /// p50/p95/p99 gauges under `span.<stage>.*` (stages with no
    /// observations are omitted).
    ///
    /// [`MetricsRegistry`]: super::MetricsRegistry
    pub fn snapshot_into(&self, registry: &mut super::MetricsRegistry) {
        registry.set("span.assembler", "spans", self.replacements());
        registry.set("span.assembler", "orphans", self.orphans.len() as u64);
        registry.set("span.assembler", "unmatched_events", self.unmatched_events);
        registry.set("span.assembler", "out_of_order", self.out_of_order);
        registry.set("span.assembler", "redispatches", self.redispatches);
        let stages = Stage::ALL
            .iter()
            .map(|s| (s.subsystem(), self.stage_sketch(*s)))
            .chain(std::iter::once(("span.total", &self.total_sketch)));
        for (subsystem, sketch) in stages {
            if sketch.count() == 0 {
                continue;
            }
            registry.set_gauge(subsystem, "p50_s", sketch.quantile(0.50).unwrap_or(0.0));
            registry.set_gauge(subsystem, "p95_s", sketch.quantile(0.95).unwrap_or(0.0));
            registry.set_gauge(subsystem, "p99_s", sketch.quantile(0.99).unwrap_or(0.0));
        }
    }

    /// The latency table: one row per stage in causal order, then a
    /// `total` row. Stages no span carried (count 0) are omitted.
    pub fn stage_rows(&self) -> Vec<StageRow> {
        let mut rows = Vec::with_capacity(6);
        for (stage, sketch) in Stage::ALL.iter().zip(self.stage_sketches.iter()) {
            if let Some(row) = sketch_row(stage.label(), sketch) {
                rows.push(row);
            }
        }
        if let Some(row) = sketch_row("total", &self.total_sketch) {
            rows.push(row);
        }
        rows
    }
}

fn sketch_row(stage: &'static str, sketch: &QuantileSketch) -> Option<StageRow> {
    if sketch.count() == 0 {
        return None;
    }
    Some(StageRow {
        stage,
        count: sketch.count(),
        mean_s: sketch.mean().unwrap_or(0.0),
        p50_s: sketch.quantile(0.50).unwrap_or(0.0),
        p95_s: sketch.quantile(0.95).unwrap_or(0.0),
        p99_s: sketch.quantile(0.99).unwrap_or(0.0),
        max_s: sketch.max().unwrap_or(0.0),
    })
}

/// An [`EventSink`](super::EventSink) adapter: tee the live event
/// stream into span assembly during a run. The flow-level simulator's
/// `run_with_spans` uses it; the packet-level harness keeps its own
/// assembler so spans work even when only a ring sink is attached.
#[derive(Debug, Default)]
pub struct SpanSink {
    assembler: SpanAssembler,
}

impl SpanSink {
    /// Creates a sink with an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes assembly and yields the report.
    pub fn into_report(self) -> SpanReport {
        self.assembler.finish()
    }
}

impl super::EventSink for SpanSink {
    fn record(&mut self, event: &TraceEvent) {
        self.assembler.ingest(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DropReason;
    use robonet_geom::Point;

    fn full_story(sensor: u32, offset: f64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::Failure {
                t: offset,
                sensor: NodeId::new(sensor),
            },
            TraceEvent::Detected {
                t: offset + 4.0,
                guardian: NodeId::new(1),
                failed: NodeId::new(sensor),
            },
            TraceEvent::ReportDelivered {
                t: offset + 4.5,
                manager: NodeId::new(200),
                failed: NodeId::new(sensor),
                hops: 2,
            },
            TraceEvent::Dispatched {
                t: offset + 5.0,
                robot: NodeId::new(200),
                failed: NodeId::new(sensor),
                departed: true,
            },
            TraceEvent::RobotLegEnded {
                t: offset + 65.0,
                robot: NodeId::new(200),
                travel: 120.0,
            },
            TraceEvent::Replaced {
                t: offset + 65.0,
                robot: NodeId::new(200),
                sensor: NodeId::new(sensor),
                travel: 120.0,
                loc: Point::new(3.0, 4.0),
            },
        ]
    }

    #[test]
    fn decomposes_a_full_lifecycle() {
        let mut a = SpanAssembler::new();
        for ev in full_story(7, 10.0) {
            a.ingest(&ev);
        }
        let report = a.finish();
        assert_eq!(report.failures, 1);
        assert_eq!(report.replacements(), 1);
        assert!(report.orphans.is_empty());
        assert_eq!(report.unmatched_events, 0);
        let span = &report.spans[0];
        assert_eq!(span.sensor, NodeId::new(7));
        assert_eq!(span.robot, NodeId::new(200));
        assert_eq!(span.detection, Some(4.0));
        assert_eq!(span.report_transit, Some(0.5));
        assert_eq!(span.dispatch_decision, Some(0.5));
        assert_eq!(span.travel, Some(60.0));
        assert_eq!(span.install, Some(0.0));
        assert_eq!(span.total(), 65.0);
        let sum: f64 = Stage::ALL.iter().filter_map(|s| span.stage(*s)).sum();
        assert_eq!(sum, span.total(), "stages sum to end-to-end dead time");
    }

    #[test]
    fn flow_level_stream_yields_travel_only() {
        // fastsim emits no detected/report_delivered events.
        let events = vec![
            TraceEvent::Failure {
                t: 2.0,
                sensor: NodeId::new(9),
            },
            TraceEvent::Dispatched {
                t: 2.0,
                robot: NodeId::new(100),
                failed: NodeId::new(9),
                departed: true,
            },
            TraceEvent::RobotLegEnded {
                t: 42.0,
                robot: NodeId::new(100),
                travel: 80.0,
            },
            TraceEvent::Replaced {
                t: 42.0,
                robot: NodeId::new(100),
                sensor: NodeId::new(9),
                travel: 80.0,
                loc: Point::new(0.0, 0.0),
            },
        ];
        let mut a = SpanAssembler::new();
        for ev in &events {
            a.ingest(ev);
        }
        let report = a.finish();
        let span = &report.spans[0];
        assert_eq!(span.detection, None);
        assert_eq!(span.report_transit, None);
        assert_eq!(span.dispatch_decision, None);
        assert_eq!(span.travel, Some(40.0));
        assert_eq!(span.install, Some(0.0));
        let rows = report.stage_rows();
        let labels: Vec<_> = rows.iter().map(|r| r.stage).collect();
        assert_eq!(labels, vec!["travel", "install", "total"]);
    }

    #[test]
    fn unclosed_failures_become_sorted_orphans() {
        let mut a = SpanAssembler::new();
        a.ingest(&TraceEvent::Failure {
            t: 9.0,
            sensor: NodeId::new(4),
        });
        a.ingest(&TraceEvent::Failure {
            t: 3.0,
            sensor: NodeId::new(8),
        });
        a.ingest(&TraceEvent::Detected {
            t: 10.0,
            guardian: NodeId::new(1),
            failed: NodeId::new(4),
        });
        assert_eq!(a.open_count(), 2);
        let report = a.finish();
        assert_eq!(report.failures, 2);
        assert_eq!(report.replacements(), 0);
        assert_eq!(report.orphans.len(), 2);
        assert_eq!(report.orphans[0].sensor, NodeId::new(8), "sorted by time");
        assert_eq!(report.orphans[0].reached, "failure");
        assert_eq!(report.orphans[1].sensor, NodeId::new(4));
        assert_eq!(report.orphans[1].reached, "detected");
    }

    #[test]
    fn unmatched_and_out_of_order_events_are_flagged_not_fatal() {
        let mut a = SpanAssembler::new();
        // A replacement with no preceding failure.
        a.ingest(&TraceEvent::Replaced {
            t: 5.0,
            robot: NodeId::new(100),
            sensor: NodeId::new(1),
            travel: 1.0,
            loc: Point::new(0.0, 0.0),
        });
        // A detection for a sensor that never failed.
        a.ingest(&TraceEvent::Detected {
            t: 6.0,
            guardian: NodeId::new(2),
            failed: NodeId::new(3),
        });
        // An out-of-order detection (before the failure's timestamp).
        a.ingest(&TraceEvent::Failure {
            t: 10.0,
            sensor: NodeId::new(5),
        });
        a.ingest(&TraceEvent::Detected {
            t: 8.0,
            guardian: NodeId::new(2),
            failed: NodeId::new(5),
        });
        a.ingest(&TraceEvent::Replaced {
            t: 20.0,
            robot: NodeId::new(100),
            sensor: NodeId::new(5),
            travel: 1.0,
            loc: Point::new(0.0, 0.0),
        });
        let report = a.finish();
        assert_eq!(report.unmatched_events, 2);
        assert_eq!(report.out_of_order, 1);
        assert_eq!(report.replacements(), 1, "only the matched close counts");
        assert_eq!(report.spans[0].detection, None, "bad stage dropped");
        assert_eq!(report.spans[0].total(), 10.0, "total survives");
    }

    #[test]
    fn repeated_failures_of_one_sensor_resolve_fifo() {
        let mut a = SpanAssembler::new();
        for offset in [0.0, 100.0] {
            for ev in full_story(7, offset) {
                a.ingest(&ev);
            }
        }
        let report = a.finish();
        assert_eq!(report.replacements(), 2);
        assert_eq!(report.spans[0].failed_at, 0.0);
        assert_eq!(report.spans[1].failed_at, 100.0);
        assert!(report.orphans.is_empty());
    }

    #[test]
    fn retried_detections_are_benign_and_first_wins() {
        let mut a = SpanAssembler::new();
        a.ingest(&TraceEvent::Failure {
            t: 0.0,
            sensor: NodeId::new(7),
        });
        for t in [4.0, 9.0] {
            // A report retry re-emits `detected` for the same failure.
            a.ingest(&TraceEvent::Detected {
                t,
                guardian: NodeId::new(1),
                failed: NodeId::new(7),
            });
        }
        a.ingest(&TraceEvent::Replaced {
            t: 20.0,
            robot: NodeId::new(100),
            sensor: NodeId::new(7),
            travel: 5.0,
            loc: Point::new(0.0, 0.0),
        });
        let report = a.finish();
        assert_eq!(report.unmatched_events, 0, "retries are not anomalies");
        assert_eq!(report.spans[0].detection, Some(4.0), "first detection wins");
    }

    #[test]
    fn redispatch_is_counted_and_first_dispatch_keeps_the_stage_clock() {
        let mut a = SpanAssembler::new();
        a.ingest(&TraceEvent::Failure {
            t: 0.0,
            sensor: NodeId::new(7),
        });
        a.ingest(&TraceEvent::Dispatched {
            t: 5.0,
            robot: NodeId::new(100),
            failed: NodeId::new(7),
            departed: true,
        });
        // The dispatch stalls (lost order / dead robot); the manager
        // re-dispatches to another robot.
        a.ingest(&TraceEvent::Dispatched {
            t: 30.0,
            robot: NodeId::new(101),
            failed: NodeId::new(7),
            departed: true,
        });
        a.ingest(&TraceEvent::RobotLegEnded {
            t: 60.0,
            robot: NodeId::new(101),
            travel: 40.0,
        });
        a.ingest(&TraceEvent::Replaced {
            t: 60.0,
            robot: NodeId::new(101),
            sensor: NodeId::new(7),
            travel: 40.0,
            loc: Point::new(0.0, 0.0),
        });
        let report = a.finish();
        assert_eq!(report.redispatches, 1);
        assert_eq!(
            report.unmatched_events, 0,
            "a re-dispatch is not an anomaly"
        );
        assert!(report.orphans.is_empty());
        assert_eq!(report.replacements(), 1);
        let span = &report.spans[0];
        assert_eq!(
            span.travel,
            Some(55.0),
            "clock runs from the first dispatch"
        );
        assert_eq!(span.total(), 60.0);
    }

    #[test]
    fn other_events_are_ignored() {
        let mut a = SpanAssembler::new();
        a.ingest(&TraceEvent::PacketDropped {
            t: 1.0,
            at: NodeId::new(1),
            reason: DropReason::TtlExpired,
        });
        a.ingest(&TraceEvent::LocUpdateFlooded {
            t: 2.0,
            robot: NodeId::new(100),
            seq: 1,
        });
        a.ingest(&TraceEvent::RobotLegStarted {
            t: 3.0,
            robot: NodeId::new(100),
            failed: NodeId::new(1),
            from: Point::new(0.0, 0.0),
            to: Point::new(1.0, 1.0),
        });
        let report = a.finish();
        assert_eq!(report.failures, 0);
        assert_eq!(report.unmatched_events, 0);
        assert!(report.stage_rows().is_empty());
    }

    #[test]
    fn span_sink_assembles_while_recording() {
        use crate::obs::EventSink;
        let mut sink = SpanSink::new();
        assert!(sink.is_enabled());
        for ev in full_story(3, 0.0) {
            sink.record(&ev);
        }
        let report = sink.into_report();
        assert_eq!(report.replacements(), 1);
        assert_eq!(report.spans[0].sensor, NodeId::new(3));
    }

    #[test]
    fn from_jsonl_matches_online_ingestion() {
        use crate::obs::sink::event_to_jsonl;
        let events: Vec<TraceEvent> = [full_story(1, 0.0), full_story(2, 50.0)].concat();
        let mut online = SpanAssembler::new();
        let mut text = String::new();
        for ev in &events {
            online.ingest(ev);
            text.push_str(&event_to_jsonl(ev));
            text.push('\n');
        }
        let offline = SpanAssembler::from_jsonl(&text).unwrap();
        assert_eq!(online.finish(), offline, "online/offline parity");
    }
}
