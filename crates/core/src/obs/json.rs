//! Minimal hand-rolled JSON — just enough for JSONL run artifacts.
//!
//! The workspace is hermetic (no registry dependencies), so both the
//! writer and the reader live in-tree. The subset is deliberate: objects,
//! arrays, strings, bools, null, and numbers. Numbers are serialized with
//! Rust's shortest-round-trip `{:?}` formatting for `f64`, which means a
//! value written here and parsed back compares bit-identical — the
//! property `robonet stats` relies on to reproduce in-process summaries
//! exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Object keys are kept in a `BTreeMap`, so re-serializing a value is
/// deterministic (sorted keys) even if the input was not.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in shortest-round-trip form.
///
/// Non-finite values have no JSON representation; they serialize as
/// `null` (and a reader treats `null` metrics as absent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// An incremental writer for one flat JSON object (one JSONL line).
///
/// ```
/// use robonet_core::obs::json::ObjectWriter;
///
/// let mut w = ObjectWriter::new();
/// w.field_str("ev", "failure");
/// w.field_f64("t", 1.5);
/// w.field_u64("sensor", 7);
/// assert_eq!(w.finish(), r#"{"ev":"failure","t":1.5,"sensor":7}"#);
/// ```
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectWriter {
    /// Starts a new object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    /// Adds an `f64` field (shortest round-trip form).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the serialized line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Converts a byte offset into 1-based (line, column) coordinates.
///
/// Columns count Unicode scalar values, not bytes, so error positions
/// point at what an editor shows. Offsets past the end of the input
/// report the position just after the last character.
pub fn line_col(input: &str, at: usize) -> (u32, u32) {
    let (mut line, mut col) = (1u32, 1u32);
    for (i, c) in input.char_indices() {
        if i >= at {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// A parsed value annotated with the byte offset where it started.
///
/// Produced by [`parse_relaxed`]; the offset converts to line/column
/// via [`line_col`], which is how the scenario layer attaches positions
/// to semantic errors (unknown key, bad type, …) long after parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedValue {
    /// Byte offset of the value's first character.
    pub at: usize,
    /// The value itself.
    pub node: SpannedNode,
}

/// The shape of a [`SpannedValue`].
///
/// Unlike [`JsonValue`], objects keep their fields in source order as
/// `(key offset, key, value)` triples — duplicate keys survive parsing
/// so the semantic layer can report them at the right position.
#[derive(Debug, Clone, PartialEq)]
pub enum SpannedNode {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<SpannedValue>),
    /// An object: `(key offset, key, value)` in source order.
    Object(Vec<(usize, String, SpannedValue)>),
}

impl SpannedNode {
    /// Human-readable name of the node's type, for "expected X, found
    /// Y" messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            SpannedNode::Null => "null",
            SpannedNode::Bool(_) => "a boolean",
            SpannedNode::Number(_) => "a number",
            SpannedNode::String(_) => "a string",
            SpannedNode::Array(_) => "an array",
            SpannedNode::Object(_) => "an object",
        }
    }
}

/// Parses one complete JSON value from `input` (trailing whitespace
/// allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        relaxed: false,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parses one complete value in the relaxed dialect scenario files use:
/// strict JSON plus `//` line comments and trailing commas in objects
/// and arrays. Every node carries its byte offset for error reporting.
pub fn parse_relaxed(input: &str) -> Result<SpannedValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        relaxed: true,
    };
    p.skip_ws();
    let v = p.spanned_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    relaxed: bool,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
            // `//` line comments exist only in the relaxed dialect.
            if self.relaxed
                && self.peek() == Some(b'/')
                && self.bytes.get(self.pos + 1) == Some(&b'/')
            {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
                continue;
            }
            return;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn spanned_value(&mut self) -> Result<SpannedValue, ParseError> {
        let at = self.pos;
        let node = match self.peek() {
            Some(b'{') => SpannedNode::Object(self.spanned_object()?),
            Some(b'[') => SpannedNode::Array(self.spanned_array()?),
            Some(b'"') => SpannedNode::String(self.string()?),
            Some(b't') => {
                self.literal("true", JsonValue::Null)?;
                SpannedNode::Bool(true)
            }
            Some(b'f') => {
                self.literal("false", JsonValue::Null)?;
                SpannedNode::Bool(false)
            }
            Some(b'n') => {
                self.literal("null", JsonValue::Null)?;
                SpannedNode::Null
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => match self.number()? {
                JsonValue::Number(n) => SpannedNode::Number(n),
                _ => unreachable!("number() only returns Number"),
            },
            _ => return Err(self.err("expected a value")),
        };
        Ok(SpannedValue { at, node })
    }

    fn spanned_object(&mut self) -> Result<Vec<(usize, String, SpannedValue)>, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                Some(b'"') => {}
                _ => return Err(self.err("expected a key string or '}' in object")),
            }
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.spanned_value()?;
            fields.push((key_at, key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn spanned_array(&mut self) -> Result<Vec<SpannedValue>, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(items);
            }
            items.push(self.spanned_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(items);
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_builds_flat_lines() {
        let mut w = ObjectWriter::new();
        w.field_str("ev", "replaced");
        w.field_f64("t", 123.456);
        w.field_u64("robot", 200);
        w.field_bool("departed", true);
        let line = w.finish();
        assert_eq!(
            line,
            r#"{"ev":"replaced","t":123.456,"robot":200,"departed":true}"#
        );
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("replaced"));
        assert_eq!(v.get("t").unwrap().as_f64(), Some(123.456));
        assert_eq!(v.get("robot").unwrap().as_u64(), Some(200));
        assert_eq!(v.get("departed"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        // Awkward values: shortest-repr printing + from_str must be the
        // identity on bits.
        for v in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            88.24744186046512,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} -> {s} -> {back:?}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let mut s = String::new();
        write_str(&mut s, nasty);
        assert_eq!(parse(&s).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        let a = match v.get("a").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,]",
            "12x",
            "{\"a\":1}tail",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn relaxed_parser_accepts_comments_and_trailing_commas() {
        let src = "{\n  // a comment\n  \"a\": [1, 2,], // trailing\n  \"b\": true,\n}";
        let v = parse_relaxed(src).unwrap();
        let fields = match &v.node {
            SpannedNode::Object(f) => f,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].1, "a");
        match &fields[0].2.node {
            SpannedNode::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(fields[1].2.node, SpannedNode::Bool(true));
        // Strict mode must still reject both extensions.
        assert!(parse("[1,]").is_err());
        assert!(parse("// c\n1").is_err());
    }

    #[test]
    fn spanned_offsets_convert_to_line_col() {
        let src = "{\n  \"key\": 42\n}";
        let v = parse_relaxed(src).unwrap();
        let fields = match &v.node {
            SpannedNode::Object(f) => f,
            other => panic!("expected object, got {other:?}"),
        };
        let (key_at, _, val) = &fields[0];
        assert_eq!(line_col(src, *key_at), (2, 3));
        assert_eq!(line_col(src, val.at), (2, 10));
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, src.len() + 10), (3, 2));
    }

    #[test]
    fn relaxed_parser_keeps_duplicate_keys_in_order() {
        let v = parse_relaxed(r#"{"x": 1, "x": 2}"#).unwrap();
        let fields = match v.node {
            SpannedNode::Object(f) => f,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(fields.len(), 2, "duplicates survive for semantic checks");
        assert_eq!(fields[0].1, "x");
        assert_eq!(fields[1].1, "x");
    }

    #[test]
    fn relaxed_parser_rejects_malformed_input() {
        for bad in [
            "{,}",
            "[1 2]",
            "{\"a\": }",
            "{\"a\": 1,, }",
            "/* block */ 1",
        ] {
            assert!(parse_relaxed(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_extraction_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
