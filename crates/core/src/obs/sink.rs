//! Event sinks: where [`TraceEvent`]s go.
//!
//! The simulation emits events through one `&mut dyn EventSink`;
//! implementations decide what happens to them — nothing
//! ([`NullSink`]), a bounded in-memory ring ([`RingSink`], today's
//! [`Trace`]), a streamed JSONL artifact ([`JsonlSink`]), or several of
//! those at once ([`TeeSink`]).

use std::io::Write;

use robonet_des::NodeId;
use robonet_geom::Point;

use super::json::{JsonValue, ObjectWriter};
use crate::trace::{DropReason, Trace, TraceEvent};

/// Current version of the JSONL trace artifact schema. Bump when the
/// line format changes incompatibly; readers reject other versions.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// The versioned header line a [`JsonlSink`] writes before any event.
pub fn trace_header() -> String {
    let mut w = ObjectWriter::new();
    w.field_str("schema", "robonet-trace");
    w.field_u64("schema_version", TRACE_SCHEMA_VERSION);
    w.finish()
}

/// `Some` when `line` is a trace header (carrying the verdict on its
/// version), `None` when it is an ordinary event line.
fn parse_header(line: &str) -> Option<Result<(), String>> {
    let v = super::json::parse(line).ok()?;
    let schema = v.get("schema").and_then(JsonValue::as_str)?.to_string();
    Some(if schema != "robonet-trace" {
        Err(format!("unknown trace schema '{schema}'"))
    } else {
        match v.get("schema_version").and_then(JsonValue::as_u64) {
            Some(TRACE_SCHEMA_VERSION) => Ok(()),
            Some(other) => Err(format!(
                "unsupported trace schema_version {other} \
                 (this build reads version {TRACE_SCHEMA_VERSION})"
            )),
            None => Err("trace header missing 'schema_version'".to_string()),
        }
    })
}

/// The unterminated, unparseable final line of a trace — the signature
/// a crashed (or still-writing) producer leaves behind. Readers treat
/// it as "trace ends here", not as corruption: `robonet stats`,
/// `spans` and `replay` all report it and aggregate the complete
/// prefix, and `replay --follow` keeps the bytes buffered until the
/// rest of the line arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedTail {
    /// 1-based line number of the partial line.
    pub line: usize,
    /// Bytes already present of the partial line.
    pub bytes: usize,
}

impl std::fmt::Display for TruncatedTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}: truncated tail ({} bytes of an unterminated record)",
            self.line, self.bytes
        )
    }
}

/// Incremental trace-line reader: feed it chunks of a JSONL artifact
/// (in any split, mid-line is fine) and it hands complete parsed
/// events to the callback, holding the unterminated tail until more
/// bytes arrive. This is the one reader behind
/// [`for_each_event_line`] — and therefore `robonet stats`, `spans`
/// and `replay` — and behind `replay --follow`'s live tailing, so
/// offline and follow-mode parsing can never drift.
#[derive(Debug, Default)]
pub struct LineCursor {
    /// Bytes of the current, not-yet-terminated line.
    partial: String,
    /// 1-based number of the line currently in `partial`.
    line_no: usize,
    /// Whether a non-blank line has been consumed (header position).
    seen_any: bool,
}

impl LineCursor {
    /// A cursor at the start of an artifact.
    pub fn new() -> Self {
        LineCursor {
            partial: String::new(),
            line_no: 1,
            seen_any: false,
        }
    }

    /// Consumes `chunk`, invoking `f` for every *complete* event line
    /// it closes. Bytes after the last `'\n'` are buffered for the
    /// next feed.
    ///
    /// # Errors
    ///
    /// The first malformed complete record or unsupported schema
    /// version fails with its 1-based line number.
    pub fn feed(&mut self, chunk: &str, mut f: impl FnMut(&TraceEvent)) -> Result<(), String> {
        let mut rest = chunk;
        while let Some(nl) = rest.find('\n') {
            self.partial.push_str(&rest[..nl]);
            rest = &rest[nl + 1..];
            let line = std::mem::take(&mut self.partial);
            self.consume_line(&line, &mut f)?;
            self.line_no += 1;
        }
        self.partial.push_str(rest);
        Ok(())
    }

    /// Closes the artifact. A leftover unterminated line is parsed if
    /// it is complete JSON (producers are not required to end the file
    /// with a newline); if it does not parse it is reported as a
    /// [`TruncatedTail`] rather than an error.
    pub fn finish(
        mut self,
        mut f: impl FnMut(&TraceEvent),
    ) -> Result<Option<TruncatedTail>, String> {
        let line = std::mem::take(&mut self.partial);
        if line.trim().is_empty() {
            return Ok(None);
        }
        if super::json::parse(&line).is_err() {
            return Ok(Some(TruncatedTail {
                line: self.line_no,
                bytes: line.len(),
            }));
        }
        self.consume_line(&line, &mut f)?;
        Ok(None)
    }

    /// Bytes currently buffered as an unterminated line.
    pub fn pending_bytes(&self) -> usize {
        self.partial.len()
    }

    /// 1-based line number the cursor is currently reading.
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    fn consume_line(&mut self, line: &str, f: &mut impl FnMut(&TraceEvent)) -> Result<(), String> {
        if line.trim().is_empty() {
            return Ok(());
        }
        if !self.seen_any {
            self.seen_any = true;
            if let Some(verdict) = parse_header(line) {
                return verdict.map_err(|e| format!("line {}: {e}", self.line_no));
            }
        }
        let event = event_from_jsonl(line).map_err(|e| format!("line {}: {e}", self.line_no))?;
        f(&event);
        Ok(())
    }
}

/// Walks a JSONL trace artifact: skips blank lines, validates the
/// versioned header on the first non-blank line (legacy headerless
/// traces are accepted), and hands each parsed event to `f`.
///
/// Fails on the first malformed record or unsupported schema version,
/// identifying the offending 1-based line number — a truncated or
/// hand-edited artifact should be loud, not silently half-counted.
/// The one exception is an *unterminated* final line that is not valid
/// JSON: that is the normal residue of a crashed or still-writing
/// producer, returned as `Ok(Some(TruncatedTail))` so every reader
/// degrades gracefully. `robonet stats`, `spans` and `replay` all read
/// through this walker, so their error surfaces stay identical.
pub fn for_each_event_line(
    text: &str,
    mut f: impl FnMut(&TraceEvent),
) -> Result<Option<TruncatedTail>, String> {
    let mut cursor = LineCursor::new();
    cursor.feed(text, &mut f)?;
    cursor.finish(&mut f)
}

/// A consumer of simulation events.
///
/// `is_enabled` lets emitters skip constructing events entirely when
/// nobody is listening — the zero-cost path seed-pinned figure sweeps
/// rely on.
pub trait EventSink {
    /// Whether this sink wants events at all. Emitters may (and do)
    /// skip event construction when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output; called once at the end of a run.
    fn finish(&mut self) {}

    /// Surrenders an in-memory [`Trace`] if this sink (or one of its
    /// children) kept one, for embedding into the run's `Outcome`.
    fn take_trace(&mut self) -> Option<Trace> {
        None
    }
}

/// Discards everything; `is_enabled` is `false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// Keeps the last `capacity` events in memory — the classic [`Trace`]
/// behind the sink interface.
#[derive(Debug, Default, Clone)]
pub struct RingSink {
    trace: Trace,
}

impl RingSink {
    /// A ring retaining at most `capacity` events (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink {
            trace: Trace::with_capacity(capacity),
        }
    }

    /// Read access to the ring.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl EventSink for RingSink {
    fn is_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    fn record(&mut self, event: &TraceEvent) {
        self.trace.push(event.clone());
    }

    fn take_trace(&mut self) -> Option<Trace> {
        Some(std::mem::take(&mut self.trace))
    }
}

/// Streams every event as one line of JSON to a writer.
///
/// # Panics
///
/// Write failures panic: the sink records a run artifact the caller
/// asked for, and silently truncating it would corrupt downstream
/// aggregation (`robonet stats`).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    events_written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`, immediately writing the versioned header line;
    /// every recorded event then becomes one JSONL line.
    pub fn new(mut writer: W) -> Self {
        writer
            .write_all(trace_header().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("write trace header");
        JsonlSink {
            writer,
            events_written: 0,
        }
    }

    /// Number of events written so far (the header line not included).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Unwraps the inner writer (flushing first).
    pub fn into_inner(mut self) -> W {
        self.writer.flush().expect("flush trace output");
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        let line = event_to_jsonl(event);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("write trace event");
        self.events_written += 1;
    }

    fn finish(&mut self) {
        self.writer.flush().expect("flush trace output");
    }
}

/// Fans events out to several sinks.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl TeeSink {
    /// An empty tee (disabled until a sink is added).
    pub fn new() -> Self {
        TeeSink::default()
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Builder-style [`TeeSink::push`].
    pub fn with(mut self, sink: Box<dyn EventSink>) -> Self {
        self.push(sink);
        self
    }
}

impl EventSink for TeeSink {
    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }

    fn record(&mut self, event: &TraceEvent) {
        for sink in &mut self.sinks {
            if sink.is_enabled() {
                sink.record(event);
            }
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }

    fn take_trace(&mut self) -> Option<Trace> {
        self.sinks.iter_mut().find_map(|s| s.take_trace())
    }
}

/// Serializes one event as a flat JSON object (no trailing newline).
///
/// The schema is part of the artifact contract documented in DESIGN.md:
/// every line carries `"ev"` (snake_case event kind) and `"t"` (sim
/// seconds); node ids are raw `u32`s; coordinates are unpacked into
/// scalar fields so lines stay flat.
pub fn event_to_jsonl(event: &TraceEvent) -> String {
    let mut w = ObjectWriter::new();
    match event {
        TraceEvent::Failure { t, sensor } => {
            w.field_str("ev", "failure");
            w.field_f64("t", *t);
            w.field_u64("sensor", u64::from(sensor.as_u32()));
        }
        TraceEvent::Detected {
            t,
            guardian,
            failed,
        } => {
            w.field_str("ev", "detected");
            w.field_f64("t", *t);
            w.field_u64("guardian", u64::from(guardian.as_u32()));
            w.field_u64("failed", u64::from(failed.as_u32()));
        }
        TraceEvent::ReportDelivered {
            t,
            manager,
            failed,
            hops,
        } => {
            w.field_str("ev", "report_delivered");
            w.field_f64("t", *t);
            w.field_u64("manager", u64::from(manager.as_u32()));
            w.field_u64("failed", u64::from(failed.as_u32()));
            w.field_u64("hops", u64::from(*hops));
        }
        TraceEvent::Dispatched {
            t,
            robot,
            failed,
            departed,
        } => {
            w.field_str("ev", "dispatched");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_u64("failed", u64::from(failed.as_u32()));
            w.field_bool("departed", *departed);
        }
        TraceEvent::Replaced {
            t,
            robot,
            sensor,
            travel,
            loc,
        } => {
            w.field_str("ev", "replaced");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_u64("sensor", u64::from(sensor.as_u32()));
            w.field_f64("travel", *travel);
            w.field_f64("x", loc.x);
            w.field_f64("y", loc.y);
        }
        TraceEvent::PacketDropped { t, at, reason } => {
            w.field_str("ev", "packet_dropped");
            w.field_f64("t", *t);
            w.field_u64("at", u64::from(at.as_u32()));
            w.field_str("reason", reason.label());
        }
        TraceEvent::LocUpdateFlooded { t, robot, seq } => {
            w.field_str("ev", "loc_update_flooded");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_u64("seq", *seq);
        }
        TraceEvent::RobotLegStarted {
            t,
            robot,
            failed,
            from,
            to,
        } => {
            w.field_str("ev", "robot_leg_started");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_u64("failed", u64::from(failed.as_u32()));
            w.field_f64("from_x", from.x);
            w.field_f64("from_y", from.y);
            w.field_f64("to_x", to.x);
            w.field_f64("to_y", to.y);
        }
        TraceEvent::RobotLegEnded { t, robot, travel } => {
            w.field_str("ev", "robot_leg_ended");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_f64("travel", *travel);
        }
        TraceEvent::FaultInjected { t, kind, node } => {
            w.field_str("ev", "fault_injected");
            w.field_f64("t", *t);
            w.field_str("kind", kind.label());
            w.field_u64("node", u64::from(node.as_u32()));
        }
        TraceEvent::ReportRetried {
            t,
            guardian,
            failed,
            attempt,
        } => {
            w.field_str("ev", "report_retried");
            w.field_f64("t", *t);
            w.field_u64("guardian", u64::from(guardian.as_u32()));
            w.field_u64("failed", u64::from(failed.as_u32()));
            w.field_u64("attempt", u64::from(*attempt));
        }
        TraceEvent::DispatchTimedOut { t, failed, attempt } => {
            w.field_str("ev", "dispatch_timed_out");
            w.field_f64("t", *t);
            w.field_u64("failed", u64::from(failed.as_u32()));
            w.field_u64("attempt", u64::from(*attempt));
        }
        TraceEvent::RobotDied { t, robot } => {
            w.field_str("ev", "robot_died");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
        }
        TraceEvent::RobotRepaired { t, robot } => {
            w.field_str("ev", "robot_repaired");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
        }
        TraceEvent::TakeoverAssumed {
            t,
            robot,
            dead,
            subarea,
        } => {
            w.field_str("ev", "takeover_assumed");
            w.field_f64("t", *t);
            w.field_u64("robot", u64::from(robot.as_u32()));
            w.field_u64("dead", u64::from(dead.as_u32()));
            w.field_u64("subarea", u64::from(*subarea));
        }
        TraceEvent::TelemetrySample { t, sample } => {
            w.field_str("ev", "telemetry_sample");
            w.field_f64("t", *t);
            w.field_u64("alive", u64::from(sample.alive));
            w.field_u64("down", u64::from(sample.down));
            w.field_u64("failures", sample.failures);
            w.field_u64("replaced", sample.replaced);
            w.field_f64("coverage", sample.coverage);
            w.field_u64("open_failure", u64::from(sample.open_failure));
            w.field_u64("open_detected", u64::from(sample.open_detected));
            w.field_u64("open_reported", u64::from(sample.open_reported));
            w.field_u64("open_dispatched", u64::from(sample.open_dispatched));
            // Per-robot vectors as compact strings so lines stay flat.
            w.field_str("queues", &sample.queues_string());
            w.field_str("busy", &sample.busy_string());
            w.field_u64("in_flight", u64::from(sample.in_flight));
            w.field_u64("sched_queue", u64::from(sample.sched_queue));
        }
        TraceEvent::InvariantViolated {
            t,
            invariant,
            expected,
            actual,
        } => {
            w.field_str("ev", "invariant_violated");
            w.field_f64("t", *t);
            w.field_str("invariant", invariant.label());
            w.field_u64("expected", *expected);
            w.field_u64("actual", *actual);
        }
    }
    w.finish()
}

fn node(v: &JsonValue, key: &str) -> Result<NodeId, String> {
    let raw = v
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))?;
    u32::try_from(raw)
        .map(NodeId::new)
        .map_err(|_| format!("field '{key}' out of NodeId range"))
}

fn num(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn uint(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn uint32(v: &JsonValue, key: &str) -> Result<u32, String> {
    u32::try_from(uint(v, key)?).map_err(|_| format!("field '{key}' out of u32 range"))
}

fn text<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Parses one JSONL line back into a [`TraceEvent`].
///
/// The inverse of [`event_to_jsonl`]; `robonet stats` uses it to rebuild
/// a run's story from the artifact.
pub fn event_from_jsonl(line: &str) -> Result<TraceEvent, String> {
    let v = super::json::parse(line).map_err(|e| e.to_string())?;
    let kind = v
        .get("ev")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'ev' field")?;
    let t = num(&v, "t")?;
    match kind {
        "failure" => Ok(TraceEvent::Failure {
            t,
            sensor: node(&v, "sensor")?,
        }),
        "detected" => Ok(TraceEvent::Detected {
            t,
            guardian: node(&v, "guardian")?,
            failed: node(&v, "failed")?,
        }),
        "report_delivered" => Ok(TraceEvent::ReportDelivered {
            t,
            manager: node(&v, "manager")?,
            failed: node(&v, "failed")?,
            hops: u32::try_from(uint(&v, "hops")?).map_err(|_| "hops out of range")?,
        }),
        "dispatched" => Ok(TraceEvent::Dispatched {
            t,
            robot: node(&v, "robot")?,
            failed: node(&v, "failed")?,
            departed: matches!(v.get("departed"), Some(JsonValue::Bool(true))),
        }),
        "replaced" => Ok(TraceEvent::Replaced {
            t,
            robot: node(&v, "robot")?,
            sensor: node(&v, "sensor")?,
            travel: num(&v, "travel")?,
            loc: Point::new(num(&v, "x")?, num(&v, "y")?),
        }),
        "packet_dropped" => {
            let label = v
                .get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'reason' field")?;
            Ok(TraceEvent::PacketDropped {
                t,
                at: node(&v, "at")?,
                reason: DropReason::from_label(label)
                    .ok_or_else(|| format!("unknown drop reason '{label}'"))?,
            })
        }
        "loc_update_flooded" => Ok(TraceEvent::LocUpdateFlooded {
            t,
            robot: node(&v, "robot")?,
            seq: uint(&v, "seq")?,
        }),
        "robot_leg_started" => Ok(TraceEvent::RobotLegStarted {
            t,
            robot: node(&v, "robot")?,
            failed: node(&v, "failed")?,
            from: Point::new(num(&v, "from_x")?, num(&v, "from_y")?),
            to: Point::new(num(&v, "to_x")?, num(&v, "to_y")?),
        }),
        "robot_leg_ended" => Ok(TraceEvent::RobotLegEnded {
            t,
            robot: node(&v, "robot")?,
            travel: num(&v, "travel")?,
        }),
        "fault_injected" => {
            let label = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("missing 'kind' field")?;
            Ok(TraceEvent::FaultInjected {
                t,
                kind: crate::fault::FaultKind::from_label(label)
                    .ok_or_else(|| format!("unknown fault kind '{label}'"))?,
                node: node(&v, "node")?,
            })
        }
        "report_retried" => Ok(TraceEvent::ReportRetried {
            t,
            guardian: node(&v, "guardian")?,
            failed: node(&v, "failed")?,
            attempt: u32::try_from(uint(&v, "attempt")?).map_err(|_| "attempt out of range")?,
        }),
        "dispatch_timed_out" => Ok(TraceEvent::DispatchTimedOut {
            t,
            failed: node(&v, "failed")?,
            attempt: u32::try_from(uint(&v, "attempt")?).map_err(|_| "attempt out of range")?,
        }),
        "robot_died" => Ok(TraceEvent::RobotDied {
            t,
            robot: node(&v, "robot")?,
        }),
        "robot_repaired" => Ok(TraceEvent::RobotRepaired {
            t,
            robot: node(&v, "robot")?,
        }),
        "takeover_assumed" => Ok(TraceEvent::TakeoverAssumed {
            t,
            robot: node(&v, "robot")?,
            dead: node(&v, "dead")?,
            subarea: u32::try_from(uint(&v, "subarea")?).map_err(|_| "subarea out of range")?,
        }),
        "telemetry_sample" => Ok(TraceEvent::TelemetrySample {
            t,
            sample: crate::obs::timeline::TelemetrySnapshot {
                alive: uint32(&v, "alive")?,
                down: uint32(&v, "down")?,
                failures: uint(&v, "failures")?,
                replaced: uint(&v, "replaced")?,
                coverage: num(&v, "coverage")?,
                open_failure: uint32(&v, "open_failure")?,
                open_detected: uint32(&v, "open_detected")?,
                open_reported: uint32(&v, "open_reported")?,
                open_dispatched: uint32(&v, "open_dispatched")?,
                robot_queues: crate::obs::timeline::TelemetrySnapshot::queues_from_string(text(
                    &v, "queues",
                )?)?,
                robot_busy: crate::obs::timeline::TelemetrySnapshot::busy_from_string(text(
                    &v, "busy",
                )?)?,
                in_flight: uint32(&v, "in_flight")?,
                sched_queue: uint32(&v, "sched_queue")?,
            },
        }),
        "invariant_violated" => {
            let label = text(&v, "invariant")?;
            Ok(TraceEvent::InvariantViolated {
                t,
                invariant: crate::obs::timeline::Invariant::from_label(label)
                    .ok_or_else(|| format!("unknown invariant '{label}'"))?,
                expected: uint(&v, "expected")?,
                actual: uint(&v, "actual")?,
            })
        }
        other => Err(format!("unknown event kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_event_kinds() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Failure {
                t: 1.5,
                sensor: NodeId::new(5),
            },
            TraceEvent::Detected {
                t: 2.0,
                guardian: NodeId::new(3),
                failed: NodeId::new(5),
            },
            TraceEvent::ReportDelivered {
                t: 2.5,
                manager: NodeId::new(200),
                failed: NodeId::new(5),
                hops: 3,
            },
            TraceEvent::Dispatched {
                t: 2.6,
                robot: NodeId::new(200),
                failed: NodeId::new(5),
                departed: true,
            },
            TraceEvent::Replaced {
                t: 60.0,
                robot: NodeId::new(200),
                sensor: NodeId::new(5),
                travel: 88.24744186046512,
                loc: Point::new(10.5, -20.25),
            },
            TraceEvent::PacketDropped {
                t: 3.0,
                at: NodeId::new(17),
                reason: DropReason::TtlExpired,
            },
            TraceEvent::LocUpdateFlooded {
                t: 4.0,
                robot: NodeId::new(201),
                seq: 9,
            },
            TraceEvent::RobotLegStarted {
                t: 2.6,
                robot: NodeId::new(200),
                failed: NodeId::new(5),
                from: Point::new(0.0, 0.0),
                to: Point::new(10.5, -20.25),
            },
            TraceEvent::RobotLegEnded {
                t: 60.0,
                robot: NodeId::new(200),
                travel: 88.24744186046512,
            },
            TraceEvent::FaultInjected {
                t: 5.0,
                kind: crate::fault::FaultKind::ReportLoss,
                node: NodeId::new(3),
            },
            TraceEvent::ReportRetried {
                t: 6.0,
                guardian: NodeId::new(3),
                failed: NodeId::new(5),
                attempt: 2,
            },
            TraceEvent::DispatchTimedOut {
                t: 7.0,
                failed: NodeId::new(5),
                attempt: 1,
            },
            TraceEvent::RobotDied {
                t: 8.0,
                robot: NodeId::new(201),
            },
            TraceEvent::RobotRepaired {
                t: 9.0,
                robot: NodeId::new(201),
            },
            TraceEvent::TakeoverAssumed {
                t: 10.0,
                robot: NodeId::new(200),
                dead: NodeId::new(201),
                subarea: 1,
            },
            TraceEvent::TelemetrySample {
                t: 100.0,
                sample: crate::obs::timeline::TelemetrySnapshot {
                    alive: 30,
                    down: 2,
                    failures: 5,
                    replaced: 3,
                    coverage: 0.8754321098,
                    open_failure: 1,
                    open_detected: 0,
                    open_reported: 0,
                    open_dispatched: 1,
                    robot_queues: vec![0, 2, 1],
                    robot_busy: vec![false, true, false],
                    in_flight: 4,
                    sched_queue: 37,
                },
            },
            TraceEvent::InvariantViolated {
                t: 100.0,
                invariant: crate::obs::timeline::Invariant::RepairConservation,
                expected: 5,
                actual: 4,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for ev in all_event_kinds() {
            let line = event_to_jsonl(&ev);
            let back = event_from_jsonl(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line was: {line}");
        }
    }

    #[test]
    fn jsonl_sink_streams_header_then_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for ev in all_event_kinds() {
            sink.record(&ev);
        }
        sink.finish();
        assert_eq!(sink.events_written(), all_event_kinds().len() as u64);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), all_event_kinds().len() + 1);
        assert_eq!(lines[0], trace_header(), "first line is the header");
        for line in &lines[1..] {
            event_from_jsonl(line).unwrap();
        }
    }

    #[test]
    fn event_walker_validates_headers_and_locates_errors() {
        let event_line = event_to_jsonl(&TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(5),
        });

        // Headered, headerless, and blank-padded artifacts all walk.
        for text in [
            format!("{}\n{event_line}\n", trace_header()),
            format!("{event_line}\n"),
            format!("\n{}\n\n{event_line}\n", trace_header()),
        ] {
            let mut n = 0;
            for_each_event_line(&text, |_| n += 1).unwrap();
            assert_eq!(n, 1, "one event in: {text:?}");
        }

        // Unknown versions and schemas are rejected with a line number.
        let future = r#"{"schema":"robonet-trace","schema_version":99}"#;
        let err = for_each_event_line(future, |_| {}).unwrap_err();
        assert!(
            err.starts_with("line 1:") && err.contains("schema_version 99"),
            "error was: {err}"
        );
        let alien = r#"{"schema":"otherformat","schema_version":1}"#;
        let err = for_each_event_line(alien, |_| {}).unwrap_err();
        assert!(err.contains("unknown trace schema"), "error was: {err}");
        let unversioned = r#"{"schema":"robonet-trace"}"#;
        let err = for_each_event_line(unversioned, |_| {}).unwrap_err();
        assert!(err.contains("schema_version"), "error was: {err}");

        // A malformed record names its own line, past the header.
        let broken = format!("{}\n{event_line}\nnot json\n", trace_header());
        let err = for_each_event_line(&broken, |_| {}).unwrap_err();
        assert!(err.starts_with("line 3:"), "error was: {err}");
    }

    #[test]
    fn truncated_final_line_is_typed_not_fatal() {
        let event_line = event_to_jsonl(&TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(5),
        });
        // A producer died (or is still writing) mid-record: the whole
        // prefix parses and the ragged tail is reported, not fatal.
        let half = &event_line[..event_line.len() / 2];
        let text = format!("{}\n{event_line}\n{half}", trace_header());
        let mut n = 0;
        let tail = for_each_event_line(&text, |_| n += 1).unwrap();
        assert_eq!(n, 1, "the complete prefix is still walked");
        let tail = tail.expect("ragged tail must be reported");
        assert_eq!(tail.line, 3);
        assert_eq!(tail.bytes, half.len());
        assert!(
            tail.to_string().contains("line 3"),
            "display names the line"
        );

        // A complete artifact — terminated or not — has no tail.
        let whole = format!("{}\n{event_line}\n", trace_header());
        assert_eq!(for_each_event_line(&whole, |_| {}).unwrap(), None);
        let unterminated = format!("{}\n{event_line}", trace_header());
        let mut n = 0;
        let tail = for_each_event_line(&unterminated, |_| n += 1).unwrap();
        assert_eq!((n, tail), (1, None), "valid unterminated line is an event");

        // A *terminated* malformed line is still corruption, even at
        // the end of the artifact.
        let corrupt = format!("{}\n{half}\n", trace_header());
        let err = for_each_event_line(&corrupt, |_| {}).unwrap_err();
        assert!(err.starts_with("line 2:"), "error was: {err}");
    }

    #[test]
    fn line_cursor_is_split_agnostic() {
        // Any chunking of the byte stream — even one byte at a time —
        // yields the same events as a single feed. This is the contract
        // `replay --follow` leans on when tailing a file mid-write.
        let events = all_event_kinds();
        let mut text = trace_header().to_string();
        text.push('\n');
        for ev in &events {
            text.push_str(&event_to_jsonl(ev));
            text.push('\n');
        }

        let mut whole = Vec::new();
        let mut cursor = LineCursor::new();
        cursor.feed(&text, |e| whole.push(e.clone())).unwrap();
        assert!(cursor.finish(|_| {}).unwrap().is_none());
        assert_eq!(whole, events);

        let mut bytewise = Vec::new();
        let mut cursor = LineCursor::new();
        for i in 0..text.len() {
            cursor
                .feed(&text[i..i + 1], |e| bytewise.push(e.clone()))
                .unwrap();
        }
        assert!(cursor.finish(|_| {}).unwrap().is_none());
        assert_eq!(bytewise, whole, "chunking must not change the walk");

        // Mid-line, the cursor reports how much tail it is holding.
        let mut cursor = LineCursor::new();
        cursor.feed("{\"ev\":\"fail", |_| {}).unwrap();
        assert_eq!(cursor.pending_bytes(), 11);
        assert_eq!(cursor.line_no(), 1);
        let tail = cursor.finish(|_| {}).unwrap().expect("ragged tail");
        assert_eq!(tail, TruncatedTail { line: 1, bytes: 11 });
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(&TraceEvent::Failure {
            t: 0.0,
            sensor: NodeId::new(0),
        });
        assert!(sink.take_trace().is_none());
    }

    #[test]
    fn ring_sink_retains_and_surrenders_trace() {
        let mut sink = RingSink::with_capacity(2);
        assert!(sink.is_enabled());
        for ev in all_event_kinds().into_iter().take(3) {
            sink.record(&ev);
        }
        assert_eq!(sink.trace().len(), 2);
        assert_eq!(sink.trace().dropped(), 1);
        let trace = sink.take_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(sink.trace().len(), 0, "take_trace leaves an empty ring");
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let mut tee = TeeSink::new();
        assert!(!tee.is_enabled(), "empty tee is disabled");
        tee.push(Box::new(NullSink));
        assert!(!tee.is_enabled(), "all-null tee is still disabled");
        tee.push(Box::new(RingSink::with_capacity(8)));
        tee.push(Box::new(JsonlSink::new(Vec::new())));
        assert!(tee.is_enabled());
        for ev in all_event_kinds() {
            tee.record(&ev);
        }
        tee.finish();
        let trace = tee.take_trace().expect("ring child keeps a trace");
        assert_eq!(trace.len(), 8.min(all_event_kinds().len()));
    }

    #[test]
    fn unknown_kind_and_bad_fields_are_rejected() {
        assert!(event_from_jsonl(r#"{"ev":"warp","t":1.0}"#).is_err());
        assert!(event_from_jsonl(r#"{"t":1.0}"#).is_err());
        assert!(event_from_jsonl(r#"{"ev":"failure"}"#).is_err());
        assert!(event_from_jsonl(r#"{"ev":"failure","t":1.0,"sensor":-3}"#).is_err());
        assert!(
            event_from_jsonl(r#"{"ev":"packet_dropped","t":1.0,"at":1,"reason":"gremlins"}"#)
                .is_err()
        );
        assert!(event_from_jsonl("not json at all").is_err());
    }
}
