//! In-tree metrics registry: named monotonic counters and fixed-bucket
//! log2 histograms.
//!
//! Names follow a `subsystem.name` convention with dotted, lowercase
//! segments — `des.scheduler.events_dispatched`,
//! `radio.mac.drops.give_up`, `net.routing.drops.ttl_expired`,
//! `coord.dynamic.reports_delivered`. Subsystem and metric names are
//! `&'static str` so recording is allocation-free; storage is a
//! `BTreeMap` so snapshots iterate in a stable, sorted order.

use std::collections::BTreeMap;

use super::detsum::DetSum;
use super::json::ObjectWriter;

/// Number of buckets in a [`Log2Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram over non-negative values with power-of-two
/// bucket boundaries.
///
/// Bucket 0 holds values in `[0, 1)`, bucket `i` (for `i >= 1`) holds
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything larger.
/// This covers hop counts, travel metres, and repair delays in seconds
/// with one shape and no configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: DetSum,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: DetSum::new(),
            max: 0.0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `value` (negatives and NaN clamp to bucket 0).
    pub fn bucket_of(value: f64) -> usize {
        if value >= 1.0 {
            let exp = value.log2().floor() as usize;
            (exp + 1).min(HISTOGRAM_BUCKETS - 1)
        } else {
            // Covers [0, 1) and, by NaN comparing false, NaN/negatives.
            0
        }
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            2f64.powi(i as i32 - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum.add(value);
            if value > self.max {
                self.max = value;
            }
        }
    }

    /// Folds `other` into `self` — buckets, counts and fixed-point sums
    /// add, max takes the larger; every constituent is
    /// order-independent, so folding histograms in any order yields the
    /// same bits.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum.merge(&other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all (finite) observed values (fixed-point accumulated —
    /// deterministic and order-independent; see
    /// [`DetSum`](super::detsum::DetSum)).
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// Largest observed value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum.value() / self.count as f64)
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A registry of `(subsystem, name)`-keyed counters, gauges and
/// histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<(&'static str, &'static str), u64>,
    gauges: BTreeMap<(&'static str, &'static str), f64>,
    histograms: BTreeMap<(&'static str, &'static str), Log2Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter `subsystem.name` by one.
    pub fn incr(&mut self, subsystem: &'static str, name: &'static str) {
        self.add(subsystem, name, 1);
    }

    /// Adds `delta` to the counter `subsystem.name`.
    pub fn add(&mut self, subsystem: &'static str, name: &'static str, delta: u64) {
        *self.counters.entry((subsystem, name)).or_insert(0) += delta;
    }

    /// Sets the counter `subsystem.name` to `value` (for end-of-run
    /// snapshots of externally accumulated totals; still monotonic from
    /// the reader's point of view).
    pub fn set(&mut self, subsystem: &'static str, name: &'static str, value: u64) {
        self.counters.insert((subsystem, name), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, subsystem: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|((s, n), _)| *s == subsystem && *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sets the floating-point gauge `subsystem.name` (end-of-run
    /// derived statistics such as the `span.<stage>` percentiles).
    pub fn set_gauge(&mut self, subsystem: &'static str, name: &'static str, value: f64) {
        self.gauges.insert((subsystem, name), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|((s, n), _)| *s == subsystem && *n == name)
            .map(|(_, v)| *v)
    }

    /// All gauges in sorted `(subsystem, name, value)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &'static str, f64)> + '_ {
        self.gauges.iter().map(|(&(s, n), &v)| (s, n, v))
    }

    /// Records `value` into the histogram `subsystem.name`.
    pub fn observe(&mut self, subsystem: &'static str, name: &'static str, value: f64) {
        self.histograms
            .entry((subsystem, name))
            .or_default()
            .observe(value);
    }

    /// The histogram `subsystem.name`, if any observations were made.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Option<&Log2Histogram> {
        self.histograms
            .iter()
            .find(|((s, n), _)| *s == subsystem && *n == name)
            .map(|(_, h)| h)
    }

    /// All counters in sorted `(subsystem, name, value)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(s, n), &v)| (s, n, v))
    }

    /// All histograms in sorted `(subsystem, name)` order.
    pub fn histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &Log2Histogram)> + '_ {
        self.histograms.iter().map(|(&(s, n), h)| (s, n, h))
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// elementwise, and gauges are **dropped from both sides** — a
    /// gauge is a per-run derived statistic (e.g. a span percentile)
    /// with no meaningful cross-run combination, and keeping either
    /// side's value would make the result depend on fold order. With
    /// gauges gone every constituent is an integer add, a fixed-point
    /// add or an f64 max, so folding any set of registries in any
    /// order yields bit-identical results — the sweep engine's merge
    /// contract.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.gauges.clear();
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (&key, h) in &other.histograms {
            self.histograms.entry(key).or_default().merge(h);
        }
    }

    /// Serializes the counter snapshot as one JSON object keyed by
    /// `subsystem.name` (sorted; histograms summarized as
    /// `subsystem.name.count`).
    pub fn counters_json(&self) -> String {
        let mut w = ObjectWriter::new();
        for ((subsystem, name), value) in &self.counters {
            w.field_u64(&format!("{subsystem}.{name}"), *value);
        }
        for ((subsystem, name), value) in &self.gauges {
            w.field_f64(&format!("{subsystem}.{name}"), *value);
        }
        for ((subsystem, name), h) in &self.histograms {
            w.field_u64(&format!("{subsystem}.{name}.count"), h.count());
        }
        w.finish()
    }

    /// Renders a human-readable snapshot (counters, then gauges, then
    /// histogram means), used by the CLI's verbose output.
    pub fn text_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (subsystem, name, value) in self.counters() {
            let _ = writeln!(out, "{subsystem}.{name} = {value}");
        }
        for (subsystem, name, value) in self.gauges() {
            let _ = writeln!(out, "{subsystem}.{name} = {value:.3}");
        }
        for (subsystem, name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{subsystem}.{name}: count={} mean={:.2} max={:.1}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut r = MetricsRegistry::new();
        r.incr("net.routing", "drops.ttl_expired");
        r.add("net.routing", "drops.ttl_expired", 2);
        r.incr("des.scheduler", "events_dispatched");
        assert_eq!(r.counter("net.routing", "drops.ttl_expired"), 3);
        assert_eq!(r.counter("net.routing", "missing"), 0);
        let names: Vec<_> = r.counters().map(|(s, n, _)| format!("{s}.{n}")).collect();
        assert_eq!(
            names,
            vec![
                "des.scheduler.events_dispatched",
                "net.routing.drops.ttl_expired"
            ],
            "iteration is sorted by (subsystem, name)"
        );
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0.0), 0);
        assert_eq!(Log2Histogram::bucket_of(0.99), 0);
        assert_eq!(Log2Histogram::bucket_of(1.0), 1);
        assert_eq!(Log2Histogram::bucket_of(1.99), 1);
        assert_eq!(Log2Histogram::bucket_of(2.0), 2);
        assert_eq!(Log2Histogram::bucket_of(3.99), 2);
        assert_eq!(Log2Histogram::bucket_of(4.0), 3);
        assert_eq!(Log2Histogram::bucket_of(-5.0), 0);
        assert_eq!(Log2Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Log2Histogram::bucket_of(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Log2Histogram::bucket_floor(0), 0.0);
        assert_eq!(Log2Histogram::bucket_floor(1), 1.0);
        assert_eq!(Log2Histogram::bucket_floor(4), 8.0);
    }

    #[test]
    fn histogram_tracks_count_sum_mean_max() {
        let mut r = MetricsRegistry::new();
        for v in [1.0, 3.0, 8.0] {
            r.observe("robot", "travel_m", v);
        }
        let h = r.histogram("robot", "travel_m").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(h.max(), 8.0);
        assert_eq!(h.buckets()[1], 1); // 1.0
        assert_eq!(h.buckets()[2], 1); // 3.0
        assert_eq!(h.buckets()[4], 1); // 8.0
        assert!(r.histogram("robot", "missing").is_none());
    }

    #[test]
    fn gauges_set_read_and_render() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.set_gauge("span.travel", "p95_s", 61.25);
        r.set_gauge("span.travel", "p50_s", 30.5);
        assert!(!r.is_empty());
        assert_eq!(r.gauge("span.travel", "p95_s"), Some(61.25));
        assert_eq!(r.gauge("span.travel", "missing"), None);
        let names: Vec<_> = r.gauges().map(|(s, n, _)| format!("{s}.{n}")).collect();
        assert_eq!(names, vec!["span.travel.p50_s", "span.travel.p95_s"]);
        assert!(r.text_report().contains("span.travel.p95_s = 61.250"));
        let v = crate::obs::json::parse(&r.counters_json()).unwrap();
        assert_eq!(v.get("span.travel.p95_s").unwrap().as_f64(), Some(61.25));
    }

    #[test]
    fn counters_json_is_sorted_and_parseable() {
        let mut r = MetricsRegistry::new();
        r.set("radio.mac", "data_tx", 41);
        r.incr("coord.dynamic", "reports_delivered");
        r.observe("net.routing", "report_hops", 3.0);
        let json = r.counters_json();
        let v = crate::obs::json::parse(&json).unwrap();
        assert_eq!(v.get("radio.mac.data_tx").unwrap().as_u64(), Some(41));
        assert_eq!(
            v.get("coord.dynamic.reports_delivered").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("net.routing.report_hops.count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn text_report_lists_everything() {
        let mut r = MetricsRegistry::new();
        r.incr("a", "b");
        r.observe("c", "d", 2.0);
        let text = r.text_report();
        assert!(text.contains("a.b = 1"));
        assert!(text.contains("c.d: count=1 mean=2.00 max=2.0"));
    }
}
