//! Streaming quantile sketch: fixed-memory, deterministic, mergeable.
//!
//! A log-linear histogram in the DDSketch family: each power-of-two
//! octave is split into 32 equal-width sub-buckets, so every bucket's
//! relative width is at most 1/32 and a bucket's midpoint is within
//! [`RELATIVE_ERROR`] (= 1/64) of any value it holds. Bucket indices
//! are computed from the raw `f64` bit pattern (exponent and top
//! mantissa bits) — no `log2`, no platform-dependent libm calls — so
//! the sketch is bit-deterministic across runs and machines, and
//! merging two sketches is an elementwise bucket add.
//!
//! The value range is `[2^-20, 2^44)`: durations below ~1 µs collapse
//! into a dedicated zero bucket (reported as 0.0), values at or above
//! the top clamp into the last bucket. Memory is a fixed
//! `2049 × u64` ≈ 16 KiB regardless of observation count.

use super::detsum::DetSum;

/// Sub-buckets per power-of-two octave (must match [`SUB_BITS`]).
const SUBS: usize = 32;
/// Mantissa bits used to pick the sub-bucket within an octave.
const SUB_BITS: u32 = 5;
/// Smallest resolved binary exponent; values below `2^MIN_EXP` count
/// into the zero bucket.
const MIN_EXP: i32 = -20;
/// Number of octaves covered above the zero bucket.
const OCTAVES: i32 = 64;
/// Total bucket count: one zero bucket plus `OCTAVES × SUBS`.
const NUM_BUCKETS: usize = 1 + OCTAVES as usize * SUBS;

/// Values at or below this threshold (`2^MIN_EXP` ≈ 0.95 µs) land in
/// the zero bucket and are reported as exactly `0.0`.
pub const ZERO_THRESHOLD: f64 = 9.5367431640625e-7; // 2^-20

/// Worst-case relative error of a reported quantile for values above
/// [`ZERO_THRESHOLD`]: half a sub-bucket's relative width.
pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

/// A fixed-memory streaming quantile sketch over non-negative values.
///
/// `observe` is O(1) with no allocation; `quantile` walks the bucket
/// array (O(2049)). Count, min and max are tracked exactly; the sum is
/// accumulated in order-independent fixed point ([`DetSum`], 2⁻³²
/// quantum) so that merging sketches is bit-identical under any fold
/// order — the sweep engine's merge contract. Quantiles carry at most
/// [`RELATIVE_ERROR`] relative error.
#[derive(Clone)]
pub struct QuantileSketch {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: DetSum,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: DetSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl std::fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets[..] == other.buckets[..]
    }
}

/// Bucket index for `value`. Negatives, NaN and sub-threshold values
/// map to the zero bucket; values beyond the top octave clamp into the
/// last bucket. Monotone in `value`, computed purely from the bit
/// pattern.
fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= ZERO_THRESHOLD {
        return 0; // zero bucket: tiny, zero, negative, or NaN
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp >= MIN_EXP + OCTAVES {
        return NUM_BUCKETS - 1; // clamp: out of range high (incl. inf)
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Midpoint of bucket `index` — the value reported for any quantile
/// landing in that bucket.
fn representative(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let octave = (index - 1) / SUBS;
    let sub = (index - 1) % SUBS;
    let base = 2f64.powi(octave as i32 + MIN_EXP);
    base * (1.0 + (sub as f64 + 0.5) / SUBS as f64)
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. O(1), allocation-free.
    pub fn observe(&mut self, value: f64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum.add(value);
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations (fixed-point accumulated:
    /// deterministic and order-independent, within 2⁻³³ per
    /// observation of the exact sum).
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// Exact minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0 && self.min.is_finite()).then_some(self.min)
    }

    /// Exact maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0 && self.max.is_finite()).then_some(self.max)
    }

    /// Exact mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum.value() / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// Uses the same lower order-statistic rank as
    /// [`crate::metrics::percentile`] (`floor(q · (n-1))`), so for any
    /// sample above [`ZERO_THRESHOLD`] the result is within
    /// [`RELATIVE_ERROR`] of the exact order statistic at that rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Some(representative(i));
            }
        }
        unreachable!("rank < count by construction")
    }

    /// Folds `other` into `self` (elementwise bucket add; count, sum,
    /// min and max combine exactly, and — because every constituent is
    /// an integer add or an f64 min/max — bit-identically under any
    /// fold order). The layout is a compile-time constant, so any two
    /// sketches merge.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum.merge(&other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-4.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(ZERO_THRESHOLD), 0);
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
        let mut prev = 0;
        let mut v = 1.001 * ZERO_THRESHOLD;
        while v < 2f64.powi(MIN_EXP + OCTAVES) * 2.0 {
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone at {v}");
            assert!(i < NUM_BUCKETS);
            prev = i;
            v *= 1.009;
        }
    }

    #[test]
    fn representative_stays_inside_its_bucket() {
        for v in [1e-5, 0.01, 0.5, 1.0, 3.7, 42.0, 1e4, 6.02e8] {
            let rep = representative(bucket_index(v));
            let rel = (rep - v).abs() / v;
            assert!(rel <= RELATIVE_ERROR, "value {v}: rep {rep}, rel {rel}");
        }
    }

    #[test]
    fn quantiles_match_exact_order_statistics_within_bound() {
        let mut s = QuantileSketch::new();
        let mut vals: Vec<f64> = (1..=1000).map(|i| (i as f64) * 0.37).collect();
        for &v in &vals {
            s.observe(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = (q * (vals.len() - 1) as f64).floor() as usize;
            let exact = vals[rank];
            let approx = s.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= RELATIVE_ERROR, "q={q}: exact {exact}, got {approx}");
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), Some(0.37));
        assert_eq!(s.max(), Some(370.0));
    }

    #[test]
    fn tiny_values_report_zero() {
        let mut s = QuantileSketch::new();
        for _ in 0..10 {
            s.observe(1e-9);
        }
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.min(), Some(1e-9), "min stays exact");
    }

    #[test]
    fn merge_equals_observing_everything_in_one_sketch() {
        let (mut a, mut b, mut whole) = (
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        );
        for i in 0..500 {
            let v = 0.001 * (i * i % 997) as f64 + 0.01;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q = {q}");
        }
        assert_eq!(a.buckets[..], whole.buckets[..], "bucket-identical");
        // Fixed-point sums are bit-identical, not merely close.
        assert_eq!(a.sum().to_bits(), whole.sum().to_bits());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_bad_q() {
        let mut s = QuantileSketch::new();
        s.observe(1.0);
        let _ = s.quantile(1.5);
    }
}
