//! Order-independent deterministic summation.
//!
//! Floating-point addition is commutative but not associative, so a
//! plain `f64` running sum depends on the order values (or partial
//! sums) are folded in — fatal for the sweep engine's contract that
//! merging per-cell aggregates is bit-identical regardless of worker
//! count or completion order. [`DetSum`] sidesteps the problem by
//! accumulating in fixed point: every observation is quantized to an
//! integer number of 2⁻³² units and added into an `i128`. Integer
//! addition is associative, so any fold order over any partition of the
//! same observations produces the same bit pattern, and rendering back
//! to `f64` is a single deterministic conversion.
//!
//! The trade-off is quantization: each observation contributes at most
//! 2⁻³³ (~1.2e-10) of absolute error, far below anything the simulator
//! reports (metres, seconds, hop counts at three decimals). Range is
//! generous: |value| up to ~2⁹⁴ before the quantized magnitude could
//! overflow the accumulator across ~2³³ observations.

/// Units per 1.0 — the fixed-point scale, 2³².
const SCALE: f64 = 4_294_967_296.0;

/// A deterministic, order-independent accumulator of `f64` values.
///
/// `add` quantizes to 2⁻³² units; `merge` is an integer add, so
/// `fold(cells)` is bit-identical under any permutation or grouping of
/// `cells`. Non-finite values are ignored (matching how the sketch and
/// histogram sums always treated them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetSum {
    units: i128,
}

impl DetSum {
    /// Creates a zero sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation (non-finite values are ignored).
    pub fn add(&mut self, value: f64) {
        if value.is_finite() {
            // `as i128` saturates, so even absurd magnitudes cannot
            // wrap — they pin to the representable edge deterministically.
            self.units += (value * SCALE).round() as i128;
        }
    }

    /// Folds another sum into this one — exact, order-independent.
    pub fn merge(&mut self, other: &DetSum) {
        self.units += other.units;
    }

    /// The accumulated sum as `f64` (correctly rounded from the exact
    /// fixed-point value).
    pub fn value(&self) -> f64 {
        // i128→f64 rounds to nearest; dividing by a power of two only
        // adjusts the exponent, so the conversion is deterministic and
        // loses nothing beyond f64's own 53-bit mantissa.
        (self.units as f64) / SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_small_integers_exactly() {
        let mut s = DetSum::new();
        for v in [1.0, 3.0, 8.0] {
            s.add(v);
        }
        assert_eq!(s.value(), 12.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = DetSum::new();
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(2.5);
        assert_eq!(s.value(), 2.5);
    }

    #[test]
    fn merge_is_order_independent_bitwise() {
        let values: Vec<f64> = (0..500)
            .map(|i| 0.37 * (i * i % 991) as f64 + 0.001)
            .collect();
        let mut forward = DetSum::new();
        for &v in &values {
            forward.add(v);
        }
        // Partition into odd/even cells and fold in both orders.
        let (mut a, mut b) = (DetSum::new(), DetSum::new());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, forward);
        assert_eq!(ab.value().to_bits(), forward.value().to_bits());
    }

    #[test]
    fn quantization_error_is_tiny() {
        let mut s = DetSum::new();
        let mut exact = 0.0f64;
        for i in 1..=1000 {
            let v = (i as f64).sqrt() * 0.327;
            s.add(v);
            exact += v;
        }
        assert!((s.value() - exact).abs() < 1000.0 * 1.2e-10);
    }

    #[test]
    fn negative_values_cancel() {
        let mut s = DetSum::new();
        s.add(5.25);
        s.add(-5.25);
        assert_eq!(s.value(), 0.0);
    }
}
