//! Deterministic telemetry timeline and online health monitoring.
//!
//! A run with `sample_every` set schedules a sampler on *sim time* that
//! captures a [`TelemetrySnapshot`] of live gauges at a fixed cadence
//! and emits it as [`TraceEvent::TelemetrySample`] — so the same sink
//! machinery that records protocol events records the health series,
//! and offline tools reconstruct bit-exact values from the artifact.
//!
//! Alongside the sampler runs a [`HealthMonitor`]: an event-ledger
//! shadow of the simulation (the same FIFO stage taxonomy the replay
//! engine uses) whose conservation invariants are checked at every
//! sample. A simulation whose counters drift from its own event stream
//! emits a typed [`TraceEvent::InvariantViolated`] instead of silently
//! diverging.
//!
//! [`Timeline`] is the offline half: it rebuilds the sample series from
//! a JSONL artifact and renders it as CSV, with float fields written
//! through the same shortest-round-trip formatting the artifact uses,
//! so `robonet timeline --csv` is byte-identical to the live values.

use std::collections::{BTreeMap, VecDeque};

use crate::trace::TraceEvent;

use super::sink::{for_each_event_line, TruncatedTail};

/// A conservation invariant the [`HealthMonitor`] checks at each
/// sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every failure is replaced, orphaned, or still open:
    /// `failures == replacements + open ledger entries`.
    RepairConservation,
    /// The span assembler and the event ledger agree on how many
    /// repairs are in flight.
    SpanBalance,
    /// The fleet's down-robot count matches the `RobotDied` /
    /// `RobotRepaired` event ledger.
    FleetLiveness,
}

impl Invariant {
    /// Stable snake_case label used in JSONL artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::RepairConservation => "repair_conservation",
            Invariant::SpanBalance => "span_balance",
            Invariant::FleetLiveness => "fleet_liveness",
        }
    }

    /// Parses a [`Invariant::label`] back (for artifact ingestion).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "repair_conservation" => Some(Invariant::RepairConservation),
            "span_balance" => Some(Invariant::SpanBalance),
            "fleet_liveness" => Some(Invariant::FleetLiveness),
            _ => None,
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The gauges captured by one firing of the telemetry sampler.
///
/// Everything here is derived from simulation state on the event
/// timeline, so same-seed runs produce identical snapshots. Per-robot
/// vectors are indexed by fleet slot (robot 0 first).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Sensors currently alive.
    pub alive: u32,
    /// Sensors currently down.
    pub down: u32,
    /// Failures that have occurred so far.
    pub failures: u64,
    /// Replacements installed so far.
    pub replaced: u64,
    /// Fraction of the field covered by live sensors.
    pub coverage: f64,
    /// Open repairs whose furthest stage is the failure itself.
    pub open_failure: u32,
    /// Open repairs whose furthest stage is guardian detection.
    pub open_detected: u32,
    /// Open repairs whose furthest stage is report delivery.
    pub open_reported: u32,
    /// Open repairs whose furthest stage is robot dispatch.
    pub open_dispatched: u32,
    /// Per-robot queue depth (tasks dispatched but not installed).
    pub robot_queues: Vec<u32>,
    /// Per-robot busy flag (`true` while driving a leg).
    pub robot_busy: Vec<bool>,
    /// Frames on the air or awaiting their ACK.
    pub in_flight: u32,
    /// Events pending in the scheduler queue.
    pub sched_queue: u32,
}

/// The chartable series names, in CSV column order (after `t`).
pub const SERIES: &[&str] = &[
    "alive",
    "down",
    "failures",
    "replaced",
    "coverage",
    "open_failure",
    "open_detected",
    "open_reported",
    "open_dispatched",
    "queued",
    "busy_robots",
    "in_flight",
    "sched_queue",
];

impl TelemetrySnapshot {
    /// Total open repairs across all stages.
    pub fn open_total(&self) -> u32 {
        self.open_failure + self.open_detected + self.open_reported + self.open_dispatched
    }

    /// Total tasks queued across the fleet.
    pub fn queued_total(&self) -> u32 {
        self.robot_queues.iter().sum()
    }

    /// Robots currently driving a leg.
    pub fn busy_robots(&self) -> u32 {
        self.robot_busy.iter().filter(|&&b| b).count() as u32
    }

    /// Per-robot queues as the compact artifact string (`"0,2,1"`).
    pub fn queues_string(&self) -> String {
        self.robot_queues
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Per-robot busy flags as the compact artifact string (`"010"`).
    pub fn busy_string(&self) -> String {
        self.robot_busy
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Parses a [`TelemetrySnapshot::queues_string`] back.
    pub fn queues_from_string(s: &str) -> Result<Vec<u32>, String> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|part| {
                part.parse::<u32>()
                    .map_err(|_| format!("bad queue depth '{part}'"))
            })
            .collect()
    }

    /// Parses a [`TelemetrySnapshot::busy_string`] back.
    pub fn busy_from_string(s: &str) -> Result<Vec<bool>, String> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(format!("bad busy flag '{other}'")),
            })
            .collect()
    }

    /// The value of one named series (see [`SERIES`]) at this sample.
    pub fn series_value(&self, name: &str) -> Option<f64> {
        Some(match name {
            "alive" => f64::from(self.alive),
            "down" => f64::from(self.down),
            "failures" => self.failures as f64,
            "replaced" => self.replaced as f64,
            "coverage" => self.coverage,
            "open_failure" => f64::from(self.open_failure),
            "open_detected" => f64::from(self.open_detected),
            "open_reported" => f64::from(self.open_reported),
            "open_dispatched" => f64::from(self.open_dispatched),
            "queued" => f64::from(self.queued_total()),
            "busy_robots" => f64::from(self.busy_robots()),
            "in_flight" => f64::from(self.in_flight),
            "sched_queue" => f64::from(self.sched_queue),
            _ => return None,
        })
    }
}

/// A telemetry sample series, live (pushed by the sampler) or rebuilt
/// offline from a JSONL artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// `(t, snapshot)` pairs in sample order.
    pub samples: Vec<(f64, TelemetrySnapshot)>,
    /// Invariant violations seen in the stream, as
    /// `(t, invariant, expected, actual)`.
    pub violations: Vec<(f64, Invariant, u64, u64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Ingests one event (samples and violations; everything else is
    /// ignored).
    pub fn ingest(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::TelemetrySample { t, sample } => {
                self.samples.push((*t, sample.clone()));
            }
            TraceEvent::InvariantViolated {
                t,
                invariant,
                expected,
                actual,
            } => {
                self.violations.push((*t, *invariant, *expected, *actual));
            }
            _ => {}
        }
    }

    /// Rebuilds the timeline from a JSONL trace artifact.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed record or unsupported schema
    /// version, like every other artifact reader.
    pub fn from_jsonl(text: &str) -> Result<(Self, Option<TruncatedTail>), String> {
        let mut tl = Timeline::new();
        let tail = for_each_event_line(text, |ev| tl.ingest(ev))?;
        Ok((tl, tail))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// One named series as `(t, value)` points, or `None` for an
    /// unknown name.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        if !SERIES.contains(&name) {
            return None;
        }
        Some(
            self.samples
                .iter()
                .map(|(t, s)| (*t, s.series_value(name).expect("known series")))
                .collect(),
        )
    }

    /// Renders the sample series as CSV: a header then one row per
    /// sample. Floats (`t`, `coverage`) use shortest-round-trip
    /// formatting — the same representation the JSONL artifact carries
    /// — so offline CSV is byte-identical to one rendered from the
    /// live sampler's values.
    pub fn csv(&self) -> String {
        let mut out = String::from("t,");
        out.push_str(&SERIES.join(","));
        out.push('\n');
        for (t, s) in &self.samples {
            out.push_str(&format!("{t:?}"));
            for name in SERIES {
                let v = s.series_value(name).expect("known series");
                if *name == "coverage" {
                    out.push_str(&format!(",{v:?}"));
                } else {
                    out.push_str(&format!(",{v:.0}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// What the [`HealthMonitor`] believes about one open repair: the
/// furthest lifecycle stage its events have reached (the replay
/// engine's taxonomy: `"failure"`, `"detected"`, `"report_delivered"`,
/// `"dispatched"`).
type Stage = &'static str;

/// Sim-side counter values handed to [`HealthMonitor::check`] — the
/// ground truth the event ledger is compared against.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Checkpoint {
    /// Failures the simulation has counted.
    pub failures: u64,
    /// Replacements the simulation has counted.
    pub replacements: u64,
    /// Open spans in the live span assembler, if one is running.
    pub open_spans: Option<u64>,
    /// Robots the simulation currently holds down.
    pub robots_down: u64,
}

/// An event-ledger shadow of the repair pipeline, used to check
/// conservation invariants online.
///
/// The monitor ingests the same event stream the sink sees and keeps a
/// FIFO per-sensor open-repair ledger exactly like the offline replay
/// engine, so "open repairs by furthest stage" means the same thing
/// live and in `robonet replay`.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    open: BTreeMap<u32, VecDeque<Stage>>,
    failures: u64,
    replacements: u64,
    robot_deaths: u64,
    robot_repairs: u64,
}

impl HealthMonitor {
    /// A fresh monitor with an empty ledger.
    pub fn new() -> Self {
        HealthMonitor::default()
    }

    /// Consumes one event into the ledger.
    pub fn ingest(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Failure { sensor, .. } => {
                self.failures += 1;
                self.open
                    .entry(sensor.as_u32())
                    .or_default()
                    .push_back("failure");
            }
            TraceEvent::Detected { failed, .. } => self.reach(failed.as_u32(), "detected"),
            TraceEvent::ReportDelivered { failed, .. } => {
                self.reach(failed.as_u32(), "report_delivered");
            }
            TraceEvent::Dispatched { failed, .. } => self.reach(failed.as_u32(), "dispatched"),
            TraceEvent::Replaced { sensor, .. } => {
                self.replacements += 1;
                if let Some(q) = self.open.get_mut(&sensor.as_u32()) {
                    q.pop_front();
                    if q.is_empty() {
                        self.open.remove(&sensor.as_u32());
                    }
                }
            }
            TraceEvent::RobotDied { .. } => self.robot_deaths += 1,
            TraceEvent::RobotRepaired { .. } => self.robot_repairs += 1,
            _ => {}
        }
    }

    /// Advances the earliest open repair for `sensor` that has not yet
    /// reached `stage` (FIFO, mirroring replay's `reach`).
    fn reach(&mut self, sensor: u32, stage: Stage) {
        if let Some(q) = self.open.get_mut(&sensor) {
            if let Some(r) = q.iter_mut().find(|r| **r != stage) {
                *r = stage;
            }
        }
    }

    /// Open repairs in the ledger (orphaned failures stay open
    /// forever — they were never replaced).
    pub fn open_total(&self) -> u64 {
        self.open.values().map(|q| q.len() as u64).sum()
    }

    /// Open repairs bucketed by furthest stage:
    /// `[failure, detected, report_delivered, dispatched]`.
    pub fn stage_counts(&self) -> [u32; 4] {
        let mut counts = [0u32; 4];
        for stage in self.open.values().flatten() {
            let slot = match *stage {
                "failure" => 0,
                "detected" => 1,
                "report_delivered" => 2,
                _ => 3,
            };
            counts[slot] += 1;
        }
        counts
    }

    /// Checks every invariant against the sim-side `checkpoint`,
    /// returning one [`TraceEvent::InvariantViolated`] per imbalance
    /// (empty when all ledgers agree).
    pub fn check(&self, t: f64, checkpoint: &Checkpoint) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let mut verify = |invariant, expected: u64, actual: u64| {
            if expected != actual {
                out.push(TraceEvent::InvariantViolated {
                    t,
                    invariant,
                    expected,
                    actual,
                });
            }
        };
        // Every counted failure is either replaced or still in the
        // ledger (open or orphaned); a mismatch means the simulation's
        // counters and its own event stream tell different stories.
        verify(
            Invariant::RepairConservation,
            checkpoint.replacements + self.open_total(),
            checkpoint.failures,
        );
        if let Some(spans) = checkpoint.open_spans {
            verify(Invariant::SpanBalance, self.open_total(), spans);
        }
        verify(
            Invariant::FleetLiveness,
            self.robot_deaths.saturating_sub(self.robot_repairs),
            checkpoint.robots_down,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_des::NodeId;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            alive: 30,
            down: 2,
            failures: 5,
            replaced: 3,
            coverage: 0.875,
            open_failure: 1,
            open_detected: 0,
            open_reported: 0,
            open_dispatched: 1,
            robot_queues: vec![0, 2, 1],
            robot_busy: vec![false, true, false],
            in_flight: 4,
            sched_queue: 37,
        }
    }

    #[test]
    fn invariant_labels_round_trip() {
        for inv in [
            Invariant::RepairConservation,
            Invariant::SpanBalance,
            Invariant::FleetLiveness,
        ] {
            assert_eq!(Invariant::from_label(inv.label()), Some(inv));
        }
        assert_eq!(Invariant::from_label("entropy"), None);
    }

    #[test]
    fn snapshot_strings_round_trip() {
        let s = sample();
        assert_eq!(s.queues_string(), "0,2,1");
        assert_eq!(s.busy_string(), "010");
        assert_eq!(
            TelemetrySnapshot::queues_from_string("0,2,1").unwrap(),
            vec![0, 2, 1]
        );
        assert_eq!(
            TelemetrySnapshot::busy_from_string("010").unwrap(),
            vec![false, true, false]
        );
        assert_eq!(TelemetrySnapshot::queues_from_string("").unwrap(), vec![]);
        assert!(TelemetrySnapshot::queues_from_string("1,x").is_err());
        assert!(TelemetrySnapshot::busy_from_string("012").is_err());
    }

    #[test]
    fn every_series_name_resolves() {
        let s = sample();
        for name in SERIES {
            assert!(s.series_value(name).is_some(), "series {name} missing");
        }
        assert_eq!(s.series_value("queued"), Some(3.0));
        assert_eq!(s.series_value("busy_robots"), Some(1.0));
        assert_eq!(s.series_value("flux_capacitance"), None);
    }

    #[test]
    fn csv_has_header_and_shortest_round_trip_floats() {
        let mut tl = Timeline::new();
        tl.samples.push((100.0, sample()));
        let csv = tl.csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("t,alive,down,"));
        assert_eq!(header.split(',').count(), SERIES.len() + 1);
        let row = lines.next().unwrap();
        assert!(row.starts_with("100.0,30,2,5,3,0.875,"), "row: {row}");
    }

    #[test]
    fn monitor_tracks_stages_like_replay() {
        let mut m = HealthMonitor::new();
        let s = NodeId::new(4);
        m.ingest(&TraceEvent::Failure { t: 1.0, sensor: s });
        assert_eq!(m.stage_counts(), [1, 0, 0, 0]);
        m.ingest(&TraceEvent::Detected {
            t: 2.0,
            guardian: NodeId::new(1),
            failed: s,
        });
        assert_eq!(m.stage_counts(), [0, 1, 0, 0]);
        m.ingest(&TraceEvent::ReportDelivered {
            t: 3.0,
            manager: NodeId::new(99),
            failed: s,
            hops: 2,
        });
        m.ingest(&TraceEvent::Dispatched {
            t: 4.0,
            robot: NodeId::new(100),
            failed: s,
            departed: true,
        });
        assert_eq!(m.stage_counts(), [0, 0, 0, 1]);
        assert_eq!(m.open_total(), 1);
        m.ingest(&TraceEvent::Replaced {
            t: 9.0,
            robot: NodeId::new(100),
            sensor: s,
            travel: 12.0,
            loc: robonet_geom::Point::new(1.0, 2.0),
        });
        assert_eq!(m.open_total(), 0);
    }

    #[test]
    fn check_flags_each_imbalance() {
        let mut m = HealthMonitor::new();
        m.ingest(&TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(4),
        });
        // Balanced: 1 failure, 0 replaced, 1 open; spans agree; fleet
        // healthy.
        let ok = m.check(
            10.0,
            &Checkpoint {
                failures: 1,
                replacements: 0,
                open_spans: Some(1),
                robots_down: 0,
            },
        );
        assert!(ok.is_empty(), "got: {ok:?}");

        // A sim that lost a failure, a drifted span assembler, and a
        // down robot the ledger never saw — three distinct violations.
        let bad = m.check(
            10.0,
            &Checkpoint {
                failures: 2,
                replacements: 0,
                open_spans: Some(0),
                robots_down: 1,
            },
        );
        let kinds: Vec<Invariant> = bad
            .iter()
            .map(|e| match e {
                TraceEvent::InvariantViolated { invariant, .. } => *invariant,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                Invariant::RepairConservation,
                Invariant::SpanBalance,
                Invariant::FleetLiveness,
            ]
        );
    }

    #[test]
    fn timeline_ingests_samples_and_violations() {
        let mut tl = Timeline::new();
        tl.ingest(&TraceEvent::TelemetrySample {
            t: 100.0,
            sample: sample(),
        });
        tl.ingest(&TraceEvent::InvariantViolated {
            t: 200.0,
            invariant: Invariant::SpanBalance,
            expected: 1,
            actual: 2,
        });
        tl.ingest(&TraceEvent::Failure {
            t: 1.0,
            sensor: NodeId::new(0),
        });
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.violations, vec![(200.0, Invariant::SpanBalance, 1, 2)]);
        let cov = tl.series("coverage").unwrap();
        assert_eq!(cov, vec![(100.0, 0.875)]);
        assert!(tl.series("nope").is_none());
    }
}
