//! The mobile-sensor relocation baseline (Wang et al. \[13\]).
//!
//! The paper's motivation (§1, §5): prior work repairs coverage holes by
//! *relocating redundant mobile sensors* — every sensor needs motors,
//! steering and GPS. Wang et al. propose *cascading* movement, where a
//! chain of sensors each shift one step toward the hole so no single
//! node pays the whole distance. This module implements both relocation
//! flavours at the movement-plan level so the robot approach can be
//! compared against its motivation quantitatively (`ablation_baseline`
//! bench): total distance moved, worst single-node distance, and the
//! number of nodes that must be mobility-equipped.

use robonet_geom::Point;

/// How redundant mobile sensors move to fill a hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationPolicy {
    /// The nearest redundant sensor drives the full distance to the
    /// hole.
    Direct,
    /// A chain of intermediate sensors each shift over: the hole is
    /// filled by its nearest (working) neighbour, whose spot is filled
    /// by the next node back, ending at a redundant sensor. Balances
    /// per-node energy at the cost of more total movement and more
    /// moving nodes (Wang et al.'s cascaded movement).
    Cascaded,
}

/// One executed relocation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RelocationPlan {
    /// Each move as `(from, to)`.
    pub moves: Vec<(Point, Point)>,
}

impl RelocationPlan {
    /// Total distance moved by all nodes, in metres.
    pub fn total_distance(&self) -> f64 {
        self.moves.iter().map(|(a, b)| a.distance(*b)).sum()
    }

    /// The longest single-node move, in metres (per-node energy peak —
    /// what cascading is designed to minimise).
    pub fn max_single_move(&self) -> f64 {
        self.moves
            .iter()
            .map(|(a, b)| a.distance(*b))
            .fold(0.0, f64::max)
    }

    /// Number of nodes that moved.
    pub fn movers(&self) -> usize {
        self.moves.len()
    }
}

/// A field of working sensors plus spare (redundant) mobile sensors.
#[derive(Debug, Clone)]
pub struct MobileSensorField {
    working: Vec<Point>,
    spares: Vec<Point>,
}

impl MobileSensorField {
    /// Creates a field with the given working sensors and redundant
    /// spares.
    pub fn new(working: Vec<Point>, spares: Vec<Point>) -> Self {
        MobileSensorField { working, spares }
    }

    /// Remaining spare count.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// Working sensor positions.
    pub fn working(&self) -> &[Point] {
        &self.working
    }

    /// Fills a hole at `hole` (a failed sensor's position) under
    /// `policy`, consuming one spare. Returns `None` when no spares
    /// remain.
    pub fn fill_hole(&mut self, hole: Point, policy: RelocationPolicy) -> Option<RelocationPlan> {
        if self.spares.is_empty() {
            return None;
        }
        match policy {
            RelocationPolicy::Direct => {
                let (si, _) = self
                    .spares
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.distance_sq(hole)
                            .partial_cmp(&b.distance_sq(hole))
                            .expect("finite positions")
                    })
                    .expect("non-empty spares");
                let spare = self.spares.swap_remove(si);
                self.working.push(hole);
                Some(RelocationPlan {
                    moves: vec![(spare, hole)],
                })
            }
            RelocationPolicy::Cascaded => {
                // Build the cascade: hop from the hole toward the nearest
                // spare through intermediate working sensors, each hop
                // choosing the working sensor closest to the current gap
                // while making progress toward the spare.
                let (si, _) = self
                    .spares
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.distance_sq(hole)
                            .partial_cmp(&b.distance_sq(hole))
                            .expect("finite positions")
                    })
                    .expect("non-empty spares");
                let spare = self.spares.swap_remove(si);

                let mut moves = Vec::new();
                let mut gap = hole;
                // Cap cascade length to avoid pathological chains.
                for _ in 0..16 {
                    let dir_done = gap.distance(spare);
                    // Candidate: working sensor strictly closer to the
                    // spare than the gap is, nearest to the gap.
                    let candidate = self
                        .working
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| w.distance_sq(spare) < gap.distance_sq(spare))
                        .min_by(|(_, a), (_, b)| {
                            a.distance_sq(gap)
                                .partial_cmp(&b.distance_sq(gap))
                                .expect("finite positions")
                        })
                        .map(|(i, w)| (i, *w));
                    match candidate {
                        Some((wi, wpos)) if wpos.distance(gap) < dir_done => {
                            moves.push((wpos, gap));
                            self.working[wi] = gap;
                            gap = wpos;
                        }
                        _ => break,
                    }
                }
                // The spare fills the last vacated spot in the chain
                // (the hole itself is already occupied by the first
                // chain sensor when the cascade is non-trivial).
                moves.push((spare, gap));
                self.working.push(gap);
                Some(RelocationPlan { moves })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn line_field() -> MobileSensorField {
        // Working sensors every 20 m along a line; one spare at the far
        // end.
        let working: Vec<Point> = (1..=5).map(|i| p(i as f64 * 20.0, 0.0)).collect();
        let spares = vec![p(120.0, 0.0)];
        MobileSensorField::new(working, spares)
    }

    #[test]
    fn direct_moves_one_node_full_distance() {
        let mut f = line_field();
        let plan = f.fill_hole(p(0.0, 0.0), RelocationPolicy::Direct).unwrap();
        assert_eq!(plan.movers(), 1);
        assert_eq!(plan.total_distance(), 120.0);
        assert_eq!(plan.max_single_move(), 120.0);
        assert_eq!(f.spares_left(), 0);
    }

    #[test]
    fn cascade_bounds_single_node_distance() {
        let mut f = line_field();
        let plan = f
            .fill_hole(p(0.0, 0.0), RelocationPolicy::Cascaded)
            .unwrap();
        assert!(plan.movers() > 1, "cascade uses intermediate sensors");
        assert!(
            plan.max_single_move() < 120.0,
            "no node drives the whole way: {}",
            plan.max_single_move()
        );
        // Total distance is at least the direct distance (triangle
        // inequality along the chain).
        assert!(plan.total_distance() >= 119.9);
    }

    #[test]
    fn cascade_preserves_coverage_positions() {
        // After cascading, the original hole and every vacated spot
        // must be occupied: the multiset of working positions contains
        // the hole and no duplicates.
        let mut f = line_field();
        let hole = p(0.0, 0.0);
        f.fill_hole(hole, RelocationPolicy::Cascaded).unwrap();
        assert!(f.working().iter().any(|w| w.distance(hole) < 1e-9));
        for (i, a) in f.working().iter().enumerate() {
            for b in f.working().iter().skip(i + 1) {
                assert!(a.distance(*b) > 1e-9, "two sensors stacked at {a}");
            }
        }
    }

    #[test]
    fn no_spares_means_no_plan() {
        let mut f = MobileSensorField::new(vec![p(10.0, 0.0)], vec![]);
        assert!(f.fill_hole(p(0.0, 0.0), RelocationPolicy::Direct).is_none());
    }

    #[test]
    fn spares_deplete_across_holes() {
        let working: Vec<Point> = (1..=3).map(|i| p(i as f64 * 10.0, 0.0)).collect();
        let spares = vec![p(50.0, 0.0), p(60.0, 0.0)];
        let mut f = MobileSensorField::new(working, spares);
        assert!(f.fill_hole(p(0.0, 0.0), RelocationPolicy::Direct).is_some());
        assert!(f.fill_hole(p(5.0, 0.0), RelocationPolicy::Direct).is_some());
        assert!(f.fill_hole(p(7.0, 0.0), RelocationPolicy::Direct).is_none());
    }
}
