//! Experiment metrics: exactly what the paper's evaluation reports.

use robonet_radio::{TrafficClass, TxStats};

use crate::obs::MetricsRegistry;
use crate::trace::DropReason;

/// Packet losses split by [`DropReason`] — the per-reason view of what
/// used to be one lumped `packets_dropped` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropBreakdown {
    /// Drops because the hop budget ran out.
    pub ttl_expired: u64,
    /// Drops because a node on the path had no usable neighbours.
    pub no_neighbors: u64,
    /// Drops because the MAC exhausted its retransmission attempts.
    pub mac_give_up: u64,
}

impl DropBreakdown {
    /// Total drops across all reasons (the old lumped counter).
    pub fn total(&self) -> u64 {
        self.ttl_expired + self.no_neighbors + self.mac_give_up
    }

    /// Increments the count for `reason`.
    pub fn record(&mut self, reason: DropReason) {
        match reason {
            DropReason::TtlExpired => self.ttl_expired += 1,
            DropReason::NoNeighbors => self.no_neighbors += 1,
            DropReason::MacGiveUp => self.mac_give_up += 1,
        }
    }

    /// Adds `other`'s counts into `self` (order-independent).
    pub fn merge(&mut self, other: &DropBreakdown) {
        self.ttl_expired += other.ttl_expired;
        self.no_neighbors += other.no_neighbors;
        self.mac_give_up += other.mac_give_up;
    }
}

impl std::fmt::Display for DropBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (ttl {}, no-neighbor {}, mac {})",
            self.total(),
            self.ttl_expired,
            self.no_neighbors,
            self.mac_give_up
        )
    }
}

/// Counters for injected faults and the recovery protocol's responses.
/// All-zero (and absent from output) in fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecoveryStats {
    /// Failure reports swallowed by injected link loss.
    pub report_drops: u64,
    /// Repair requests swallowed by injected link loss.
    pub dispatch_drops: u64,
    /// Location updates swallowed by injected link loss.
    pub update_drops: u64,
    /// Guardian report retransmissions (attempt ≥ 2).
    pub report_retries: u64,
    /// Failures whose guardian exhausted its report attempts — these
    /// sensors stay dead, by protocol decision rather than silence.
    pub reports_abandoned: u64,
    /// Manager dispatches that timed out awaiting completion.
    pub dispatch_timeouts: u64,
    /// Re-dispatches issued after a timeout.
    pub redispatches: u64,
    /// Failures the manager gave up re-dispatching.
    pub dispatches_abandoned: u64,
    /// Robots that broke down (stopped dead).
    pub robot_breakdowns: u64,
    /// Robots degraded to a slower speed.
    pub robot_slowdowns: u64,
    /// Robots repaired in place after a breakdown.
    pub robot_repairs: u64,
    /// Takeover declarations by peers of a silent robot.
    pub takeovers: u64,
}

impl FaultRecoveryStats {
    /// True when nothing was injected and nothing recovered — the
    /// fault-free case, where outputs omit these counters entirely.
    pub fn is_empty(&self) -> bool {
        *self == FaultRecoveryStats::default()
    }

    /// Adds `other`'s counters into `self` (order-independent).
    pub fn merge(&mut self, other: &FaultRecoveryStats) {
        self.report_drops += other.report_drops;
        self.dispatch_drops += other.dispatch_drops;
        self.update_drops += other.update_drops;
        self.report_retries += other.report_retries;
        self.reports_abandoned += other.reports_abandoned;
        self.dispatch_timeouts += other.dispatch_timeouts;
        self.redispatches += other.redispatches;
        self.dispatches_abandoned += other.dispatches_abandoned;
        self.robot_breakdowns += other.robot_breakdowns;
        self.robot_slowdowns += other.robot_slowdowns;
        self.robot_repairs += other.robot_repairs;
        self.takeovers += other.takeovers;
    }
}

impl std::fmt::Display for FaultRecoveryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drops {}/{}/{} (report/dispatch/update), retries {}, \
             abandoned reports {}, timeouts {}, redispatches {}, \
             abandoned dispatches {}, breakdowns {}, slowdowns {}, \
             repairs {}, takeovers {}",
            self.report_drops,
            self.dispatch_drops,
            self.update_drops,
            self.report_retries,
            self.reports_abandoned,
            self.dispatch_timeouts,
            self.redispatches,
            self.dispatches_abandoned,
            self.robot_breakdowns,
            self.robot_slowdowns,
            self.robot_repairs,
            self.takeovers
        )
    }
}

/// Raw counters and samples collected during one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Sensor failures that occurred.
    pub failures_occurred: u64,
    /// Failure reports originated by guardians (incl. retries).
    pub reports_sent: u64,
    /// Failure reports that reached a manager.
    pub reports_delivered: u64,
    /// Repair requests sent by the central manager (centralized only).
    pub requests_sent: u64,
    /// Repair requests that reached their robot.
    pub requests_delivered: u64,
    /// Replacements completed by robots.
    pub replacements: u64,
    /// Robot arrivals at nodes that turned out to be alive (false
    /// detections).
    pub spurious_replacements: u64,
    /// Packets dropped, broken down by reason (TTL, no neighbours, MAC
    /// give-up).
    pub packets_dropped: DropBreakdown,
    /// Distance of the leg that served each completed replacement, in
    /// metres — Figure 2's samples.
    pub travel_per_task: Vec<f64>,
    /// Hop count of each delivered failure report — Figure 3.
    pub report_hops: Vec<u32>,
    /// Hop count of each delivered repair request — Figure 3
    /// (centralized only).
    pub request_hops: Vec<u32>,
    /// Dispatch-to-installation delay of each replacement, in seconds.
    pub repair_delay: Vec<f64>,
    /// Robot odometer totals at the end of the run, in metres.
    pub robot_odometers: Vec<f64>,
    /// Replacements completed per robot (load balance).
    pub tasks_per_robot: Vec<u64>,
    /// Fraction of sensors whose `myrobot` is truly the closest robot,
    /// sampled at the end of the run (dynamic-algorithm fidelity).
    pub myrobot_accuracy: f64,
    /// MAC-level transmission statistics snapshot.
    pub tx: TxStats,
    /// Periodic coverage samples `(time s, covered fraction, dead
    /// sensors)` — populated only when the scenario enables
    /// [`coverage sampling`](crate::config::CoverageSampling).
    pub coverage_timeline: Vec<(f64, f64, u32)>,
    /// Periodic telemetry snapshots `(time s, gauges)` — populated only
    /// when the scenario sets
    /// [`sample_every`](crate::config::ScenarioConfig::sample_every).
    pub telemetry_timeline: Vec<(f64, crate::obs::timeline::TelemetrySnapshot)>,
    /// Conservation-invariant violations the online health monitor
    /// caught (always 0 for a healthy build; non-zero means the
    /// simulation's counters drifted from its own event stream).
    pub invariant_violations: u64,
    /// Injected-fault and recovery-protocol counters (all zero — and
    /// omitted from output — when no faults were injected).
    pub faults: FaultRecoveryStats,
    /// End-of-run snapshot of the per-subsystem counter/histogram
    /// registry (`des.scheduler.*`, `radio.mac.*`, `net.routing.*`,
    /// `coord.<algorithm>.*`) — the run manifest embeds this.
    pub counters: MetricsRegistry,
}

/// Sample mean, or `None` for an empty slice.
pub fn mean_f64(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Sample standard deviation (n-1), or `None` with fewer than 2 samples.
pub fn stddev_f64(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean_f64(samples)?;
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    Some(var.sqrt())
}

/// Linear-interpolated percentile (`p` in `[0, 1]`) of unsorted samples,
/// or `None` for an empty slice.
///
/// Selects the two bracketing order statistics with quickselect
/// (`select_nth_unstable_by`) instead of sorting a copy — O(n) rather
/// than O(n log n) on the summary hot path — and interpolates exactly
/// as the sorted version did, so results stay bit-identical.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or a sample is NaN.
///
/// ```
/// use robonet_core::metrics::percentile;
/// let delays = [12.0, 7.0, 30.0, 9.0, 15.0];
/// assert_eq!(percentile(&delays, 0.5), Some(12.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut scratch = samples.to_vec();
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN sample");
    let rank = p * (scratch.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let (_, &mut lo_val, rest) = scratch.select_nth_unstable_by(lo, cmp);
    // The `hi`-th order statistic is either the same element or the
    // minimum of everything that partitioned to the right of `lo`.
    let hi_val = if hi == lo {
        lo_val
    } else {
        *rest
            .iter()
            .min_by(|a, b| cmp(a, b))
            .expect("hi > lo implies a non-empty right partition")
    };
    Some(lo_val * (1.0 - frac) + hi_val * frac)
}

/// Mean of integer hop counts.
pub fn mean_u32(samples: &[u32]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().map(|&x| f64::from(x)).sum::<f64>() / samples.len() as f64)
    }
}

/// Welch's t-statistic for the difference of two sample means, and an
/// approximate two-sided significance verdict at the 5% level (using the
/// normal critical value 1.96 — adequate for the ≥ 20-sample comparisons
/// the benches make).
///
/// Returns `None` when either sample has fewer than two values or zero
/// variance in both.
///
/// ```
/// use robonet_core::metrics::welch_t;
/// let a = [10.0, 10.5, 9.5, 10.2];
/// let b = [15.0, 15.5, 14.5, 15.2];
/// let r = welch_t(&a, &b).unwrap();
/// assert!(r.significant_5pct && r.mean_diff < 0.0);
/// ```
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<WelchResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean_f64(a)?, mean_f64(b)?);
    let (sa, sb) = (stddev_f64(a)?, stddev_f64(b)?);
    let va = sa * sa / a.len() as f64;
    let vb = sb * sb / b.len() as f64;
    let se = (va + vb).sqrt();
    if se == 0.0 {
        return None;
    }
    let t = (ma - mb) / se;
    Some(WelchResult {
        t,
        mean_diff: ma - mb,
        significant_5pct: t.abs() > 1.96,
    })
}

/// Outcome of [`welch_t`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t-statistic (positive when the first sample's mean is
    /// larger).
    pub t: f64,
    /// Difference of means (first minus second).
    pub mean_diff: f64,
    /// Whether the difference clears the ~5% two-sided level.
    pub significant_5pct: bool,
}

impl Metrics {
    /// Condenses the run into the per-figure numbers the paper reports.
    pub fn summary(&self) -> Summary {
        let failures = self.replacements.max(1);
        Summary {
            failures_occurred: self.failures_occurred,
            replacements: self.replacements,
            avg_travel_per_failure: mean_f64(&self.travel_per_task).unwrap_or(0.0),
            avg_report_hops: mean_u32(&self.report_hops).unwrap_or(0.0),
            avg_request_hops: mean_u32(&self.request_hops),
            loc_update_tx_per_failure: self.tx.data_tx(TrafficClass::LocationUpdate) as f64
                / failures as f64,
            report_delivery_ratio: if self.reports_sent == 0 {
                1.0
            } else {
                self.reports_delivered as f64 / self.reports_sent as f64
            },
            avg_repair_delay: mean_f64(&self.repair_delay).unwrap_or(0.0),
            p95_repair_delay: percentile(&self.repair_delay, 0.95).unwrap_or(0.0),
            total_travel: self.robot_odometers.iter().sum(),
            myrobot_accuracy: self.myrobot_accuracy,
            packets_dropped: self.packets_dropped,
        }
    }
}

/// The per-run numbers behind the paper's Figures 2–4.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Failures that occurred during the run.
    pub failures_occurred: u64,
    /// Failures repaired.
    pub replacements: u64,
    /// Figure 2: average robot travelling distance per failure (m).
    pub avg_travel_per_failure: f64,
    /// Figure 3: average hops of a failure report.
    pub avg_report_hops: f64,
    /// Figure 3: average hops of a repair request (centralized only).
    pub avg_request_hops: Option<f64>,
    /// Figure 4: location-update transmissions per failure.
    pub loc_update_tx_per_failure: f64,
    /// Delivery ratio of failure reports (paper: 100%).
    pub report_delivery_ratio: f64,
    /// Mean dispatch→installation delay (s).
    pub avg_repair_delay: f64,
    /// 95th-percentile dispatch→installation delay (s) — the tail a
    /// coverage-availability SLO would care about.
    pub p95_repair_delay: f64,
    /// Total metres travelled by the fleet.
    pub total_travel: f64,
    /// End-of-run fraction of sensors pointing at their true closest
    /// robot.
    pub myrobot_accuracy: f64,
    /// Packets lost, by reason.
    pub packets_dropped: DropBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean_f64(&[]), None);
        assert_eq!(mean_f64(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev_f64(&[1.0]), None);
        let sd = stddev_f64(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138089935).abs() < 1e-6);
        assert_eq!(mean_u32(&[1, 2, 3]), Some(2.0));
        assert_eq!(mean_u32(&[]), None);
    }

    #[test]
    fn summary_divides_by_replacements() {
        let mut m = Metrics {
            replacements: 4,
            travel_per_task: vec![100.0, 60.0, 140.0, 100.0],
            report_hops: vec![2, 2, 3, 1],
            reports_sent: 4,
            reports_delivered: 4,
            ..Metrics::default()
        };
        m.tx.class_mut(TrafficClass::LocationUpdate).data_tx = 400;
        let s = m.summary();
        assert_eq!(s.avg_travel_per_failure, 100.0);
        assert_eq!(s.avg_report_hops, 2.0);
        assert_eq!(s.loc_update_tx_per_failure, 100.0);
        assert_eq!(s.report_delivery_ratio, 1.0);
        assert_eq!(s.avg_request_hops, None, "no requests in distributed runs");
    }

    #[test]
    fn percentile_interpolates() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 0.25), Some(2.0));
        // Unsorted input works too.
        assert_eq!(percentile(&[5.0, 1.0, 3.0, 2.0, 4.0], 0.5), Some(3.0));
    }

    #[test]
    fn welch_t_detects_separation() {
        let a = [10.0, 11.0, 9.5, 10.5, 10.2, 9.8];
        let b = [14.0, 15.0, 14.5, 15.5, 14.2, 14.8];
        let r = welch_t(&a, &b).unwrap();
        assert!(r.t < -1.96, "clearly separated samples: t = {}", r.t);
        assert!(r.significant_5pct);
        assert!(r.mean_diff < 0.0);
        // Overlapping samples are not significant.
        let c = [10.0, 12.0, 9.0, 13.0, 11.0];
        let d = [10.5, 11.5, 9.5, 12.5, 11.2];
        let r2 = welch_t(&c, &d).unwrap();
        assert!(!r2.significant_5pct, "t = {}", r2.t);
        // Degenerate inputs.
        assert!(welch_t(&[1.0], &a).is_none());
        assert!(welch_t(&[2.0, 2.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_bad_p() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn drop_breakdown_records_and_totals() {
        let mut d = DropBreakdown::default();
        d.record(DropReason::TtlExpired);
        d.record(DropReason::TtlExpired);
        d.record(DropReason::NoNeighbors);
        d.record(DropReason::MacGiveUp);
        assert_eq!(d.ttl_expired, 2);
        assert_eq!(d.no_neighbors, 1);
        assert_eq!(d.mac_give_up, 1);
        assert_eq!(d.total(), 4);
        assert_eq!(d.to_string(), "4 (ttl 2, no-neighbor 1, mac 1)");
        let m = Metrics {
            packets_dropped: d,
            ..Metrics::default()
        };
        assert_eq!(m.summary().packets_dropped, d, "breakdown reaches Summary");
    }

    #[test]
    fn summary_handles_empty_run() {
        let s = Metrics::default().summary();
        assert_eq!(s.replacements, 0);
        assert_eq!(s.avg_travel_per_failure, 0.0);
        assert_eq!(s.report_delivery_ratio, 1.0, "vacuous delivery is perfect");
    }
}
