//! Plain-text and CSV rendering of experiment results.

use crate::config::ScenarioConfig;
use crate::metrics::Summary;

/// One row of a figure table: a scenario and its summary.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of robots.
    pub robots: usize,
    /// RNG seed.
    pub seed: u64,
    /// The run's summary.
    pub summary: Summary,
}

impl Row {
    /// Builds a row from a config and its summary.
    pub fn new(cfg: &ScenarioConfig, summary: Summary) -> Self {
        Row {
            algorithm: cfg.algorithm.name().to_string(),
            robots: cfg.n_robots(),
            seed: cfg.seed,
            summary,
        }
    }

    /// CSV header matching [`Row::to_csv`].
    pub fn csv_header() -> &'static str {
        "algorithm,robots,seed,failures,replacements,avg_travel_m,avg_report_hops,\
         avg_request_hops,loc_update_tx_per_failure,report_delivery_ratio,\
         avg_repair_delay_s,total_travel_m,myrobot_accuracy"
    }

    /// Renders the row as a CSV line.
    pub fn to_csv(&self) -> String {
        let s = &self.summary;
        format!(
            "{},{},{},{},{},{:.2},{:.3},{},{:.2},{:.4},{:.1},{:.1},{:.4}",
            self.algorithm,
            self.robots,
            self.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "".to_string(), |h| format!("{h:.3}")),
            s.loc_update_tx_per_failure,
            s.report_delivery_ratio,
            s.avg_repair_delay,
            s.total_travel,
            s.myrobot_accuracy,
        )
    }
}

/// Renders rows as an aligned text table (for terminal output).
pub fn text_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12} {:>12} {:>13} {:>12}\n",
        "algorithm",
        "robots",
        "seed",
        "failures",
        "repaired",
        "travel(m)",
        "report-hops",
        "request-hops",
        "upd-tx/fail"
    ));
    for r in rows {
        let s = &r.summary;
        out.push_str(&format!(
            "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12.1} {:>12.2} {:>13} {:>12.1}\n",
            r.algorithm,
            r.robots,
            r.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "-".to_string(), |h| format!("{h:.2}")),
            s.loc_update_tx_per_failure,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn summary() -> Summary {
        Summary {
            failures_occurred: 100,
            replacements: 98,
            avg_travel_per_failure: 95.5,
            avg_report_hops: 2.1,
            avg_request_hops: Some(1.6),
            loc_update_tx_per_failure: 42.0,
            report_delivery_ratio: 1.0,
            avg_repair_delay: 130.0,
            p95_repair_delay: 300.0,
            total_travel: 9359.0,
            myrobot_accuracy: 0.97,
        }
    }

    #[test]
    fn csv_round_trip_fields() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Centralized);
        let row = Row::new(&cfg, summary());
        let line = row.to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(
            fields.len(),
            Row::csv_header().split(',').count(),
            "row matches header"
        );
        assert_eq!(fields[0], "centralized");
        assert_eq!(fields[1], "4");
        assert_eq!(fields[7], "1.600", "request hops present");
    }

    #[test]
    fn csv_empty_request_hops_for_distributed() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic);
        let mut s = summary();
        s.avg_request_hops = None;
        let line = Row::new(&cfg, s).to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[7], "", "empty cell, not NaN");
    }

    #[test]
    fn text_table_contains_rows() {
        let cfg = ScenarioConfig::paper(3, Algorithm::Dynamic);
        let t = text_table(&[Row::new(&cfg, summary())]);
        assert!(t.contains("dynamic"));
        assert!(t.contains('9'), "robot count shown");
        assert!(t.lines().count() >= 2);
    }
}
