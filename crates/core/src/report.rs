//! Plain-text and CSV rendering of experiment results.

use crate::config::ScenarioConfig;
use crate::metrics::Summary;
use crate::obs::SpanReport;

/// One row of a figure table: a scenario and its summary.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of robots.
    pub robots: usize,
    /// RNG seed.
    pub seed: u64,
    /// The run's summary.
    pub summary: Summary,
}

impl Row {
    /// Builds a row from a config and its summary.
    pub fn new(cfg: &ScenarioConfig, summary: Summary) -> Self {
        Row {
            algorithm: cfg.algorithm.name().to_string(),
            robots: cfg.n_robots(),
            seed: cfg.seed,
            summary,
        }
    }

    /// CSV header matching [`Row::to_csv`].
    pub fn csv_header() -> &'static str {
        "algorithm,robots,seed,failures,replacements,avg_travel_m,avg_report_hops,\
         avg_request_hops,loc_update_tx_per_failure,report_delivery_ratio,\
         avg_repair_delay_s,total_travel_m,myrobot_accuracy,\
         dropped_ttl,dropped_no_neighbor,dropped_mac"
    }

    /// Renders the row as a CSV line.
    pub fn to_csv(&self) -> String {
        let s = &self.summary;
        format!(
            "{},{},{},{},{},{:.2},{:.3},{},{:.2},{:.4},{:.1},{:.1},{:.4},{},{},{}",
            self.algorithm,
            self.robots,
            self.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "".to_string(), |h| format!("{h:.3}")),
            s.loc_update_tx_per_failure,
            s.report_delivery_ratio,
            s.avg_repair_delay,
            s.total_travel,
            s.myrobot_accuracy,
            s.packets_dropped.ttl_expired,
            s.packets_dropped.no_neighbors,
            s.packets_dropped.mac_give_up,
        )
    }
}

/// Renders rows as an aligned text table (for terminal output).
pub fn text_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12} {:>12} {:>13} {:>12} {:>20}\n",
        "algorithm",
        "robots",
        "seed",
        "failures",
        "repaired",
        "travel(m)",
        "report-hops",
        "request-hops",
        "upd-tx/fail",
        "drops(ttl/nbr/mac)"
    ));
    for r in rows {
        let s = &r.summary;
        let d = &s.packets_dropped;
        out.push_str(&format!(
            "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12.1} {:>12.2} {:>13} {:>12.1} {:>20}\n",
            r.algorithm,
            r.robots,
            r.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "-".to_string(), |h| format!("{h:.2}")),
            s.loc_update_tx_per_failure,
            format!(
                "{}({}/{}/{})",
                d.total(),
                d.ttl_expired,
                d.no_neighbors,
                d.mac_give_up
            ),
        ));
    }
    out
}

/// CSV header matching [`spans_csv`].
pub fn spans_csv_header() -> &'static str {
    "algorithm,stage,count,mean_s,p50_s,p95_s,p99_s,max_s"
}

/// Renders span decompositions as CSV: one line per (algorithm, stage),
/// stages in causal order with a trailing `total` row per algorithm.
/// The output is deterministic for a deterministic trace, so it can be
/// diffed byte-for-byte against a golden file.
pub fn spans_csv(tables: &[(String, SpanReport)]) -> String {
    let mut out = String::from(spans_csv_header());
    out.push('\n');
    for (algorithm, report) in tables {
        for r in report.stage_rows() {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                algorithm, r.stage, r.count, r.mean_s, r.p50_s, r.p95_s, r.p99_s, r.max_s
            ));
        }
    }
    out
}

/// Renders span decompositions as an aligned text table, one block per
/// algorithm, with an assembly-health footer (orphans and anomalous
/// events) under each block.
pub fn spans_text(tables: &[(String, SpanReport)]) -> String {
    let mut out = String::new();
    for (i, (algorithm, report)) in tables.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&format!(
            "{algorithm}: {} failures, {} repaired, {} orphaned\n",
            report.failures,
            report.replacements(),
            report.orphans.len(),
        ));
        out.push_str(&format!(
            "{:<17} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "count", "mean(s)", "p50(s)", "p95(s)", "p99(s)", "max(s)"
        ));
        for r in report.stage_rows() {
            out.push_str(&format!(
                "{:<17} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                r.stage, r.count, r.mean_s, r.p50_s, r.p95_s, r.p99_s, r.max_s
            ));
        }
        if report.unmatched_events > 0 || report.out_of_order > 0 {
            out.push_str(&format!(
                "  ({} unmatched events, {} out-of-order intervals)\n",
                report.unmatched_events, report.out_of_order
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn summary() -> Summary {
        Summary {
            failures_occurred: 100,
            replacements: 98,
            avg_travel_per_failure: 95.5,
            avg_report_hops: 2.1,
            avg_request_hops: Some(1.6),
            loc_update_tx_per_failure: 42.0,
            report_delivery_ratio: 1.0,
            avg_repair_delay: 130.0,
            p95_repair_delay: 300.0,
            total_travel: 9359.0,
            myrobot_accuracy: 0.97,
            packets_dropped: crate::metrics::DropBreakdown {
                ttl_expired: 3,
                no_neighbors: 1,
                mac_give_up: 2,
            },
        }
    }

    #[test]
    fn csv_round_trip_fields() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Centralized);
        let row = Row::new(&cfg, summary());
        let line = row.to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(
            fields.len(),
            Row::csv_header().split(',').count(),
            "row matches header"
        );
        assert_eq!(fields[0], "centralized");
        assert_eq!(fields[1], "4");
        assert_eq!(fields[7], "1.600", "request hops present");
    }

    #[test]
    fn csv_empty_request_hops_for_distributed() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic);
        let mut s = summary();
        s.avg_request_hops = None;
        let line = Row::new(&cfg, s).to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[7], "", "empty cell, not NaN");
    }

    /// Schema-drift guard: the header's field count must match every
    /// rendered line's field count across all three algorithms —
    /// including the distributed ones, whose empty `avg_request_hops`
    /// cell is the classic way a column silently goes missing.
    #[test]
    fn csv_header_matches_every_algorithm_row() {
        let header_fields = Row::csv_header().split(',').count();
        for alg in [
            Algorithm::Centralized,
            Algorithm::Fixed(crate::config::PartitionKind::Square),
            Algorithm::Dynamic,
        ] {
            let cfg = ScenarioConfig::paper(2, alg);
            let mut s = summary();
            if !matches!(alg, Algorithm::Centralized) {
                s.avg_request_hops = None;
            }
            let line = Row::new(&cfg, s).to_csv();
            assert_eq!(
                line.split(',').count(),
                header_fields,
                "{alg}: row field count drifted from header"
            );
        }
    }

    #[test]
    fn csv_includes_drop_breakdown() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Centralized);
        let line = Row::new(&cfg, summary()).to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        let n = fields.len();
        assert_eq!(&fields[n - 3..], &["3", "1", "2"], "ttl/no-neighbor/mac");
    }

    #[test]
    fn text_table_contains_rows() {
        let cfg = ScenarioConfig::paper(3, Algorithm::Dynamic);
        let t = text_table(&[Row::new(&cfg, summary())]);
        assert!(t.contains("dynamic"));
        assert!(t.contains('9'), "robot count shown");
        assert!(t.lines().count() >= 2);
    }

    fn span_report() -> SpanReport {
        use crate::obs::SpanAssembler;
        use crate::trace::TraceEvent;
        use robonet_des::NodeId;
        let mut asm = SpanAssembler::new();
        let sensor = NodeId::new(4);
        let robot = NodeId::new(9);
        for (t, ev) in [
            (10.0, TraceEvent::Failure { t: 10.0, sensor }),
            (
                12.0,
                TraceEvent::Detected {
                    t: 12.0,
                    guardian: NodeId::new(5),
                    failed: sensor,
                },
            ),
            (
                13.0,
                TraceEvent::Dispatched {
                    t: 13.0,
                    robot,
                    failed: sensor,
                    departed: true,
                },
            ),
            (
                40.0,
                TraceEvent::Replaced {
                    t: 40.0,
                    robot,
                    sensor,
                    travel: 100.0,
                    loc: robonet_geom::Point::new(0.0, 0.0),
                },
            ),
        ] {
            let _ = t;
            asm.ingest(&ev);
        }
        asm.finish()
    }

    #[test]
    fn spans_csv_lines_match_header_and_stage_order() {
        let tables = vec![("dynamic".to_string(), span_report())];
        let csv = spans_csv(&tables);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(spans_csv_header()));
        let header_fields = spans_csv_header().split(',').count();
        let stages: Vec<&str> = lines
            .map(|l| {
                assert_eq!(l.split(',').count(), header_fields, "line {l:?}");
                assert!(l.starts_with("dynamic,"));
                l.split(',').nth(1).unwrap()
            })
            .collect();
        // No report-transit (no ReportDelivered event) and the rest in
        // causal order with the trailing total.
        assert_eq!(stages, ["detection", "travel", "install", "total"]);
    }

    #[test]
    fn spans_text_reports_health_and_stages() {
        let tables = vec![
            ("fixed".to_string(), span_report()),
            ("dynamic".to_string(), span_report()),
        ];
        let t = spans_text(&tables);
        assert!(t.contains("fixed: 1 failures, 1 repaired, 0 orphaned"));
        assert!(t.contains("dynamic: 1 failures"));
        assert!(t.contains("detection"));
        assert!(t.contains("total"));
        assert!(
            !t.contains("unmatched"),
            "clean trace shows no anomaly footer"
        );
    }
}
