//! Plain-text and CSV rendering of experiment results.

use crate::config::ScenarioConfig;
use crate::metrics::Summary;

/// One row of a figure table: a scenario and its summary.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of robots.
    pub robots: usize,
    /// RNG seed.
    pub seed: u64,
    /// The run's summary.
    pub summary: Summary,
}

impl Row {
    /// Builds a row from a config and its summary.
    pub fn new(cfg: &ScenarioConfig, summary: Summary) -> Self {
        Row {
            algorithm: cfg.algorithm.name().to_string(),
            robots: cfg.n_robots(),
            seed: cfg.seed,
            summary,
        }
    }

    /// CSV header matching [`Row::to_csv`].
    pub fn csv_header() -> &'static str {
        "algorithm,robots,seed,failures,replacements,avg_travel_m,avg_report_hops,\
         avg_request_hops,loc_update_tx_per_failure,report_delivery_ratio,\
         avg_repair_delay_s,total_travel_m,myrobot_accuracy,\
         dropped_ttl,dropped_no_neighbor,dropped_mac"
    }

    /// Renders the row as a CSV line.
    pub fn to_csv(&self) -> String {
        let s = &self.summary;
        format!(
            "{},{},{},{},{},{:.2},{:.3},{},{:.2},{:.4},{:.1},{:.1},{:.4},{},{},{}",
            self.algorithm,
            self.robots,
            self.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "".to_string(), |h| format!("{h:.3}")),
            s.loc_update_tx_per_failure,
            s.report_delivery_ratio,
            s.avg_repair_delay,
            s.total_travel,
            s.myrobot_accuracy,
            s.packets_dropped.ttl_expired,
            s.packets_dropped.no_neighbors,
            s.packets_dropped.mac_give_up,
        )
    }
}

/// Renders rows as an aligned text table (for terminal output).
pub fn text_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12} {:>12} {:>13} {:>12} {:>20}\n",
        "algorithm",
        "robots",
        "seed",
        "failures",
        "repaired",
        "travel(m)",
        "report-hops",
        "request-hops",
        "upd-tx/fail",
        "drops(ttl/nbr/mac)"
    ));
    for r in rows {
        let s = &r.summary;
        let d = &s.packets_dropped;
        out.push_str(&format!(
            "{:<12} {:>7} {:>6} {:>10} {:>9} {:>12.1} {:>12.2} {:>13} {:>12.1} {:>20}\n",
            r.algorithm,
            r.robots,
            r.seed,
            s.failures_occurred,
            s.replacements,
            s.avg_travel_per_failure,
            s.avg_report_hops,
            s.avg_request_hops
                .map_or_else(|| "-".to_string(), |h| format!("{h:.2}")),
            s.loc_update_tx_per_failure,
            format!(
                "{}({}/{}/{})",
                d.total(),
                d.ttl_expired,
                d.no_neighbors,
                d.mac_give_up
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn summary() -> Summary {
        Summary {
            failures_occurred: 100,
            replacements: 98,
            avg_travel_per_failure: 95.5,
            avg_report_hops: 2.1,
            avg_request_hops: Some(1.6),
            loc_update_tx_per_failure: 42.0,
            report_delivery_ratio: 1.0,
            avg_repair_delay: 130.0,
            p95_repair_delay: 300.0,
            total_travel: 9359.0,
            myrobot_accuracy: 0.97,
            packets_dropped: crate::metrics::DropBreakdown {
                ttl_expired: 3,
                no_neighbors: 1,
                mac_give_up: 2,
            },
        }
    }

    #[test]
    fn csv_round_trip_fields() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Centralized);
        let row = Row::new(&cfg, summary());
        let line = row.to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(
            fields.len(),
            Row::csv_header().split(',').count(),
            "row matches header"
        );
        assert_eq!(fields[0], "centralized");
        assert_eq!(fields[1], "4");
        assert_eq!(fields[7], "1.600", "request hops present");
    }

    #[test]
    fn csv_empty_request_hops_for_distributed() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic);
        let mut s = summary();
        s.avg_request_hops = None;
        let line = Row::new(&cfg, s).to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields[7], "", "empty cell, not NaN");
    }

    /// Schema-drift guard: the header's field count must match every
    /// rendered line's field count across all three algorithms —
    /// including the distributed ones, whose empty `avg_request_hops`
    /// cell is the classic way a column silently goes missing.
    #[test]
    fn csv_header_matches_every_algorithm_row() {
        let header_fields = Row::csv_header().split(',').count();
        for alg in [
            Algorithm::Centralized,
            Algorithm::Fixed(crate::config::PartitionKind::Square),
            Algorithm::Dynamic,
        ] {
            let cfg = ScenarioConfig::paper(2, alg);
            let mut s = summary();
            if !matches!(alg, Algorithm::Centralized) {
                s.avg_request_hops = None;
            }
            let line = Row::new(&cfg, s).to_csv();
            assert_eq!(
                line.split(',').count(),
                header_fields,
                "{alg}: row field count drifted from header"
            );
        }
    }

    #[test]
    fn csv_includes_drop_breakdown() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Centralized);
        let line = Row::new(&cfg, summary()).to_csv();
        let fields: Vec<&str> = line.split(',').collect();
        let n = fields.len();
        assert_eq!(&fields[n - 3..], &["3", "1", "2"], "ttl/no-neighbor/mac");
    }

    #[test]
    fn text_table_contains_rows() {
        let cfg = ScenarioConfig::paper(3, Algorithm::Dynamic);
        let t = text_table(&[Row::new(&cfg, summary())]);
        assert!(t.contains("dynamic"));
        assert!(t.contains('9'), "robot count shown");
        assert!(t.lines().count() >= 2);
    }
}
