//! Robot coordination for sensor replacement — the primary contribution
//! of *Replacing Failed Sensor Nodes by Mobile Robots* (Mei, Xian, Das,
//! Hu, Lu; ICDCS Workshops 2006), reproduced as a library.
//!
//! A large static wireless sensor network is maintained by a small
//! number of mobile robots. Sensors watch each other (guardian/guardee
//! beaconing), report failures over multihop geographic routing, and a
//! *manager* dispatches a *maintainer* robot that drives to the failure
//! and installs a fresh node. Three coordination algorithms are
//! implemented and compared exactly as in the paper:
//!
//! - [`Algorithm::Centralized`] — one static manager at the field centre
//!   receives every report and forwards it to the closest robot (§3.1),
//! - [`Algorithm::Fixed`] — a static equal-size partition, one robot
//!   managing and maintaining each subarea (§3.2),
//! - [`Algorithm::Dynamic`] — no fixed borders; sensors always report to
//!   the currently closest robot, an implicit Voronoi partition kept
//!   fresh by scoped flooding of robot location updates (§3.3).
//!
//! The packet-level simulation ([`Simulation`]) runs on the
//! `robonet-radio` CSMA/CA substrate and measures the paper's two
//! overheads: **motion** (robot metres travelled per failure, Fig. 2)
//! and **messaging** (hops per failure report/repair request, Fig. 3;
//! location-update transmissions per failure, Fig. 4).
//!
//! # Quickstart
//!
//! ```
//! use robonet_core::{Algorithm, ScenarioConfig, Simulation};
//!
//! // A small field (4 robots, 200 sensors) for a fast demonstration —
//! // `ScenarioConfig::paper` uses the paper's full parameters.
//! let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
//!     .with_seed(7)
//!     .scaled(16.0); // 1/16 of the paper's 64000 s simulation
//! let outcome = Simulation::run(cfg);
//! assert!(outcome.metrics.replacements > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod config;
pub mod coord;
pub mod fastsim;
pub mod fault;
pub mod harness;
pub mod metrics;
pub mod msg;
pub mod obs;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod trace;

pub use config::{
    Algorithm, CoverageSampling, DeployRegion, DispatchPolicy, PartitionKind, ScenarioConfig,
};
pub use fault::{FaultKind, FaultPlan};
pub use harness::{field_deployment, FieldDeployment, Outcome, Simulation};
pub use metrics::{DropBreakdown, Metrics, Summary};
pub use obs::{
    EventSink, HealthMonitor, Invariant, JsonlSink, MetricsRegistry, NullSink, QuantileSketch,
    RepairSpan, RingSink, SpanAssembler, SpanReport, SpanSink, Stage, TeeSink, TelemetrySnapshot,
    Timeline, TraceAggregate,
};
pub use scenario::{
    compile as compile_scenario, Compiled, Overrides, ScenarioError, ScenarioErrorKind,
};
pub use sweep::{CellResult, FailedCell, MergedSweep, SweepGrid, SweepResult};
