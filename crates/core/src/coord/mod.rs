//! The coordination-policy layer: every algorithm-specific decision in
//! one place, shared by both simulators.
//!
//! The paper's contribution is a *comparison* of three coordination
//! algorithms (§3). Historically each algorithm's rules were scattered
//! as `match cfg.algorithm` arms across the packet-level harness and
//! the flow-level model, which had to be edited in lockstep. This
//! module extracts them behind one [`Coordinator`] trait:
//!
//! - [`centralized::Centralized`] — one static manager at the field
//!   centre receives every report and forwards it to a robot (§3.1),
//! - [`fixed::Fixed`] — a static equal-size partition, one robot
//!   managing and maintaining each subarea (§3.2),
//! - [`dynamic::Dynamic`] — sensors always report to the currently
//!   closest robot, an implicit Voronoi partition kept fresh by scoped
//!   flooding (§3.3).
//!
//! The packet-level [`Simulation`](crate::Simulation) consumes the
//! world-state hooks ([`Coordinator::seed_initial_role`],
//! [`Coordinator::report_target`], [`Coordinator::accept_flood`], …);
//! the flow-level [`fastsim`](crate::fastsim) consumes the closed-form
//! cost hooks ([`Coordinator::flow_report`],
//! [`Coordinator::flow_update_cost`]). Because both drive through the
//! same `dyn Coordinator`, the two models provably share one copy of
//! each algorithm's coordination rules.
//!
//! # Adding a fourth algorithm
//!
//! 1. Create `coord/<name>.rs` implementing [`Coordinator`].
//! 2. Add a variant to [`Algorithm`] and an [`Entry`] to the
//!    [`registry`] (name, coordinator, description).
//! 3. Nothing else: the CLI's `--alg` parsing, `Algorithm::name()`,
//!    the examples and the sweep harness all resolve through the
//!    registry table.

pub mod centralized;
pub mod dynamic;
pub mod fixed;

use robonet_des::{rng, NodeId};
use robonet_geom::partition::Partition;
use robonet_geom::{deploy, Bounds, Point};
use robonet_wsn::SensorState;

use crate::config::{Algorithm, DispatchPolicy, PartitionKind, ScenarioConfig};

pub use centralized::Centralized;
pub use dynamic::Dynamic;
pub use fixed::Fixed;

/// Read-only world facts the packet-level hooks need.
///
/// Built by the harness at each call site from its own state; the
/// borrows are cheap and keep the coordinators stateless (they can be
/// `&'static`, so the harness never fights the borrow checker over
/// them).
pub struct CoordCtx<'a> {
    /// The static partition, for algorithms that carve the field.
    pub partition: Option<&'a dyn Partition>,
    /// Number of sensors; robot node ids start directly above this.
    pub n_sensors: usize,
    /// Number of robots in the fleet.
    pub n_robots: usize,
    /// Manager identity and location, when the algorithm uses one.
    pub manager: Option<(NodeId, Point)>,
    /// Robot location-update distance threshold in metres (the border
    /// band of the dynamic algorithm's scoped flood, §3.3/§4.2).
    pub update_threshold: f64,
}

impl CoordCtx<'_> {
    /// Maps a node id to a robot index, if it is a robot.
    pub fn robot_index(&self, id: NodeId) -> Option<usize> {
        let i = id.index();
        (i >= self.n_sensors && i < self.n_sensors + self.n_robots).then(|| i - self.n_sensors)
    }
}

/// The central manager's view of the fleet (centralized dispatch).
pub struct FleetView<'a> {
    /// Last known robot locations (index = robot index).
    pub robot_locs: &'a [Point],
    /// Last reported robot queue lengths (for `NearestIdle`).
    pub robot_queues: &'a [u32],
    /// Robots the manager currently suspects are broken (a dispatch to
    /// them timed out and no location update has arrived since).
    /// `None` when the fault layer's timeout protocol is inactive;
    /// dispatch then behaves exactly as the paper assumes.
    pub suspect: Option<&'a [bool]>,
}

impl FleetView<'_> {
    /// Whether robot `r` is currently under suspicion.
    pub fn is_suspect(&self, r: usize) -> bool {
        self.suspect.is_some_and(|s| s[r])
    }
}

/// How a robot announces its location (§3.1–3.3): the harness turns
/// this decision into actual frames, so the messaging *mechanics* stay
/// in the simulator while the *policy* lives in the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Announcement {
    /// Geo-unicast to the manager (piggybacking the queue length) plus
    /// a one-hop hello so nearby sensors can deliver chasing repair
    /// requests (centralized, §3.1).
    ManagerUnicast,
    /// Scoped flood; `subarea` tags the relay scope — the robot's own
    /// subarea for the fixed algorithm (§3.2), or [`u32::MAX`] for the
    /// dynamic algorithm's Voronoi-cell-plus-border scope (§3.3).
    Flood {
        /// Relay-scope tag carried in the flood message.
        subarea: u32,
    },
}

/// Precomputed geometry facts for the flow-level closed-form costs.
pub struct FlowCtx<'a> {
    /// The central manager's location (field centre).
    pub manager_loc: Point,
    /// The manager's transmission range in metres.
    pub manager_range: f64,
    /// Greedy-progress hop length: `GREEDY_PROGRESS × sensor_range`.
    pub hop_unit: f64,
    /// Number of sensors.
    pub n_sensors: usize,
    /// Number of robots.
    pub n_robots: usize,
    /// Field area in m².
    pub area: f64,
    /// Sensor deployment density (sensors per m²).
    pub density: f64,
    /// Robot location-update distance threshold in metres.
    pub update_threshold: f64,
    /// Sensors deployed in each subarea (fixed algorithm only).
    pub subarea_population: &'a [f64],
}

impl FlowCtx<'_> {
    /// Hops a geo-routed message needs to cover `dist` metres
    /// (calibrated greedy-progress model; see [`crate::fastsim`]).
    pub fn hops_for(&self, dist: f64) -> f64 {
        (dist / self.hop_unit).ceil().max(1.0)
    }
}

/// Flow-level outcome of one failure report: who handles it and what
/// the messaging cost was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDispatch {
    /// Index of the robot that enqueues the replacement task.
    pub robot: usize,
    /// Hops the failure report travelled.
    pub report_hops: f64,
    /// Hops of the manager's repair request (`None` for algorithms
    /// without a separate request leg).
    pub request_hops: Option<f64>,
}

/// One coordination algorithm's complete decision surface.
///
/// Implementations are stateless (all run state stays in the
/// simulators), so a single `&'static` instance per algorithm serves
/// every simulation. Methods come in two groups: packet-level hooks
/// driven by [`Simulation`](crate::Simulation), and flow-level cost
/// hooks driven by [`fastsim`](crate::fastsim).
pub trait Coordinator: std::fmt::Debug + Sync {
    /// The [`Algorithm`] value this coordinator implements.
    fn algorithm(&self) -> Algorithm;

    /// Canonical machine name (registry key, CLI `--alg` value, CSV
    /// column).
    fn name(&self) -> &'static str;

    /// One-line description for help text and docs.
    fn describe(&self) -> &'static str;

    /// Metrics-registry namespace for this coordinator's counters
    /// (`coord.<name>`). A literal rather than derived from
    /// [`Coordinator::name`] so counter recording stays
    /// allocation-free.
    fn obs_namespace(&self) -> &'static str;

    // --- World construction -------------------------------------------

    /// Whether a static central manager node exists.
    fn uses_manager(&self) -> bool {
        false
    }

    /// Whether sensors maintain a `myrobot` binding (everything except
    /// the centralized algorithm).
    fn uses_myrobot(&self) -> bool {
        true
    }

    /// The static partition this algorithm carves the field into, if
    /// any.
    fn build_partition(&self, _bounds: Bounds, _k: usize) -> Option<Box<dyn Partition>> {
        None
    }

    /// Initial robot placement: subarea centres when a partition
    /// exists (§3.2 — the initial drive there is part of
    /// initialization), uniform random otherwise.
    fn initial_robot_positions(
        &self,
        partition: Option<&dyn Partition>,
        bounds: &Bounds,
        n_robots: usize,
        rng: &mut rng::Xoshiro256,
    ) -> Vec<Point> {
        match partition {
            Some(p) => (0..n_robots).map(|r| p.center(r)).collect(),
            None => deploy::uniform(rng, bounds, n_robots),
        }
    }

    // --- Role assignment ----------------------------------------------

    /// Installs the post-initialization role knowledge on one sensor
    /// (the §3.1 invariant: after initialization every sensor knows who
    /// it reports to). `subarea` is the sensor's subarea index
    /// (`u32::MAX` without a partition); `robot_pos` the initial robot
    /// positions.
    fn seed_initial_role(
        &self,
        sensor: &mut SensorState,
        subarea: u32,
        robot_pos: &[Point],
        ctx: &CoordCtx<'_>,
    );

    /// Installs role knowledge on a freshly installed replacement node
    /// (§2(d)); distributed algorithms let it re-learn from hellos.
    fn seed_replacement(&self, _sensor: &mut SensorState, _ctx: &CoordCtx<'_>) {}

    /// Whether guardian/guardee pairs must share a subarea (§3.2).
    fn guardian_requires_same_subarea(&self) -> bool {
        false
    }

    /// Fault layer: when a guardian's report retry fires, should the
    /// sensor first evict its current `myrobot` (so the retry targets
    /// the next-closest known robot)? Only meaningful for algorithms
    /// whose sensors track several candidate robots — the dynamic
    /// algorithm returns `true`; a fixed subarea has exactly one robot
    /// and the centralized report target is the static manager.
    fn evict_myrobot_on_retry(&self) -> bool {
        false
    }

    // --- Failure reporting and dispatch -------------------------------

    /// Where a guardian sends a failure report: the manager
    /// (centralized) or its `myrobot` (distributed).
    fn report_target(&self, reporter: &SensorState) -> (NodeId, Point) {
        reporter
            .myrobot
            .expect("distributed sensors know their robot")
    }

    /// On report delivery: route through the manager's dispatch step
    /// (`true`) or enqueue directly at the receiving robot (`false`).
    fn dispatch_via_manager(&self) -> bool {
        self.uses_manager()
    }

    /// The manager's maintainer selection for a failure (§3.1 and the
    /// [`DispatchPolicy`] ablation). `None` for algorithms without a
    /// manager.
    fn choose_dispatch_robot(
        &self,
        _fleet: &FleetView<'_>,
        _failed_loc: Point,
        _policy: DispatchPolicy,
    ) -> Option<usize> {
        None
    }

    // --- Location updates ---------------------------------------------

    /// How robot `robot_index` announces a changed location.
    fn location_announcement(&self, robot_index: usize) -> Announcement;

    /// A sensor heard a one-hop robot hello; updates its role
    /// knowledge (relevant for freshly installed replacements).
    fn on_robot_hello(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        manager: Option<(NodeId, Point)>,
        ctx: &CoordCtx<'_>,
    );

    /// A flooded location update reached a sensor: absorb it and
    /// return whether the sensor relays it (the flood-scoping rule,
    /// §3.2/§3.3). `subarea` is the scope tag carried in the message,
    /// `sensor_subarea` the receiving sensor's own subarea.
    fn accept_flood(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        subarea: u32,
        sensor_subarea: u32,
        ctx: &CoordCtx<'_>,
    ) -> bool;

    /// The robot index a correctly informed sensor would currently
    /// have as `myrobot` (the accuracy metric's ground truth), or
    /// `None` when the algorithm has no `myrobot` concept.
    fn myrobot_truth(&self, sensor_loc: Point, subarea: u32, robot_locs: &[Point])
        -> Option<usize>;

    // --- Flow-level closed-form hooks ---------------------------------

    /// Transmissions one in-motion location update costs at flow level
    /// (the Figure 4 closed form). `from` is the robot's last
    /// announced location.
    fn flow_update_cost(&self, flow: &FlowCtx<'_>, robot: usize, from: Point) -> f64;

    /// Flow-level report-and-dispatch for a failure at `failed_loc`:
    /// selects the handling robot and prices the report (and request)
    /// legs. `robot_locs` are the robots' current positions.
    fn flow_report(
        &self,
        flow: &FlowCtx<'_>,
        failed_loc: Point,
        subarea: usize,
        robot_locs: &[Point],
    ) -> FlowDispatch;
}

/// One registry row: the canonical name table entry for an algorithm.
pub struct Entry {
    /// Machine name (`--alg` value, CSV column, `Algorithm::name()`).
    pub name: &'static str,
    /// The enum value the name resolves to.
    pub algorithm: Algorithm,
    /// The shared coordinator instance.
    pub coordinator: &'static dyn Coordinator,
    /// Whether the paper's figures evaluate this algorithm (fixed-hex
    /// is our §4.3.1 extension, not a figure series).
    pub in_paper_figures: bool,
}

static CENTRALIZED: Centralized = Centralized;
static FIXED_SQUARE: Fixed = Fixed::new(PartitionKind::Square);
static FIXED_HEX: Fixed = Fixed::new(PartitionKind::Hex);
static DYNAMIC: Dynamic = Dynamic;

/// The one canonical table of coordination algorithms, in the paper's
/// presentation order (§3.1, §3.2, §3.3). The CLI, `Algorithm::name()`,
/// the examples and the sweep harness all resolve through it.
static REGISTRY: [Entry; 4] = [
    Entry {
        name: "centralized",
        algorithm: Algorithm::Centralized,
        coordinator: &CENTRALIZED,
        in_paper_figures: true,
    },
    Entry {
        name: "fixed",
        algorithm: Algorithm::Fixed(PartitionKind::Square),
        coordinator: &FIXED_SQUARE,
        in_paper_figures: true,
    },
    Entry {
        name: "fixed-hex",
        algorithm: Algorithm::Fixed(PartitionKind::Hex),
        coordinator: &FIXED_HEX,
        in_paper_figures: false,
    },
    Entry {
        name: "dynamic",
        algorithm: Algorithm::Dynamic,
        coordinator: &DYNAMIC,
        in_paper_figures: true,
    },
];

/// All registered algorithms.
pub fn registry() -> &'static [Entry] {
    &REGISTRY
}

/// Resolves an algorithm to its shared coordinator instance.
///
/// # Panics
///
/// Panics if `alg` is not registered (impossible for the shipped
/// `Algorithm` variants; a new variant must be added to the registry).
pub fn coordinator_for(alg: Algorithm) -> &'static dyn Coordinator {
    REGISTRY
        .iter()
        .find(|e| e.algorithm == alg)
        .unwrap_or_else(|| panic!("algorithm {alg:?} is not in the coordination registry"))
        .coordinator
}

/// Looks up a registry entry by machine name.
pub fn by_name(name: &str) -> Option<&'static Entry> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// The registered machine names, in registry order.
pub fn names() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|e| e.name)
}

/// The series order of the paper's evaluation figures (§4.3 plots
/// fixed, then dynamic, then centralized). Kept as names so the
/// entries themselves still come from the one registry table.
const FIGURE_ORDER: [&str; 3] = ["fixed", "dynamic", "centralized"];

/// The algorithms the paper's figures evaluate, in the order the
/// figures list them. The sweep harness and the faceoff example
/// iterate this instead of hard-coding the three algorithms.
pub fn figure_algorithms() -> impl Iterator<Item = &'static Entry> {
    FIGURE_ORDER
        .iter()
        .map(|n| by_name(n).expect("figure algorithm is registered"))
}

/// Checks a scenario's fleet against the coordinator's partition: the
/// fixed algorithm requires exactly one robot per subarea, and a
/// mismatch would otherwise surface as an index fault deep inside
/// world construction.
///
/// # Errors
///
/// Returns a description of the mismatch.
pub fn validate_fleet(coord: &dyn Coordinator, cfg: &ScenarioConfig) -> Result<(), String> {
    if let Some(p) = coord.build_partition(cfg.bounds(), cfg.k) {
        if p.len() != cfg.n_robots() {
            return Err(format!(
                "the {} partition has {} cells but the fleet has {} robots \
                 (the fixed algorithm needs exactly one robot per subarea)",
                coord.name(),
                p.len(),
                cfg.n_robots()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_is_registered_exactly_once() {
        for e in registry() {
            assert_eq!(
                coordinator_for(e.algorithm).name(),
                e.name,
                "registry row and coordinator disagree on the name"
            );
            assert_eq!(e.coordinator.algorithm(), e.algorithm);
            assert!(
                !e.coordinator.describe().is_empty(),
                "{} needs a description",
                e.name
            );
        }
        let mut names: Vec<_> = names().collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len(), "duplicate registry names");
    }

    #[test]
    fn figure_order_covers_exactly_the_figure_algorithms() {
        let figure: Vec<&str> = figure_algorithms().map(|e| e.name).collect();
        for e in registry() {
            assert_eq!(
                figure.contains(&e.name),
                e.in_paper_figures,
                "{} figure membership disagrees with the registry flag",
                e.name
            );
        }
        assert_eq!(figure.len(), 3, "the paper evaluates three algorithms");
    }

    #[test]
    fn names_round_trip_through_the_registry() {
        for e in registry() {
            let parsed = by_name(e.algorithm.name()).expect("name resolves");
            assert_eq!(parsed.algorithm, e.algorithm, "parse(name(a)) == a");
        }
        assert!(by_name("voronoi").is_none());
    }

    #[test]
    fn registered_fleets_validate() {
        for e in registry() {
            for k in 1..=5 {
                let cfg = ScenarioConfig::paper(k, e.algorithm);
                assert!(
                    validate_fleet(e.coordinator, &cfg).is_ok(),
                    "{} k={k} must validate",
                    e.name
                );
            }
        }
    }

    /// A hypothetical coordinator whose partition does not match the
    /// k² fleet: `validate_fleet` must reject it up front instead of
    /// letting `robot_pos[subarea]` fault during world construction.
    #[derive(Debug)]
    struct Lopsided;

    impl Coordinator for Lopsided {
        fn algorithm(&self) -> Algorithm {
            Algorithm::Fixed(PartitionKind::Square)
        }
        fn name(&self) -> &'static str {
            "lopsided"
        }
        fn describe(&self) -> &'static str {
            "test-only: one cell too many"
        }
        fn obs_namespace(&self) -> &'static str {
            "coord.lopsided"
        }
        fn build_partition(&self, bounds: Bounds, k: usize) -> Option<Box<dyn Partition>> {
            Some(Box::new(robonet_geom::partition::SquarePartition::new(
                bounds,
                k + 1,
            )))
        }
        fn seed_initial_role(&self, _: &mut SensorState, _: u32, _: &[Point], _: &CoordCtx<'_>) {}
        fn location_announcement(&self, r: usize) -> Announcement {
            Announcement::Flood { subarea: r as u32 }
        }
        fn on_robot_hello(
            &self,
            _: &mut SensorState,
            _: NodeId,
            _: Point,
            _: Option<(NodeId, Point)>,
            _: &CoordCtx<'_>,
        ) {
        }
        fn accept_flood(
            &self,
            _: &mut SensorState,
            _: NodeId,
            _: Point,
            _: u32,
            _: u32,
            _: &CoordCtx<'_>,
        ) -> bool {
            false
        }
        fn myrobot_truth(&self, _: Point, subarea: u32, _: &[Point]) -> Option<usize> {
            Some(subarea as usize)
        }
        fn flow_update_cost(&self, _: &FlowCtx<'_>, _: usize, _: Point) -> f64 {
            0.0
        }
        fn flow_report(
            &self,
            flow: &FlowCtx<'_>,
            _: Point,
            subarea: usize,
            _: &[Point],
        ) -> FlowDispatch {
            FlowDispatch {
                robot: subarea.min(flow.n_robots - 1),
                report_hops: 1.0,
                request_hops: None,
            }
        }
    }

    #[test]
    fn mismatched_fleet_is_rejected_with_a_clear_message() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Fixed(PartitionKind::Square));
        let err = validate_fleet(&Lopsided, &cfg).unwrap_err();
        assert!(err.contains("9 cells"), "err: {err}");
        assert!(err.contains("4 robots"), "err: {err}");
    }
}
