//! The dynamic distributed algorithm (paper §3.3): no fixed borders —
//! every sensor reports to the currently closest robot, an implicit
//! Voronoi partition kept fresh by scoped flooding of robot location
//! updates.

use robonet_des::NodeId;
use robonet_geom::voronoi::nearest_site;
use robonet_geom::Point;
use robonet_wsn::SensorState;

use crate::config::Algorithm;

use super::{Announcement, CoordCtx, Coordinator, FlowCtx, FlowDispatch};

/// Coordinator for [`Algorithm::Dynamic`].
#[derive(Debug)]
pub struct Dynamic;

impl Coordinator for Dynamic {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Dynamic
    }

    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn describe(&self) -> &'static str {
        "implicit Voronoi partition: sensors report to the currently \
         closest robot, tracked via scoped floods (§3.3)"
    }

    fn obs_namespace(&self) -> &'static str {
        "coord.dynamic"
    }

    fn evict_myrobot_on_retry(&self) -> bool {
        // A report that keeps failing suggests `myrobot` is stale (the
        // robot broke down or moved away): drop it so the next flood —
        // or the retry itself — re-resolves the Voronoi owner.
        true
    }

    fn seed_initial_role(
        &self,
        sensor: &mut SensorState,
        _subarea: u32,
        robot_pos: &[Point],
        ctx: &CoordCtx<'_>,
    ) {
        // The init flood gives every sensor all robots' starting
        // positions; `myrobot` becomes the closest (§3.3).
        for (r, &loc) in robot_pos.iter().enumerate() {
            sensor.consider_robot(NodeId::new((ctx.n_sensors + r) as u32), loc);
        }
    }

    fn location_announcement(&self, _robot_index: usize) -> Announcement {
        Announcement::Flood { subarea: u32::MAX }
    }

    fn on_robot_hello(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        _manager: Option<(NodeId, Point)>,
        _ctx: &CoordCtx<'_>,
    ) {
        sensor.consider_robot(robot, loc);
    }

    fn accept_flood(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        _subarea: u32,
        _sensor_subarea: u32,
        ctx: &CoordCtx<'_>,
    ) -> bool {
        let s_loc = sensor.loc;
        let adopted = sensor.consider_robot(robot, loc);
        // Border band: even a non-adopting sensor relays when a radio
        // neighbour might need to switch (the shaded region of the
        // paper's Fig. 1(b)). One update threshold of slack suffices: a
        // robot moves at most that far between floods, so only sensors
        // within it of the bisector can be affected.
        let band = ctx.update_threshold;
        let near_border = match sensor.myrobot {
            Some((_, my_loc)) => s_loc.distance(loc) < s_loc.distance(my_loc) + band,
            None => true,
        };
        adopted || near_border
    }

    fn myrobot_truth(
        &self,
        sensor_loc: Point,
        _subarea: u32,
        robot_locs: &[Point],
    ) -> Option<usize> {
        Some(nearest_site(robot_locs, sensor_loc).expect("robots exist"))
    }

    fn flow_update_cost(&self, flow: &FlowCtx<'_>, _robot: usize, _from: Point) -> f64 {
        // Cell population ≈ sensors / robots; border band of one
        // update threshold around the cell perimeter (~4 × cell side
        // at Voronoi average).
        let cell = flow.n_sensors as f64 / flow.n_robots as f64;
        let cell_side = (flow.area / flow.n_robots as f64).sqrt();
        let band = 4.0 * cell_side * flow.update_threshold * flow.density * 0.5;
        cell + band + 1.0
    }

    fn flow_report(
        &self,
        flow: &FlowCtx<'_>,
        failed_loc: Point,
        _subarea: usize,
        robot_locs: &[Point],
    ) -> FlowDispatch {
        let r = nearest_site(robot_locs, failed_loc).expect("robots exist");
        FlowDispatch {
            robot: r,
            report_hops: flow.hops_for(robot_locs[r].distance(failed_loc)),
            request_hops: None,
        }
    }
}
