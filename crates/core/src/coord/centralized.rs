//! The centralized algorithm (paper §3.1): one static manager at the
//! field centre receives every failure report and forwards a repair
//! request to the closest robot.

use robonet_des::NodeId;
use robonet_geom::Point;
use robonet_wsn::SensorState;

use crate::config::{Algorithm, DispatchPolicy};

use super::{Announcement, CoordCtx, Coordinator, FleetView, FlowCtx, FlowDispatch};

/// Coordinator for [`Algorithm::Centralized`].
#[derive(Debug)]
pub struct Centralized;

impl Coordinator for Centralized {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Centralized
    }

    fn name(&self) -> &'static str {
        "centralized"
    }

    fn describe(&self) -> &'static str {
        "one static manager at the field centre; reports are forwarded \
         to the closest robot (§3.1)"
    }

    fn obs_namespace(&self) -> &'static str {
        "coord.centralized"
    }

    fn uses_manager(&self) -> bool {
        true
    }

    fn uses_myrobot(&self) -> bool {
        false
    }

    fn seed_initial_role(
        &self,
        sensor: &mut SensorState,
        _subarea: u32,
        _robot_pos: &[Point],
        ctx: &CoordCtx<'_>,
    ) {
        sensor.manager = Some(ctx.manager.expect("centralized world has a manager"));
    }

    fn seed_replacement(&self, sensor: &mut SensorState, ctx: &CoordCtx<'_>) {
        sensor.manager = Some(ctx.manager.expect("centralized world has a manager"));
    }

    fn report_target(&self, reporter: &SensorState) -> (NodeId, Point) {
        reporter
            .manager
            .expect("centralized sensors know the manager")
    }

    /// The paper's rule: the robot whose last known location is
    /// closest to the failure; [`DispatchPolicy::NearestIdle`] prefers
    /// an idle robot first and falls back to the overall nearest when
    /// the whole fleet is busy.
    fn choose_dispatch_robot(
        &self,
        fleet: &FleetView<'_>,
        failed_loc: Point,
        policy: DispatchPolicy,
    ) -> Option<usize> {
        let nearest_among = |pred: &dyn Fn(usize) -> bool| {
            fleet
                .robot_locs
                .iter()
                .enumerate()
                .filter(|(r, _)| pred(*r))
                .min_by(|(_, a), (_, b)| {
                    a.distance_sq(failed_loc)
                        .partial_cmp(&b.distance_sq(failed_loc))
                        .expect("finite positions")
                })
                .map(|(r, _)| r)
        };
        // Robots with a timed-out dispatch outstanding are suspects:
        // skip them unless the whole fleet is under suspicion.
        let live = |r: usize| !fleet.is_suspect(r);
        match policy {
            DispatchPolicy::Nearest => nearest_among(&live).or_else(|| nearest_among(&|_| true)),
            DispatchPolicy::NearestIdle => {
                let queues = fleet.robot_queues;
                nearest_among(&|r| live(r) && queues[r] == 0)
                    .or_else(|| nearest_among(&live))
                    .or_else(|| nearest_among(&|_| true))
            }
        }
    }

    fn location_announcement(&self, _robot_index: usize) -> Announcement {
        Announcement::ManagerUnicast
    }

    fn on_robot_hello(
        &self,
        sensor: &mut SensorState,
        _robot: NodeId,
        _loc: Point,
        manager: Option<(NodeId, Point)>,
        _ctx: &CoordCtx<'_>,
    ) {
        // Hellos piggyback the manager's identity so replacements that
        // missed initialization still learn where to report.
        if sensor.manager.is_none() {
            sensor.manager = manager;
        }
    }

    fn accept_flood(
        &self,
        _sensor: &mut SensorState,
        _robot: NodeId,
        _loc: Point,
        _subarea: u32,
        _sensor_subarea: u32,
        _ctx: &CoordCtx<'_>,
    ) -> bool {
        false // floods are not used (§3.1)
    }

    fn myrobot_truth(
        &self,
        _sensor_loc: Point,
        _subarea: u32,
        _robot_locs: &[Point],
    ) -> Option<usize> {
        None // no myrobot concept
    }

    fn flow_update_cost(&self, flow: &FlowCtx<'_>, _robot: usize, from: Point) -> f64 {
        // Unicast to the manager + a one-hop hello, per update.
        flow.hops_for(from.distance(flow.manager_loc)) + 1.0
    }

    fn flow_report(
        &self,
        flow: &FlowCtx<'_>,
        failed_loc: Point,
        _subarea: usize,
        robot_locs: &[Point],
    ) -> FlowDispatch {
        let report_hops = flow.hops_for(failed_loc.distance(flow.manager_loc));
        // Manager picks the robot closest (current position).
        let r = robonet_geom::voronoi::nearest_site(robot_locs, failed_loc).expect("robots exist");
        // The request's first hop uses the manager's long-range radio;
        // any remaining distance is covered by sensor relays.
        let d = (flow.manager_loc.distance(robot_locs[r]) - flow.manager_range).max(0.0);
        let request_hops = if d > 0.0 { 1.0 + flow.hops_for(d) } else { 1.0 };
        FlowDispatch {
            robot: r,
            report_hops,
            request_hops: Some(request_hops),
        }
    }
}
