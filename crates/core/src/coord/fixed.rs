//! The fixed distributed algorithm (paper §3.2): the field is carved
//! into equal-size static subareas, one robot per subarea acting as
//! both manager and maintainer. Location updates flood only the
//! robot's own subarea.

use robonet_des::NodeId;
use robonet_geom::partition::{HexPartition, Partition, SquarePartition};
use robonet_geom::{Bounds, Point};
use robonet_wsn::SensorState;

use crate::config::{Algorithm, PartitionKind};

use super::{Announcement, CoordCtx, Coordinator, FlowCtx, FlowDispatch};

/// Coordinator for [`Algorithm::Fixed`], parameterised by the
/// partition shape (the paper uses squares; hexagons measure its
/// "negligible difference" claim, §4.3.1).
#[derive(Debug)]
pub struct Fixed {
    kind: PartitionKind,
}

impl Fixed {
    /// Creates the coordinator for one partition shape.
    pub const fn new(kind: PartitionKind) -> Self {
        Fixed { kind }
    }

    /// The partition shape this coordinator carves.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }
}

impl Coordinator for Fixed {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Fixed(self.kind)
    }

    fn name(&self) -> &'static str {
        match self.kind {
            PartitionKind::Square => "fixed",
            PartitionKind::Hex => "fixed-hex",
        }
    }

    fn describe(&self) -> &'static str {
        match self.kind {
            PartitionKind::Square => {
                "equal static square subareas, one robot managing and \
                 maintaining each (§3.2)"
            }
            PartitionKind::Hex => {
                "fixed algorithm on an offset-row (hexagon-like) \
                 partition (§4.3.1 ablation)"
            }
        }
    }

    fn obs_namespace(&self) -> &'static str {
        match self.kind {
            PartitionKind::Square => "coord.fixed",
            PartitionKind::Hex => "coord.fixed-hex",
        }
    }

    fn build_partition(&self, bounds: Bounds, k: usize) -> Option<Box<dyn Partition>> {
        Some(match self.kind {
            PartitionKind::Square => Box::new(SquarePartition::new(bounds, k)),
            PartitionKind::Hex => Box::new(HexPartition::new(bounds, k)),
        })
    }

    fn seed_initial_role(
        &self,
        sensor: &mut SensorState,
        subarea: u32,
        robot_pos: &[Point],
        ctx: &CoordCtx<'_>,
    ) {
        let sub = subarea as usize;
        let robot = NodeId::new((ctx.n_sensors + sub) as u32);
        sensor.myrobot = Some((robot, robot_pos[sub]));
    }

    /// Guardians must share the guardee's subarea so reports stay
    /// inside the cell (§3.2).
    fn guardian_requires_same_subarea(&self) -> bool {
        true
    }

    fn location_announcement(&self, robot_index: usize) -> Announcement {
        Announcement::Flood {
            subarea: robot_index as u32,
        }
    }

    fn on_robot_hello(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        _manager: Option<(NodeId, Point)>,
        ctx: &CoordCtx<'_>,
    ) {
        // Adopt only the own-subarea robot (relevant for freshly
        // installed replacements).
        if let (Some(p), Some(r)) = (ctx.partition, ctx.robot_index(robot)) {
            if p.subarea_of(sensor.loc) == r {
                sensor.myrobot = Some((robot, loc));
            }
        }
    }

    fn accept_flood(
        &self,
        sensor: &mut SensorState,
        robot: NodeId,
        loc: Point,
        subarea: u32,
        sensor_subarea: u32,
        _ctx: &CoordCtx<'_>,
    ) -> bool {
        // The flood is scoped to the robot's own subarea: sensors
        // inside it adopt the update and relay; everyone else drops it.
        if sensor_subarea == subarea {
            sensor.myrobot = Some((robot, loc));
            true
        } else {
            false
        }
    }

    fn myrobot_truth(
        &self,
        _sensor_loc: Point,
        subarea: u32,
        _robot_locs: &[Point],
    ) -> Option<usize> {
        // The correct manager is always the subarea robot.
        Some(subarea as usize)
    }

    fn flow_update_cost(&self, flow: &FlowCtx<'_>, robot: usize, _from: Point) -> f64 {
        // The flood covers the subarea's population (+ the robot's own
        // transmission).
        flow.subarea_population[robot] + 1.0
    }

    fn flow_report(
        &self,
        flow: &FlowCtx<'_>,
        failed_loc: Point,
        subarea: usize,
        robot_locs: &[Point],
    ) -> FlowDispatch {
        let r = subarea;
        FlowDispatch {
            robot: r,
            report_hops: flow.hops_for(robot_locs[r].distance(failed_loc)),
            request_hops: None,
        }
    }
}
